//! Property-based tests over the workspace's core invariants.

use lexforensica::evidence::custody::{CustodyEvent, CustodyLog};
use lexforensica::evidence::hash::{sha256, Digest, Sha256};
use lexforensica::evidence::item::ItemId;
use lexforensica::law::prelude::*;
use lexforensica::law::suppression::Docket;
use lexforensica::netsim::prelude::*;
use lexforensica::watermark::pn::PnCode;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Legal-process lattice invariants.
// ---------------------------------------------------------------------

fn arb_process() -> impl Strategy<Value = LegalProcess> {
    prop::sample::select(LegalProcess::ALL.to_vec())
}

fn arb_standard() -> impl Strategy<Value = FactualStandard> {
    prop::sample::select(FactualStandard::ALL.to_vec())
}

proptest! {
    /// satisfies() is exactly the lattice order.
    #[test]
    fn process_satisfaction_is_monotone(a in arb_process(), b in arb_process()) {
        prop_assert_eq!(a.satisfies(b), a >= b);
    }

    /// A standard sufficient for a process is sufficient for every weaker
    /// process.
    #[test]
    fn standard_sufficiency_is_downward_closed(s in arb_standard(), p in arb_process(), q in arb_process()) {
        if s.suffices_for(p) && q <= p {
            prop_assert!(s.suffices_for(q));
        }
    }

    /// strongest_obtainable is the max process the standard suffices for.
    #[test]
    fn strongest_obtainable_is_tight(s in arb_standard()) {
        let strongest = s.strongest_obtainable();
        prop_assert!(s.suffices_for(strongest));
        for p in LegalProcess::ALL {
            if p > strongest {
                prop_assert!(!s.suffices_for(p));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Engine invariants over random actions.
// ---------------------------------------------------------------------

fn arb_data_spec() -> impl Strategy<Value = DataSpec> {
    let category = prop::sample::select(vec![
        ContentClass::Content,
        ContentClass::NonContentAddressing,
        ContentClass::SubscriberRecords,
        ContentClass::TransactionalRecords,
    ]);
    let temporality = prop::sample::select(vec![
        Temporality::RealTime,
        Temporality::stored_unopened(),
        Temporality::stored_opened(),
    ]);
    let location = prop::sample::select(vec![
        DataLocation::SuspectDevice,
        DataLocation::InTransit(TransmissionMedium::OwnNetwork),
        DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
        DataLocation::InTransit(TransmissionMedium::WirelessUnencrypted),
        DataLocation::InTransit(TransmissionMedium::WirelessEncrypted),
        DataLocation::ProviderStorage,
        DataLocation::PublicForum,
        DataLocation::LawfullyObtainedMedia,
        DataLocation::RemoteComputer,
    ]);
    (category, temporality, location).prop_map(|(c, t, l)| DataSpec::new(c, t, l))
}

fn arb_actor() -> impl Strategy<Value = Actor> {
    (
        prop::sample::select(vec![
            ActorKind::LawEnforcement,
            ActorKind::GovernmentEmployer,
            ActorKind::PrivateIndividual,
            ActorKind::SystemAdministrator,
            ActorKind::ServiceProvider,
            ActorKind::Victim,
        ]),
        any::<bool>(),
    )
        .prop_map(|(kind, directed)| {
            let a = Actor::new(kind);
            if directed {
                a.directed_by_government()
            } else {
                a
            }
        })
}

fn arb_action() -> impl Strategy<Value = InvestigativeAction> {
    (
        arb_actor(),
        arb_data_spec(),
        any::<bool>(), // joins_public_protocol
        any::<bool>(), // rate_observation_only
        any::<bool>(), // exhaustive
        any::<bool>(), // consent
        any::<bool>(), // probation
    )
        .prop_map(
            |(actor, spec, public, rate, exhaustive, consent, probation)| {
                let mut b = InvestigativeAction::builder(actor, spec);
                if public {
                    b.joining_public_protocol();
                }
                if rate {
                    b.rate_observation_only();
                }
                if exhaustive {
                    b.exhaustive_forensic_search();
                }
                if consent {
                    b.with_consent(Consent::by(ConsentAuthority::TargetSelf));
                }
                if probation {
                    b.target_on_probation();
                }
                b.build()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Legality is monotone in held process: if lawful with p, lawful
    /// with any stronger q.
    #[test]
    fn engine_legality_monotone_in_process(action in arb_action()) {
        let out = ComplianceEngine::new().assess(&action);
        let mut prev = false;
        for p in LegalProcess::ALL {
            let now = out.is_lawful_with(p);
            prop_assert!(!prev || now, "legality regressed at {p}");
            prev = now;
        }
    }

    /// The engine always produces a rationale and is deterministic.
    #[test]
    fn engine_is_deterministic_with_rationale(action in arb_action()) {
        let engine = ComplianceEngine::new();
        let a = engine.assess(&action);
        let b = engine.assess(&action);
        prop_assert_eq!(a.verdict(), b.verdict());
        prop_assert!(!a.rationale().is_empty());
    }

    /// Private actors never get a "process required" verdict — either
    /// the act needs nothing or it is flatly unlawful for them.
    #[test]
    fn private_actors_never_told_to_get_warrants(spec in arb_data_spec(), public in any::<bool>()) {
        let mut b = InvestigativeAction::builder(Actor::private_individual(), spec);
        if public {
            b.joining_public_protocol();
        }
        let action = b.build();
        let v = ComplianceEngine::new().assess(&action).verdict();
        prop_assert!(
            !matches!(v, Verdict::ProcessRequired(_)),
            "private actor got {v:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Hashing invariants.
// ---------------------------------------------------------------------

proptest! {
    /// Incremental hashing over arbitrary chunkings matches one-shot.
    #[test]
    fn sha256_chunking_invariance(data in prop::collection::vec(any::<u8>(), 0..2048), cuts in prop::collection::vec(any::<u16>(), 0..8)) {
        let oneshot = sha256(&data);
        let mut h = Sha256::new();
        let mut rest: &[u8] = &data;
        for c in cuts {
            if rest.is_empty() { break; }
            let k = (c as usize) % rest.len().max(1);
            h.update(&rest[..k]);
            rest = &rest[k..];
        }
        h.update(rest);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Hex round trip is the identity.
    #[test]
    fn digest_hex_round_trip(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let d = sha256(&data);
        prop_assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    /// Different inputs give different digests (collision resistance at
    /// property-test scale).
    #[test]
    fn sha256_injective_on_samples(a in prop::collection::vec(any::<u8>(), 0..128), b in prop::collection::vec(any::<u8>(), 0..128)) {
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }
}

// ---------------------------------------------------------------------
// Custody-chain invariants.
// ---------------------------------------------------------------------

proptest! {
    /// Any well-formed event sequence verifies; any single doctored
    /// digest breaks verification.
    #[test]
    fn custody_chain_tamper_evidence(n in 1usize..20, tamper_at in 0usize..20) {
        let mut log = CustodyLog::new();
        let d = sha256(b"content");
        for i in 0..n {
            log.record(ItemId(1), i as u64, CustodyEvent::Sealed { by: format!("c{i}") }, d);
        }
        prop_assert!(log.verify().is_ok());
        if tamper_at < n {
            log.tamper_content_digest(tamper_at, sha256(b"doctored"));
            prop_assert!(log.verify().is_err());
        }
    }
}

// ---------------------------------------------------------------------
// Suppression-DAG invariants.
// ---------------------------------------------------------------------

proptest! {
    /// In a random docket, every item derived (transitively) from a
    /// directly suppressed root is inadmissible unless it has an
    /// independent source.
    #[test]
    fn taint_propagates_transitively(
        lawful_roots in 1usize..4,
        chain_len in 1usize..6,
    ) {
        let mut docket = Docket::new();
        let bad = docket.add_root("bad", LegalProcess::SearchWarrant, LegalProcess::None);
        for _ in 0..lawful_roots {
            docket.add_root("ok", LegalProcess::None, LegalProcess::None);
        }
        let mut prev = bad;
        for i in 0..chain_len {
            prev = docket.add_derived(format!("d{i}"), LegalProcess::None, LegalProcess::None, [prev]);
            prop_assert!(!docket.admissibility(prev).is_admissible());
        }
        // Independent source cures the last link.
        docket.set_independent_source(prev);
        prop_assert!(docket.admissibility(prev).is_admissible());
    }
}

// ---------------------------------------------------------------------
// PN-code invariants.
// ---------------------------------------------------------------------

proptest! {
    /// Every supported m-sequence is balanced and has two-valued
    /// autocorrelation.
    #[test]
    fn m_sequence_properties(degree in 3u32..12, seed in 1u32..1000, shift in 1usize..100) {
        let code = PnCode::m_sequence(degree, seed);
        prop_assert_eq!(code.len(), (1usize << degree) - 1);
        prop_assert_eq!(code.balance().abs(), 1);
        let s = shift % code.len();
        if s != 0 {
            prop_assert_eq!(code.autocorrelation(s), -1);
        }
        prop_assert_eq!(code.autocorrelation(0), code.len() as i32);
    }
}

// ---------------------------------------------------------------------
// Simulator invariants.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Deliveries never exceed sends, and the same seed reproduces the
    /// same counters.
    #[test]
    fn simulator_conservation_and_determinism(seed in any::<u64>(), n_nodes in 2usize..8, rate in 1u64..50) {
        let build = || {
            let mut topo = Topology::new();
            let nodes = topo.add_nodes(n_nodes);
            for w in nodes.windows(2) {
                topo.connect(w[0], w[1], SimDuration::from_millis(5));
            }
            let mut sim = Simulator::new(topo, seed);
            sim.set_protocol(
                nodes[0],
                CbrSource::new(*nodes.last().unwrap(), FlowId(1), 64, SimDuration::from_millis(1000 / rate)),
            );
            sim.set_protocol(*nodes.last().unwrap(), CountingSink::new());
            sim.run_until(SimTime::from_secs(2));
            sim.counters()
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a, b);
        // The CBR interval is 1000/rate ms (integer division), so the
        // achievable count over 2s is 2000/interval, plus slack.
        let interval_ms = 1000 / rate;
        prop_assert!(a.delivered <= 2000 / interval_ms + 2);
    }

    /// Rate series conserves observed bytes within the window.
    #[test]
    fn rate_series_conserves_bytes(payload in 1usize..512, count in 1u64..40) {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        topo.connect(a, b, SimDuration::from_millis(1));
        let mut sim = Simulator::new(topo, 1);
        let tap = sim.add_tap(Tap::new(TapPoint::Node(b), CaptureScope::RateOnly, CaptureFilter::any()));
        sim.set_protocol(a, CbrSource::new(b, FlowId(1), payload, SimDuration::from_millis(50)).until(SimTime::from_millis(50 * count)));
        sim.set_protocol(b, CountingSink::new());
        sim.run_until(SimTime::from_secs(10));
        let total = sim.tap(tap).total_bytes();
        let series = sim.tap(tap).rate_series(SimTime::ZERO, SimDuration::from_secs(1), 20);
        let from_series: f64 = series.iter().sum::<f64>(); // bins are 1s wide
        prop_assert!((from_series - total as f64).abs() < 1e-6);
    }
}

// ---------------------------------------------------------------------
// Onion-wrapping invariants.
// ---------------------------------------------------------------------

use lexforensica::anonsim::onion::{peel, wrap, OnionNext};

proptest! {
    /// wrap→peel over arbitrary payloads and path lengths is the
    /// identity, layer by layer.
    #[test]
    fn onion_wrap_peel_round_trip(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        keys in prop::collection::vec(1u64..u64::MAX, 1..5),
        dst in 0usize..1000,
        nonce in any::<u64>(),
    ) {
        let path: Vec<(NodeId, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (NodeId(1000 + i), k))
            .collect();
        let mut cell = wrap(&path, NodeId(dst), nonce, &payload);
        for (i, &(_, key)) in path.iter().enumerate() {
            let (next, inner) = peel(key, &cell).expect("peels");
            if i + 1 < path.len() {
                prop_assert_eq!(next, OnionNext::Forward(path[i + 1].0));
            } else {
                prop_assert_eq!(next, OnionNext::Deliver(NodeId(dst)));
                prop_assert_eq!(&inner, &payload);
            }
            cell = inner;
        }
    }

    /// The outermost ciphertext never contains a (sufficiently long)
    /// payload substring in the clear.
    #[test]
    fn onion_hides_long_payloads(seed in any::<u64>()) {
        let payload: Vec<u8> = (0..64).map(|i| (seed.wrapping_mul(i as u64 + 1) >> 13) as u8).collect();
        let path = [(NodeId(1), 0x1111_u64), (NodeId(2), 0x2222)];
        let cell = wrap(&path, NodeId(3), seed, &payload);
        prop_assert!(!cell.windows(16).any(|w| payload.windows(16).any(|p| p == w)));
    }
}

// ---------------------------------------------------------------------
// Warrant-execution invariants.
// ---------------------------------------------------------------------

use lexforensica::law::warrant::{review_execution, ExecutionEvent, WarrantSpec};

proptest! {
    /// Seizures inside scope and window are never defective; outside
    /// either, always defective.
    #[test]
    fn warrant_scope_is_exact(day in 0u32..40, in_category in any::<bool>(), in_location in any::<bool>()) {
        let warrant = WarrantSpec::for_crime("fraud")
            .records("ledgers")
            .location("office")
            .execution_window_days(14)
            .build();
        let event = ExecutionEvent::Seize {
            category: if in_category { "ledgers".into() } else { "diaries".into() },
            location: if in_location { "office".into() } else { "home".into() },
            day,
        };
        let review = review_execution(&warrant, &[event]);
        let should_be_clean = in_category && in_location && day <= 14;
        prop_assert_eq!(review.is_clean(), should_be_clean);
    }
}
