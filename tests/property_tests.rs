//! Property-based tests over the workspace's core invariants.
//!
//! These originally ran under `proptest`; the workspace must now build in
//! fully offline environments with no crates.io registry, so the
//! properties are driven by a small deterministic xorshift generator
//! instead. Each property sweeps either the full finite input space or a
//! fixed number of pseudo-random cases from a constant seed, so failures
//! reproduce exactly.

use lexforensica::evidence::custody::{CustodyEvent, CustodyLog};
use lexforensica::evidence::hash::{sha256, Digest, Sha256};
use lexforensica::evidence::item::ItemId;
use lexforensica::law::prelude::*;
use lexforensica::law::suppression::Docket;
use lexforensica::netsim::prelude::*;
use lexforensica::watermark::pn::PnCode;

/// Deterministic xorshift64* generator — the only randomness source in
/// this suite.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform value in `0..n`.
    fn gen_range(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.gen_range(options.len())]
    }

    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.gen_range(max_len + 1);
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

// ---------------------------------------------------------------------
// Legal-process lattice invariants (finite space: swept exhaustively).
// ---------------------------------------------------------------------

#[test]
fn process_satisfaction_is_monotone() {
    for a in LegalProcess::ALL {
        for b in LegalProcess::ALL {
            assert_eq!(a.satisfies(b), a >= b);
        }
    }
}

#[test]
fn standard_sufficiency_is_downward_closed() {
    for s in FactualStandard::ALL {
        for p in LegalProcess::ALL {
            for q in LegalProcess::ALL {
                if s.suffices_for(p) && q <= p {
                    assert!(s.suffices_for(q));
                }
            }
        }
    }
}

#[test]
fn strongest_obtainable_is_tight() {
    for s in FactualStandard::ALL {
        let strongest = s.strongest_obtainable();
        assert!(s.suffices_for(strongest));
        for p in LegalProcess::ALL {
            if p > strongest {
                assert!(!s.suffices_for(p));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Engine invariants over random actions.
// ---------------------------------------------------------------------

const ALL_LOCATIONS: [DataLocation; 9] = [
    DataLocation::SuspectDevice,
    DataLocation::InTransit(TransmissionMedium::OwnNetwork),
    DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
    DataLocation::InTransit(TransmissionMedium::WirelessUnencrypted),
    DataLocation::InTransit(TransmissionMedium::WirelessEncrypted),
    DataLocation::ProviderStorage,
    DataLocation::PublicForum,
    DataLocation::LawfullyObtainedMedia,
    DataLocation::RemoteComputer,
];

fn gen_data_spec(rng: &mut Rng) -> DataSpec {
    let category = rng.pick(&[
        ContentClass::Content,
        ContentClass::NonContentAddressing,
        ContentClass::SubscriberRecords,
        ContentClass::TransactionalRecords,
    ]);
    let temporality = rng.pick(&[
        Temporality::RealTime,
        Temporality::stored_unopened(),
        Temporality::stored_opened(),
    ]);
    let location = rng.pick(&ALL_LOCATIONS);
    DataSpec::new(category, temporality, location)
}

fn gen_actor(rng: &mut Rng) -> Actor {
    let kind = rng.pick(&[
        ActorKind::LawEnforcement,
        ActorKind::GovernmentEmployer,
        ActorKind::PrivateIndividual,
        ActorKind::SystemAdministrator,
        ActorKind::ServiceProvider,
        ActorKind::Victim,
    ]);
    let a = Actor::new(kind);
    if rng.gen_bool() {
        a.directed_by_government()
    } else {
        a
    }
}

fn gen_action(rng: &mut Rng) -> InvestigativeAction {
    let mut b = InvestigativeAction::builder(gen_actor(rng), gen_data_spec(rng));
    if rng.gen_bool() {
        b.joining_public_protocol();
    }
    if rng.gen_bool() {
        b.rate_observation_only();
    }
    if rng.gen_bool() {
        b.exhaustive_forensic_search();
    }
    if rng.gen_bool() {
        b.with_consent(Consent::by(ConsentAuthority::TargetSelf));
    }
    if rng.gen_bool() {
        b.target_on_probation();
    }
    b.build()
}

/// Legality is monotone in held process: if lawful with p, lawful with any
/// stronger q.
#[test]
fn engine_legality_monotone_in_process() {
    let mut rng = Rng::new(0xE1E1_0001);
    for _ in 0..256 {
        let action = gen_action(&mut rng);
        let out = ComplianceEngine::new().assess(&action);
        let mut prev = false;
        for p in LegalProcess::ALL {
            let now = out.is_lawful_with(p);
            assert!(!prev || now, "legality regressed at {p}");
            prev = now;
        }
    }
}

/// The engine always produces a rationale and is deterministic.
#[test]
fn engine_is_deterministic_with_rationale() {
    let mut rng = Rng::new(0xE1E1_0002);
    for _ in 0..256 {
        let action = gen_action(&mut rng);
        let engine = ComplianceEngine::new();
        let a = engine.assess(&action);
        let b = engine.assess(&action);
        assert_eq!(a.verdict(), b.verdict());
        assert!(!a.rationale().is_empty());
    }
}

/// Private actors never get a "process required" verdict — either the act
/// needs nothing or it is flatly unlawful for them.
#[test]
fn private_actors_never_told_to_get_warrants() {
    let mut rng = Rng::new(0xE1E1_0003);
    for _ in 0..256 {
        let spec = gen_data_spec(&mut rng);
        let mut b = InvestigativeAction::builder(Actor::private_individual(), spec);
        if rng.gen_bool() {
            b.joining_public_protocol();
        }
        let action = b.build();
        let v = ComplianceEngine::new().assess(&action).verdict();
        assert!(
            !matches!(v, Verdict::ProcessRequired(_)),
            "private actor got {v:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Hashing invariants.
// ---------------------------------------------------------------------

/// Incremental hashing over arbitrary chunkings matches one-shot.
#[test]
fn sha256_chunking_invariance() {
    let mut rng = Rng::new(0x5A5A_0001);
    for _ in 0..64 {
        let data = rng.bytes(2048);
        let n_cuts = rng.gen_range(8);
        let oneshot = sha256(&data);
        let mut h = Sha256::new();
        let mut rest: &[u8] = &data;
        for _ in 0..n_cuts {
            if rest.is_empty() {
                break;
            }
            let k = rng.gen_range(rest.len().max(1));
            h.update(&rest[..k]);
            rest = &rest[k..];
        }
        h.update(rest);
        assert_eq!(h.finalize(), oneshot);
    }
}

/// Hex round trip is the identity.
#[test]
fn digest_hex_round_trip() {
    let mut rng = Rng::new(0x5A5A_0002);
    for _ in 0..64 {
        let d = sha256(rng.bytes(256));
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }
}

/// Different inputs give different digests (collision resistance at
/// property-test scale).
#[test]
fn sha256_injective_on_samples() {
    let mut rng = Rng::new(0x5A5A_0003);
    for _ in 0..64 {
        let a = rng.bytes(128);
        let b = rng.bytes(128);
        if a != b {
            assert_ne!(sha256(&a), sha256(&b));
        }
    }
}

// ---------------------------------------------------------------------
// Custody-chain invariants.
// ---------------------------------------------------------------------

/// Any well-formed event sequence verifies; any single doctored digest
/// breaks verification.
#[test]
fn custody_chain_tamper_evidence() {
    let mut rng = Rng::new(0xC0C0_0001);
    for _ in 0..32 {
        let n = 1 + rng.gen_range(19);
        let tamper_at = rng.gen_range(20);
        let mut log = CustodyLog::new();
        let d = sha256(b"content");
        for i in 0..n {
            log.record(
                ItemId(1),
                i as u64,
                CustodyEvent::Sealed {
                    by: format!("c{i}"),
                },
                d,
            );
        }
        assert!(log.verify().is_ok());
        if tamper_at < n {
            log.tamper_content_digest(tamper_at, sha256(b"doctored"));
            assert!(log.verify().is_err());
        }
    }
}

// ---------------------------------------------------------------------
// Suppression-DAG invariants.
// ---------------------------------------------------------------------

/// In a random docket, every item derived (transitively) from a directly
/// suppressed root is inadmissible unless it has an independent source.
#[test]
fn taint_propagates_transitively() {
    let mut rng = Rng::new(0xDAC0_0001);
    for _ in 0..32 {
        let lawful_roots = 1 + rng.gen_range(3);
        let chain_len = 1 + rng.gen_range(5);
        let mut docket = Docket::new();
        let bad = docket.add_root("bad", LegalProcess::SearchWarrant, LegalProcess::None);
        for _ in 0..lawful_roots {
            docket.add_root("ok", LegalProcess::None, LegalProcess::None);
        }
        let mut prev = bad;
        for i in 0..chain_len {
            prev = docket.add_derived(
                format!("d{i}"),
                LegalProcess::None,
                LegalProcess::None,
                [prev],
            );
            assert!(!docket.admissibility(prev).is_admissible());
        }
        // Independent source cures the last link.
        docket.set_independent_source(prev);
        assert!(docket.admissibility(prev).is_admissible());
    }
}

// ---------------------------------------------------------------------
// PN-code invariants.
// ---------------------------------------------------------------------

/// Every supported m-sequence is balanced and has two-valued
/// autocorrelation.
#[test]
fn m_sequence_properties() {
    let mut rng = Rng::new(0xB1B1_0001);
    for degree in 3u32..12 {
        for _ in 0..4 {
            let seed = 1 + rng.gen_range(999) as u32;
            let shift = 1 + rng.gen_range(99);
            let code = PnCode::m_sequence(degree, seed);
            assert_eq!(code.len(), (1usize << degree) - 1);
            assert_eq!(code.balance().abs(), 1);
            let s = shift % code.len();
            if s != 0 {
                assert_eq!(code.autocorrelation(s), -1);
            }
            assert_eq!(code.autocorrelation(0), code.len() as i32);
        }
    }
}

// ---------------------------------------------------------------------
// Simulator invariants.
// ---------------------------------------------------------------------

/// Deliveries never exceed sends, and the same seed reproduces the same
/// counters.
#[test]
fn simulator_conservation_and_determinism() {
    let mut rng = Rng::new(0x51D0_0001);
    for _ in 0..8 {
        let seed = rng.next_u64();
        let n_nodes = 2 + rng.gen_range(6);
        let rate = 1 + rng.gen_range(49) as u64;
        let build = || {
            let mut topo = Topology::new();
            let nodes = topo.add_nodes(n_nodes);
            for w in nodes.windows(2) {
                topo.connect(w[0], w[1], SimDuration::from_millis(5));
            }
            let mut sim = Simulator::new(topo, seed);
            sim.set_protocol(
                nodes[0],
                CbrSource::new(
                    *nodes.last().unwrap(),
                    FlowId(1),
                    64,
                    SimDuration::from_millis(1000 / rate),
                ),
            );
            sim.set_protocol(*nodes.last().unwrap(), CountingSink::new());
            sim.run_until(SimTime::from_secs(2));
            sim.counters()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        // The CBR interval is 1000/rate ms (integer division), so the
        // achievable count over 2s is 2000/interval, plus slack.
        let interval_ms = 1000 / rate;
        assert!(a.delivered <= 2000 / interval_ms + 2);
    }
}

/// Rate series conserves observed bytes within the window.
#[test]
fn rate_series_conserves_bytes() {
    let mut rng = Rng::new(0x51D0_0002);
    for _ in 0..8 {
        let payload = 1 + rng.gen_range(511);
        let count = 1 + rng.gen_range(39) as u64;
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        topo.connect(a, b, SimDuration::from_millis(1));
        let mut sim = Simulator::new(topo, 1);
        let tap = sim.add_tap(Tap::new(
            TapPoint::Node(b),
            CaptureScope::RateOnly,
            CaptureFilter::any(),
        ));
        sim.set_protocol(
            a,
            CbrSource::new(b, FlowId(1), payload, SimDuration::from_millis(50))
                .until(SimTime::from_millis(50 * count)),
        );
        sim.set_protocol(b, CountingSink::new());
        sim.run_until(SimTime::from_secs(10));
        let total = sim.tap(tap).total_bytes();
        let series = sim
            .tap(tap)
            .rate_series(SimTime::ZERO, SimDuration::from_secs(1), 20);
        let from_series: f64 = series.iter().sum::<f64>(); // bins are 1s wide
        assert!((from_series - total as f64).abs() < 1e-6);
    }
}

// ---------------------------------------------------------------------
// Onion-wrapping invariants.
// ---------------------------------------------------------------------

use lexforensica::anonsim::onion::{peel, wrap, OnionNext};

/// wrap→peel over arbitrary payloads and path lengths is the identity,
/// layer by layer.
#[test]
fn onion_wrap_peel_round_trip() {
    let mut rng = Rng::new(0x0110_0001);
    for _ in 0..32 {
        let payload = rng.bytes(512);
        let n_keys = 1 + rng.gen_range(4);
        let keys: Vec<u64> = (0..n_keys).map(|_| rng.next_u64().max(1)).collect();
        let dst = rng.gen_range(1000);
        let nonce = rng.next_u64();
        let path: Vec<(NodeId, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (NodeId(1000 + i), k))
            .collect();
        let mut cell = wrap(&path, NodeId(dst), nonce, &payload);
        for (i, &(_, key)) in path.iter().enumerate() {
            let (next, inner) = peel(key, &cell).expect("peels");
            if i + 1 < path.len() {
                assert_eq!(next, OnionNext::Forward(path[i + 1].0));
            } else {
                assert_eq!(next, OnionNext::Deliver(NodeId(dst)));
                assert_eq!(&inner, &payload);
            }
            cell = inner;
        }
    }
}

/// The outermost ciphertext never contains a (sufficiently long) payload
/// substring in the clear.
#[test]
fn onion_hides_long_payloads() {
    let mut rng = Rng::new(0x0110_0002);
    for _ in 0..32 {
        let seed = rng.next_u64();
        let payload: Vec<u8> = (0..64)
            .map(|i| (seed.wrapping_mul(i as u64 + 1) >> 13) as u8)
            .collect();
        let path = [(NodeId(1), 0x1111_u64), (NodeId(2), 0x2222)];
        let cell = wrap(&path, NodeId(3), seed, &payload);
        assert!(!cell
            .windows(16)
            .any(|w| payload.windows(16).any(|p| p == w)));
    }
}

// ---------------------------------------------------------------------
// Warrant-execution invariants.
// ---------------------------------------------------------------------

use lexforensica::law::warrant::{review_execution, ExecutionEvent, WarrantSpec};

/// Seizures inside scope and window are never defective; outside either,
/// always defective (swept over the full day × category × location grid).
#[test]
fn warrant_scope_is_exact() {
    for day in 0u32..40 {
        for in_category in [false, true] {
            for in_location in [false, true] {
                let warrant = WarrantSpec::for_crime("fraud")
                    .records("ledgers")
                    .location("office")
                    .execution_window_days(14)
                    .build();
                let event = ExecutionEvent::Seize {
                    category: if in_category {
                        "ledgers".into()
                    } else {
                        "diaries".into()
                    },
                    location: if in_location {
                        "office".into()
                    } else {
                        "home".into()
                    },
                    day,
                };
                let review = review_execution(&warrant, &[event]);
                let should_be_clean = in_category && in_location && day <= 14;
                assert_eq!(review.is_clean(), should_be_clean);
            }
        }
    }
}
