//! Differential lockdown of the batch-assessment pipeline.
//!
//! Sweeps the cartesian fact space — every actor constructor × content
//! class × temporality × location/medium × each single exception flag —
//! and asserts that [`VerdictCache`] and [`BatchAssessor`] reproduce a
//! fresh [`ComplianceEngine::assess`] *exactly* (verdict, confidence,
//! governing authorities, and full rationale text), that the packed
//! [`FactKey`] never collides across fact patterns the engine
//! distinguishes, and that legality stays monotone in held process over
//! the whole space.

use lexforensica::law::batch::{BatchAssessor, VerdictCache};
use lexforensica::law::exceptions::{EmergencyPenTrap, EmergencyPenTrapGround};
use lexforensica::law::factkey::FactKey;
use lexforensica::law::prelude::*;
use lexforensica::law::provider::{MessageLifecycle, MessageStage, ProviderPublicity};

fn all_actors() -> Vec<Actor> {
    let kinds = [
        ActorKind::LawEnforcement,
        ActorKind::GovernmentEmployer,
        ActorKind::PrivateIndividual,
        ActorKind::SystemAdministrator,
        ActorKind::ServiceProvider,
        ActorKind::Victim,
    ];
    let mut actors = Vec::new();
    for kind in kinds {
        actors.push(Actor::new(kind));
        actors.push(Actor::new(kind).directed_by_government());
    }
    // The named constructors must be covered as themselves, too.
    actors.push(Actor::law_enforcement());
    actors.push(Actor::private_individual());
    actors.push(Actor::system_administrator());
    actors
}

fn all_data_specs() -> Vec<DataSpec> {
    let categories = [
        ContentClass::Content,
        ContentClass::NonContentAddressing,
        ContentClass::SubscriberRecords,
        ContentClass::TransactionalRecords,
    ];
    let temporalities = [
        Temporality::RealTime,
        Temporality::stored_unopened(),
        Temporality::stored_opened(),
    ];
    let locations = [
        DataLocation::SuspectDevice,
        DataLocation::InTransit(TransmissionMedium::OwnNetwork),
        DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
        DataLocation::InTransit(TransmissionMedium::WirelessUnencrypted),
        DataLocation::InTransit(TransmissionMedium::WirelessEncrypted),
        DataLocation::ProviderStorage,
        DataLocation::PublicForum,
        DataLocation::LawfullyObtainedMedia,
        DataLocation::RemoteComputer,
    ];
    let mut specs = Vec::new();
    for c in categories {
        for t in temporalities {
            for l in locations {
                specs.push(DataSpec::new(c, t, l));
            }
        }
    }
    specs
}

/// Every single-flag variation applied on top of a bare action: each
/// method flag, each circumstance flag, and one representative of each
/// exception record.
fn single_flag_variants(actor: Actor, spec: DataSpec) -> Vec<InvestigativeAction> {
    let base = || InvestigativeAction::builder(actor, spec);
    vec![
        base().build(),
        base().joining_public_protocol().build(),
        base().with_specialized_tech(false).build(),
        base().with_specialized_tech(true).build(),
        base().exhaustive_forensic_search().build(),
        base().mining_lawfully_held_dataset().build(),
        base().using_arrestee_credentials().build(),
        base().rate_observation_only().build(),
        base().operating_intercepting_infrastructure().build(),
        base().policy_eliminates_privacy().build(),
        base().victim_authorized_trespasser_monitoring().build(),
        base().target_on_probation().build(),
        base().plain_view().build(),
        base().repeating_private_search().build(),
        base().target_operates_as_provider().build(),
        base()
            .with_consent(Consent::by(ConsentAuthority::TargetSelf))
            .build(),
        base()
            .with_consent(Consent::by(ConsentAuthority::TargetSelf).revoked())
            .build(),
        base()
            .with_exigency(Exigency::ImminentEvidenceDestruction)
            .build(),
        base()
            .with_emergency_pen_trap(EmergencyPenTrap::new(
                EmergencyPenTrapGround::OngoingProtectedComputerAttack,
                true,
            ))
            .build(),
        base()
            .with_emergency_pen_trap(EmergencyPenTrap::new(
                EmergencyPenTrapGround::OngoingProtectedComputerAttack,
                false,
            ))
            .build(),
        base()
            .compelling_provider(ProviderCompulsion {
                lifecycle: MessageLifecycle::new(
                    ProviderPublicity::Public,
                    MessageStage::AwaitingRetrieval,
                ),
                info: CompelledInfo::UnopenedContent,
            })
            .build(),
        base()
            .compelling_provider(ProviderCompulsion {
                lifecycle: MessageLifecycle::new(
                    ProviderPublicity::NonPublic,
                    MessageStage::OpenedInStorage,
                ),
                info: CompelledInfo::BasicSubscriberInfo,
            })
            .build(),
    ]
}

fn full_sweep() -> Vec<InvestigativeAction> {
    let mut actions = Vec::new();
    for actor in all_actors() {
        for spec in all_data_specs() {
            actions.extend(single_flag_variants(actor, spec));
        }
    }
    actions
}

/// Cache and batch answers must be byte-identical to a fresh engine run,
/// across the entire swept space.
#[test]
fn cache_and_batch_agree_with_fresh_engine_everywhere() {
    let actions = full_sweep();
    let engine = ComplianceEngine::new();
    let cache = VerdictCache::new();
    let assessor = BatchAssessor::new().with_threads(4);

    let batched = assessor.assess_all(&actions);
    assert_eq!(batched.len(), actions.len());

    for (action, from_batch) in actions.iter().zip(&batched) {
        let fresh = engine.assess(action);
        let from_cache = cache.assess(&engine, action);

        for (label, got) in [("cache", &*from_cache), ("batch", &**from_batch)] {
            assert_eq!(
                got.verdict(),
                fresh.verdict(),
                "{label} verdict for {action}"
            );
            assert_eq!(
                got.confidence(),
                fresh.confidence(),
                "{label} confidence for {action}"
            );
            assert_eq!(
                got.governing_authorities(),
                fresh.governing_authorities(),
                "{label} authorities for {action}"
            );
            assert_eq!(
                got.rationale(),
                fresh.rationale(),
                "{label} rationale for {action}"
            );
        }
    }
}

/// Equal fact keys must imply equal assessments over the swept space —
/// the soundness property the cache rests on, checked behaviorally.
#[test]
fn equal_keys_imply_equal_assessments_across_sweep() {
    use std::collections::HashMap;
    let engine = ComplianceEngine::new();
    let mut seen: HashMap<FactKey, (String, String)> = HashMap::new();
    for action in full_sweep() {
        let a = engine.assess(&action);
        let summary = (format!("{:?}", a.verdict()), a.rationale().to_string());
        match seen.get(&FactKey::of(&action)) {
            None => {
                seen.insert(FactKey::of(&action), summary);
            }
            Some(prior) => {
                assert_eq!(
                    prior, &summary,
                    "two actions with equal keys assessed differently: {action}"
                );
            }
        }
    }
}

/// Monotonicity (§III: more process never hurts) holds across the entire
/// swept space, through the batch pipeline.
#[test]
fn monotonicity_more_process_never_hurts_across_sweep() {
    let actions = full_sweep();
    let assessor = BatchAssessor::new();
    for (action, assessment) in actions.iter().zip(assessor.assess_all(&actions)) {
        let mut prev = false;
        for p in LegalProcess::ALL {
            let now = assessment.is_lawful_with(p);
            assert!(
                !prev || now,
                "legality regressed from weaker to stronger process at {p} for {action}"
            );
            prev = now;
        }
    }
}

/// The sweep has real breadth: thousands of actions, hundreds of distinct
/// fact keys, and the cache deduplicates exactly the repeats.
#[test]
fn sweep_exercises_a_large_distinct_key_space() {
    use std::collections::HashSet;
    let actions = full_sweep();
    let distinct: HashSet<FactKey> = actions.iter().map(FactKey::of).collect();
    assert!(actions.len() > 10_000, "sweep too small: {}", actions.len());
    assert!(
        distinct.len() > 1_000,
        "key space too small: {}",
        distinct.len()
    );

    let assessor = BatchAssessor::new();
    let (_, report) = assessor.assess_all_with_report(&actions);
    assert_eq!(report.actions, actions.len() as u64);
    assert_eq!(report.cache.misses, distinct.len() as u64);
    assert_eq!(
        report.cache.hits,
        actions.len() as u64 - distinct.len() as u64
    );
}
