//! Acceptance tests for the wire subsystem at the workspace level:
//! many concurrent pipelined connections over real loopback TCP, with
//! verdicts cross-checked byte-for-byte against the in-process batch
//! assessor, and exactly-once response accounting across a forced
//! mid-load graceful shutdown.

use lexforensica::law::batch::BatchAssessor;
use lexforensica::law::prelude::*;
use lexforensica::spec::parse_jsonl;
use service::prelude::*;
use std::collections::HashSet;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;
use wire::frame::{self, Frame, Request};
use wire::prelude::*;

/// Either serving model behind one handle, so the acceptance tests in
/// this file run identically against the threaded server and the
/// event-driven epoll server.
enum AnyServer {
    Threaded(WireServer),
    #[cfg(target_os = "linux")]
    Event(EventServer),
}

/// Which serving model to start.
#[derive(Clone, Copy)]
enum ServerKind {
    Threaded,
    #[cfg(target_os = "linux")]
    Event,
}

impl AnyServer {
    fn start(kind: ServerKind, service: &Arc<ComplianceService>, config: WireConfig) -> AnyServer {
        match kind {
            ServerKind::Threaded => AnyServer::Threaded(
                WireServer::start("127.0.0.1:0", Arc::clone(service), config)
                    .expect("bind loopback"),
            ),
            #[cfg(target_os = "linux")]
            ServerKind::Event => AnyServer::Event(
                EventServer::start("127.0.0.1:0", Arc::clone(service), config)
                    .expect("bind loopback"),
            ),
        }
    }

    fn local_addr(&self) -> SocketAddr {
        match self {
            AnyServer::Threaded(s) => s.local_addr(),
            #[cfg(target_os = "linux")]
            AnyServer::Event(s) => s.local_addr(),
        }
    }

    fn shutdown(self) -> WireMetricsSnapshot {
        match self {
            AnyServer::Threaded(s) => s.shutdown(),
            #[cfg(target_os = "linux")]
            AnyServer::Event(s) => s.shutdown().metrics,
        }
    }
}

/// The same JSONL vocabulary the CLI fixtures use.
const LINES: &[&str] = &[
    r#"{"actor": "leo", "data": "headers", "when": "realtime", "where": "isp", "describe": "pen/trap stream"}"#,
    r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "isp", "describe": "live interception"}"#,
    r#"{"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider", "describe": "subscriber records"}"#,
    r#"{"actor": "admin", "data": "headers", "when": "realtime", "where": "own-network", "describe": "ops review"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored-unopened", "where": "provider", "describe": "stored unopened mail"}"#,
    r#"{"actor": "private", "data": "content", "when": "realtime", "where": "wireless", "describe": "private wifi capture"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored", "where": "device", "flags": ["consent"], "describe": "consented device exam"}"#,
    r#"{"actor": "leo", "data": "records", "when": "stored", "where": "provider", "describe": "transaction records"}"#,
];

/// What `assess-batch` prints between the line number and the summary,
/// computed through the official batch path.
fn batch_verdicts() -> Vec<String> {
    let input = LINES.join("\n");
    let batch = parse_jsonl(input.as_bytes());
    assert!(
        batch.is_clean(),
        "fixture lines must parse: {:?}",
        batch.errors
    );
    let actions: Vec<InvestigativeAction> = batch.lines.iter().map(|l| l.action.clone()).collect();
    BatchAssessor::new()
        .assess_all(&actions)
        .iter()
        .map(|a| format!("{} [{}]", a.verdict(), a.confidence()))
        .collect()
}

/// ≥ 8 concurrent connections, each pipelining its whole request stream
/// before reaping a single response, must produce verdicts byte-identical
/// to the in-process `BatchAssessor` on the same lines.
fn pipelined_connections_match_assess_batch(kind: ServerKind) {
    const CONNECTIONS: usize = 8;
    const PER_CONNECTION: usize = 32;

    let expected = batch_verdicts();
    let service = Arc::new(ComplianceService::start(ServiceConfig {
        workers: 4,
        capacity: 128,
        policy: AdmissionPolicy::Block,
        ..ServiceConfig::default()
    }));
    let server = AnyServer::start(kind, &service, WireConfig::default());
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for c in 0..CONNECTIONS {
            let expected = &expected;
            scope.spawn(move || {
                let client = WireClient::connect(addr).expect("dial");
                let calls: Vec<_> = (0..PER_CONNECTION)
                    .map(|i| {
                        let line = LINES[(c + i) % LINES.len()];
                        client
                            .submit(line.as_bytes().to_vec(), 0)
                            .expect("pipelined submit")
                    })
                    .collect();
                for (i, call) in calls.into_iter().enumerate() {
                    let response = call.wait().expect("answered");
                    assert_eq!(response.status, Status::Ok);
                    assert_eq!(
                        String::from_utf8(response.payload).expect("utf-8"),
                        expected[(c + i) % LINES.len()],
                        "connection {c} request {i}: wire verdict differs from assess-batch"
                    );
                }
            });
        }
    });

    let metrics = server.shutdown();
    let total = (CONNECTIONS * PER_CONNECTION) as u64;
    assert_eq!(metrics.frames_in, total);
    assert_eq!(metrics.frames_out, total);
    assert_eq!(metrics.protocol_errors, 0);
    let finals = Arc::try_unwrap(service).expect("last handle").shutdown();
    assert_eq!(
        finals.responses(),
        finals.accepted,
        "service lost a response"
    );
}

#[test]
fn mid_load_graceful_shutdown_loses_and_duplicates_nothing() {
    mid_load_graceful_shutdown_accounting(ServerKind::Threaded);
}

#[cfg(target_os = "linux")]
#[test]
fn mid_load_graceful_shutdown_accounting_holds_on_the_event_server() {
    mid_load_graceful_shutdown_accounting(ServerKind::Event);
}

#[test]
fn eight_pipelined_connections_match_assess_batch_byte_for_byte() {
    pipelined_connections_match_assess_batch(ServerKind::Threaded);
}

#[cfg(target_os = "linux")]
#[test]
fn eight_pipelined_connections_match_assess_batch_on_the_event_server() {
    pipelined_connections_match_assess_batch(ServerKind::Event);
}

/// Forced mid-load graceful shutdown: raw-frame clients (globally unique
/// ids) blast requests while the server drains. Every response id must
/// arrive exactly once somewhere, the server's frames_in/frames_out books
/// must equal the count of responses actually delivered (nothing decoded
/// was lost, nothing answered twice), and every connection must end in
/// FIN — never a reset that destroys data.
fn mid_load_graceful_shutdown_accounting(kind: ServerKind) {
    const CONNECTIONS: usize = 8;
    const PER_CONNECTION: u64 = 50;

    let service = Arc::new(ComplianceService::start(ServiceConfig {
        workers: 2,
        capacity: 256,
        policy: AdmissionPolicy::Block,
        engine_floor: Duration::from_millis(1),
        ..ServiceConfig::default()
    }));
    let server = AnyServer::start(
        kind,
        &service,
        WireConfig {
            read_tick: Duration::from_millis(5),
            ..WireConfig::default()
        },
    );
    let addr = server.local_addr();

    let start = Arc::new(Barrier::new(CONNECTIONS + 1));
    let received: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    std::thread::scope(|scope| {
        let clients: Vec<_> = (0..CONNECTIONS as u64)
            .map(|c| {
                let start = Arc::clone(&start);
                let received = Arc::clone(&received);
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("dial raw");
                    stream.set_nodelay(true).expect("nodelay");
                    start.wait();
                    for i in 0..PER_CONNECTION {
                        let frame = Frame::Request(Request {
                            id: c * 1_000_000 + i, // globally unique
                            deadline_ms: 0,
                            want_explain: false,
                            payload: LINES[(i % LINES.len() as u64) as usize].as_bytes().to_vec(),
                        });
                        // Once the drain closes this connection the write
                        // fails; everything sent before that stands.
                        if stream.write_all(&frame::encode(&frame)).is_err() {
                            break;
                        }
                    }
                    let _ = stream.flush();
                    // Reap until the server's FIN. A reset instead of a FIN
                    // is exactly the data-destroying close the drain must
                    // never produce.
                    let mut ids = Vec::new();
                    loop {
                        match frame::read_frame(&mut stream, wire::MAX_FRAME) {
                            Ok(Some(Frame::Response(response))) => ids.push(response.id),
                            Ok(Some(_)) => panic!("server sent a non-response frame"),
                            Ok(None) => break,
                            Err(e) => panic!("connection {c} torn down uncleanly: {e}"),
                        }
                    }
                    received.lock().expect("ids lock").extend(ids);
                })
            })
            .collect();
        // All clients are mid-blast when the drain lands.
        start.wait();
        std::thread::sleep(Duration::from_millis(10));
        let metrics = server.shutdown();
        for client in clients {
            client.join().expect("client thread");
        }

        let ids = received.lock().expect("ids lock");
        let unique: HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len(), "a response id arrived twice");
        assert_eq!(
            metrics.frames_in,
            ids.len() as u64,
            "a decoded request was never answered (lost across shutdown)"
        );
        assert_eq!(
            metrics.frames_out,
            ids.len() as u64,
            "the server wrote responses that never arrived"
        );
        assert!(
            !ids.is_empty(),
            "shutdown landed before any request was served; not a mid-load drain"
        );
        assert_eq!(metrics.protocol_errors, 0);
    });

    let finals = Arc::try_unwrap(service).expect("last handle").shutdown();
    assert_eq!(
        finals.responses(),
        finals.accepted,
        "service lost a response"
    );
}
