//! Determinism lockdown for the parallel trial runner.
//!
//! The runner's contract is that worker count is *only* a wall-clock
//! knob: the same master seed must produce bit-for-bit identical
//! outcomes whether trials run inline on one thread or fan out across
//! many. This suite runs each experiment family — the watermark ROC
//! statistic draws, the watermark traceback experiment, and both p2psim
//! experiment batches — at 1, 2, and 8 workers and asserts the
//! `Debug`-serialized outcomes are byte-identical.

use lexforensica::p2psim::experiment::{run_experiments_on, ExperimentConfig};
use lexforensica::p2psim::gnutella_experiment::{run_comparisons_on, ComparisonConfig};
use lexforensica::trials::TrialRunner;
use lexforensica::watermark::experiment::{
    run_trial_outcomes_on, run_trials_on, WatermarkExperimentConfig,
};
use lexforensica::watermark::pn::PnCode;
use lexforensica::watermark::roc::{null_statistics_on, signal_statistics_on};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs `f` at each worker count and asserts the `Debug` serialization
/// of the outcome never changes.
fn assert_worker_count_invariant<T: std::fmt::Debug>(what: &str, f: impl Fn(&TrialRunner) -> T) {
    let baseline = format!("{:?}", f(&TrialRunner::sequential()));
    for workers in WORKER_COUNTS {
        let runner = TrialRunner::with_threads(workers);
        let serialized = format!("{:?}", f(&runner));
        assert_eq!(
            baseline.as_bytes(),
            serialized.as_bytes(),
            "{what}: outcome at {workers} workers diverged from sequential"
        );
    }
}

#[test]
fn roc_statistics_are_worker_count_invariant() {
    let code = PnCode::m_sequence(8, 1);
    assert_worker_count_invariant("null_statistics", |runner| {
        null_statistics_on(runner, &code, 2, 100.0, 30.0, 40, 0x0c0ffee)
    });
    assert_worker_count_invariant("signal_statistics", |runner| {
        signal_statistics_on(runner, &code, 2, 120.0, 40.0, 30.0, 40, 0x7ea)
    });
}

#[test]
fn watermark_experiment_is_worker_count_invariant() {
    let config = WatermarkExperimentConfig {
        suspects: 4,
        code_degree: 6,
        chip_ms: 300,
        seed: 0x5eed,
        ..WatermarkExperimentConfig::default()
    };
    assert_worker_count_invariant("watermark trial outcomes", |runner| {
        run_trial_outcomes_on(runner, &config, 6).0
    });
    assert_worker_count_invariant("watermark summary", |runner| {
        run_trials_on(runner, &config, 4).0
    });
}

#[test]
fn p2psim_experiment_batch_is_worker_count_invariant() {
    let config = ExperimentConfig {
        peers: 32,
        sources: 4,
        targets: 8,
        probes: 2,
        seed: 0xa11ce,
        ..ExperimentConfig::default()
    };
    assert_worker_count_invariant("oneswarm experiment batch", |runner| {
        let batch = run_experiments_on(runner, &config, 6).0;
        (
            batch
                .results
                .iter()
                .map(|r| r.outcomes.clone())
                .collect::<Vec<_>>(),
            batch.metrics,
        )
    });
}

#[test]
fn gnutella_comparison_batch_is_worker_count_invariant() {
    let config = ComparisonConfig {
        peers: 32,
        sources: 4,
        seed: 0x90a7,
        ..ComparisonConfig::default()
    };
    assert_worker_count_invariant("gnutella comparison batch", |runner| {
        run_comparisons_on(runner, &config, 6).0
    });
}

#[test]
fn report_accounts_for_every_trial_at_every_worker_count() {
    let config = ComparisonConfig {
        peers: 24,
        sources: 3,
        seed: 1,
        ..ComparisonConfig::default()
    };
    for workers in WORKER_COUNTS {
        let runner = TrialRunner::with_threads(workers);
        let (results, report) = run_comparisons_on(&runner, &config, 7);
        assert_eq!(results.len(), 7);
        assert_eq!(report.trials, 7);
        // Worker count is clamped to the trial count.
        assert_eq!(report.threads, workers.min(7));
        assert_eq!(report.per_worker.iter().sum::<u64>(), 7);
    }
}
