//! What-if grids over the paper's Table 1: systematic perturbations of
//! each scenario and the doctrinally expected verdict shifts.

use lexforensica::law::prelude::*;
use lexforensica::law::scenarios::{scenario, table1};

fn engine() -> ComplianceEngine {
    ComplianceEngine::new()
}

/// Rebuilds a scenario's action with a changed actor.
fn with_actor(row: usize, actor: Actor) -> InvestigativeAction {
    let base = scenario(row);
    let mut b = InvestigativeAction::builder(actor, base.action().data());
    // Preserve the method/circumstance flags that matter per row.
    let m = base.action().method();
    if m.joins_public_protocol {
        b.joining_public_protocol();
    }
    if m.exhaustive_forensic_search {
        b.exhaustive_forensic_search();
    }
    if m.derives_from_lawfully_held_dataset {
        b.mining_lawfully_held_dataset();
    }
    if m.uses_credentials_of_arrestee {
        b.using_arrestee_credentials();
    }
    if m.rate_observation_only {
        b.rate_observation_only();
    }
    if m.operates_intercepting_infrastructure {
        b.operating_intercepting_infrastructure();
    }
    let c = base.action().circumstances();
    if c.policy_eliminates_privacy {
        b.policy_eliminates_privacy();
    }
    if c.victim_authorized_trespasser_monitoring {
        b.victim_authorized_trespasser_monitoring();
    }
    if c.target_operates_as_provider {
        b.target_operates_as_provider();
    }
    b.build()
}

/// Every "No need" public-collection row stays "No need" for a private
/// individual too — public information is public for everyone.
#[test]
fn public_collection_rows_are_free_for_private_actors_too() {
    for row in [9usize, 10, 11, 17, 19, 20] {
        let action = with_actor(row, Actor::private_individual());
        let v = engine().assess(&action).verdict();
        assert_eq!(
            v,
            Verdict::NoProcessNeeded,
            "row {row} should be free for private actors"
        );
    }
}

/// Every "Need" interception row becomes flatly unlawful (not merely
/// process-requiring) for a private individual.
#[test]
fn interception_rows_are_unlawful_for_private_actors() {
    for row in [8usize, 13, 14] {
        let action = with_actor(row, Actor::private_individual());
        let v = engine().assess(&action).verdict();
        assert_eq!(
            v,
            Verdict::UnlawfulForPrivateActor,
            "row {row} should be unlawful for private actors"
        );
    }
}

/// Consent by the target waives the warrant requirement on the
/// device-search rows but cannot waive Title III for third-party
/// interception.
#[test]
fn target_consent_waives_device_searches_not_wiretaps() {
    let engine = engine();
    // Row 16: the attacker's own computer. With the *attacker's* consent
    // (hypothetically), no warrant needed.
    let base = scenario(16);
    let consented = InvestigativeAction::builder(Actor::law_enforcement(), base.action().data())
        .with_consent(Consent::by(ConsentAuthority::TargetSelf))
        .build();
    assert_eq!(
        engine.assess(&consented).verdict(),
        Verdict::NoProcessNeeded
    );

    // Row 8: ISP full-packet capture. The *account holder's* consent is
    // not one-party consent to every intercepted communication; Title III
    // still requires its order.
    let base = scenario(8);
    let consented = InvestigativeAction::builder(Actor::law_enforcement(), base.action().data())
        .with_consent(Consent::by(ConsentAuthority::TargetSelf))
        .build();
    assert_eq!(
        engine.assess(&consented).verdict(),
        Verdict::ProcessRequired(LegalProcess::WiretapOrder)
    );
}

/// One-party consent *does* waive the wiretap requirement (the undercover
/// agent recording his own calls, §III-B-c-vi) — unless state law demands
/// all-party consent.
#[test]
fn one_party_consent_waives_interception() {
    let engine = engine();
    let base = scenario(8);
    let one_party = InvestigativeAction::builder(Actor::law_enforcement(), base.action().data())
        .with_consent(Consent::by(ConsentAuthority::OnePartyToCommunication {
            all_party_state: false,
        }))
        .build();
    assert_eq!(
        engine.assess(&one_party).verdict(),
        Verdict::NoProcessNeeded
    );

    let all_party_state =
        InvestigativeAction::builder(Actor::law_enforcement(), base.action().data())
            .with_consent(Consent::by(ConsentAuthority::OnePartyToCommunication {
                all_party_state: true,
            }))
            .build();
    assert_eq!(
        engine.assess(&all_party_state).verdict(),
        Verdict::ProcessRequired(LegalProcess::WiretapOrder)
    );
}

/// Exigency waives the Fourth Amendment warrant but never the statutory
/// wiretap/pen-trap orders.
#[test]
fn exigency_waives_warrant_rows_not_statutory_rows() {
    let engine = engine();
    // Row 18 (drive hashing, pure Fourth Amendment): exigency waives.
    let base = scenario(18);
    let mut b = InvestigativeAction::builder(Actor::law_enforcement(), base.action().data());
    b.exhaustive_forensic_search();
    b.with_exigency(Exigency::ImminentEvidenceDestruction);
    assert_eq!(
        engine.assess(&b.build()).verdict(),
        Verdict::NoProcessNeeded
    );

    // Row 7 (pen/trap): exigency does not erase the statute.
    let base = scenario(7);
    let exigent = InvestigativeAction::builder(Actor::law_enforcement(), base.action().data())
        .with_exigency(Exigency::ImminentEvidenceDestruction)
        .build();
    assert_eq!(
        engine.assess(&exigent).verdict(),
        Verdict::ProcessRequired(LegalProcess::CourtOrder)
    );
}

/// Probation status waives the warrant rows governed by the Fourth
/// Amendment alone.
#[test]
fn probation_waives_pure_fourth_amendment_rows() {
    let engine = engine();
    for row in [16usize, 18] {
        let base = scenario(row);
        let mut b = InvestigativeAction::builder(Actor::law_enforcement(), base.action().data());
        if base.action().method().exhaustive_forensic_search {
            b.exhaustive_forensic_search();
        }
        b.target_on_probation();
        assert_eq!(
            engine.assess(&b.build()).verdict(),
            Verdict::NoProcessNeeded,
            "row {row}"
        );
    }
}

/// The verdict for every row is invariant under rebuilding the scenario —
/// scenario constructors are pure.
#[test]
fn scenario_constructors_are_pure() {
    let engine = engine();
    for row in table1() {
        let again = scenario(row.number());
        assert_eq!(
            engine.assess(row.action()).verdict(),
            engine.assess(again.action()).verdict(),
            "row {}",
            row.number()
        );
    }
}

/// Government direction converts each private/provider row into a
/// government search — all content rows then need process.
#[test]
fn directed_admins_lose_their_exceptions() {
    let engine = engine();
    for row in [1usize, 2] {
        let directed = with_actor(row, Actor::system_administrator().directed_by_government());
        assert!(
            engine.assess(&directed).verdict().needs_process(),
            "row {row}"
        );
    }
}
