//! E2e replay differential for the durable request journal: a live
//! `serve --tcp`-equivalent wire session is journaled through
//! [`WireServer::start_with_sinks`], then the journal is replayed
//! through the in-process [`BatchAssessor`] and every verdict must match
//! the journaled bytes byte-for-byte — the replay-driven regression
//! oracle from DESIGN.md §10 exercised at workspace level. A second
//! test races a mid-load graceful drain against the group-commit writer
//! and requires that every response a client actually received has a
//! matching journal record (no acknowledged-but-unjournaled verdicts).

use journal::{read_all, Journal, JournalConfig, Mode, SyncPolicy};
use lexforensica::law::batch::BatchAssessor;
use lexforensica::law::prelude::*;
use lexforensica::spec::parse_jsonl;
use service::prelude::*;
use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;
use wire::frame::{self, Frame, Request};
use wire::prelude::*;

/// The same JSONL vocabulary the CLI fixtures use.
const LINES: &[&str] = &[
    r#"{"actor": "leo", "data": "headers", "when": "realtime", "where": "isp", "describe": "pen/trap stream"}"#,
    r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "isp", "describe": "live interception"}"#,
    r#"{"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider", "describe": "subscriber records"}"#,
    r#"{"actor": "admin", "data": "headers", "when": "realtime", "where": "own-network", "describe": "ops review"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored-unopened", "where": "provider", "describe": "stored unopened mail"}"#,
    r#"{"actor": "private", "data": "content", "when": "realtime", "where": "wireless", "describe": "private wifi capture"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored", "where": "device", "flags": ["consent"], "describe": "consented device exam"}"#,
    r#"{"actor": "leo", "data": "records", "when": "stored", "where": "provider", "describe": "transaction records"}"#,
];

/// A payload the spec parser must reject — exercises the bad-request
/// journal path alongside the verdict path.
const MALFORMED: &str = r#"{"actor": "leo", "data":"#;

/// A scratch journal directory unique to this test process.
fn journal_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lxj-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `line -> verdict_line` computed through the official batch path —
/// exactly what `assess-batch` prints between line number and summary.
fn expected_verdicts() -> HashMap<&'static [u8], String> {
    let input = LINES.join("\n");
    let batch = parse_jsonl(input.as_bytes());
    assert!(batch.is_clean(), "fixture lines must parse");
    let actions: Vec<InvestigativeAction> = batch.lines.iter().map(|l| l.action.clone()).collect();
    let assessments = BatchAssessor::new().assess_all(&actions);
    LINES
        .iter()
        .zip(&assessments)
        .map(|(line, a)| (line.as_bytes(), a.verdict_line()))
        .collect()
}

/// Journal a pipelined multi-connection wire session (including
/// malformed payloads), then replay the journal: every `ok` record's
/// request must re-assess to the exact journaled verdict bytes, every
/// `bad-request` record must still fail to parse, sequence numbers must
/// be contiguous from 1, and rotation must have produced multiple
/// segments.
#[test]
fn journaled_wire_session_replays_byte_identical_to_assess_batch() {
    const CONNECTIONS: usize = 4;
    const PER_CONNECTION: usize = 32;

    let dir = journal_dir("differential");
    let expected = expected_verdicts();

    let (journal, recovery) = Journal::open(
        &dir,
        JournalConfig {
            // Tiny segments so a ~128-record session rotates repeatedly.
            segment_bytes: 2048,
            sync: SyncPolicy::GroupCommit,
            ..JournalConfig::default()
        },
    )
    .expect("open fresh journal");
    assert_eq!(recovery.next_seq, 1, "fresh directory starts at seq 1");
    let journal = Arc::new(journal);

    let service = Arc::new(ComplianceService::start(ServiceConfig {
        workers: 4,
        capacity: 128,
        policy: AdmissionPolicy::Block,
        ..ServiceConfig::default()
    }));
    let server = WireServer::start_with_sinks(
        "127.0.0.1:0",
        Arc::clone(&service),
        WireConfig::default(),
        None,
        Some(Arc::clone(&journal)),
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for c in 0..CONNECTIONS {
            let expected = &expected;
            scope.spawn(move || {
                let client = WireClient::connect(addr).expect("dial");
                let calls: Vec<_> = (0..PER_CONNECTION)
                    .map(|i| {
                        // Every 8th request is malformed; the rest walk
                        // the fixture pool.
                        let line = if i % 8 == 7 {
                            MALFORMED
                        } else {
                            LINES[(c + i) % LINES.len()]
                        };
                        (
                            line,
                            client.submit(line.as_bytes().to_vec(), 0).expect("submit"),
                        )
                    })
                    .collect();
                for (line, call) in calls {
                    let response = call.wait().expect("answered");
                    if line == MALFORMED {
                        assert_eq!(response.status, Status::BadRequest);
                    } else {
                        assert_eq!(response.status, Status::Ok);
                        assert_eq!(
                            String::from_utf8(response.payload).expect("utf-8"),
                            expected[line.as_bytes()],
                            "wire verdict differs from assess-batch"
                        );
                    }
                }
            });
        }
    });

    let metrics = server.shutdown();
    let total = (CONNECTIONS * PER_CONNECTION) as u64;
    assert_eq!(metrics.frames_in, total);
    assert_eq!(metrics.frames_out, total);
    let finals = Arc::try_unwrap(service).expect("last handle").shutdown();
    assert_eq!(finals.responses(), finals.accepted);
    Arc::try_unwrap(journal)
        .expect("server joined; last journal handle")
        .close()
        .expect("journal closes clean");

    // --- Replay: the journal is now the only input. ---
    let (records, truncation) = read_all(&dir, Mode::Strict).expect("strict scan is clean");
    assert!(truncation.is_none(), "strict mode never truncates");
    assert_eq!(records.len() as u64, total, "one record per answered frame");
    for (i, record) in records.iter().enumerate() {
        assert_eq!(record.seq, i as u64 + 1, "sequence numbers are contiguous");
    }
    let segments = std::fs::read_dir(&dir)
        .expect("journal dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "lxj"))
        .count();
    assert!(segments > 1, "2 KiB segments must rotate, got {segments}");
    let traces: HashSet<u64> = records.iter().map(|r| r.trace.as_u64()).collect();
    assert_eq!(traces.len(), records.len(), "trace ids are distinct");

    let mut ok_records = Vec::new();
    let mut bad = 0usize;
    for record in &records {
        match Status::from_byte(record.status) {
            Some(Status::Ok) => {
                let batch = parse_jsonl(&record.request);
                assert!(
                    batch.is_clean() && batch.lines.len() == 1,
                    "seq {}: journaled ok request no longer parses",
                    record.seq
                );
                ok_records.push((record, batch.lines[0].action.clone()));
            }
            Some(Status::BadRequest) => {
                let batch = parse_jsonl(&record.request);
                assert!(
                    !batch.is_clean() || batch.lines.is_empty(),
                    "seq {}: journaled bad-request now parses",
                    record.seq
                );
                bad += 1;
            }
            status => panic!("seq {}: unexpected status {status:?}", record.seq),
        }
    }
    assert_eq!(
        bad,
        CONNECTIONS * PER_CONNECTION / 8,
        "all malformed journaled"
    );

    let actions: Vec<InvestigativeAction> = ok_records
        .iter()
        .map(|(_, action)| action.clone())
        .collect();
    let assessments = BatchAssessor::new().assess_all(&actions);
    for ((record, _), assessment) in ok_records.iter().zip(&assessments) {
        assert_eq!(
            assessment.verdict_line().as_bytes(),
            &record.verdict[..],
            "seq {}: replayed verdict diverges from journal",
            record.seq
        );
    }

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Mid-load graceful drain with the journal attached: raw-frame clients
/// (globally unique ids) blast requests while the server drains. After
/// the drain and a clean journal close, the multiset of
/// `(status, request)` pairs in the journal must equal the multiset of
/// responses the clients actually received — every acknowledged verdict
/// is durable, nothing is journaled twice — and every `ok` record's
/// verdict must match the batch oracle.
#[test]
fn graceful_drain_journals_every_acknowledged_response() {
    const CONNECTIONS: usize = 8;
    const PER_CONNECTION: u64 = 50;

    let dir = journal_dir("drain");
    let expected = expected_verdicts();

    let (journal, _) = Journal::open(
        &dir,
        JournalConfig {
            segment_bytes: 4096,
            sync: SyncPolicy::GroupCommit,
            ..JournalConfig::default()
        },
    )
    .expect("open fresh journal");
    let journal = Arc::new(journal);

    let service = Arc::new(ComplianceService::start(ServiceConfig {
        workers: 2,
        capacity: 256,
        policy: AdmissionPolicy::Block,
        engine_floor: Duration::from_millis(1),
        ..ServiceConfig::default()
    }));
    let server = WireServer::start_with_sinks(
        "127.0.0.1:0",
        Arc::clone(&service),
        WireConfig {
            read_tick: Duration::from_millis(5),
            ..WireConfig::default()
        },
        None,
        Some(Arc::clone(&journal)),
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let start = Arc::new(Barrier::new(CONNECTIONS + 1));
    // Everything the clients actually got back: (status byte, request
    // payload the id maps to).
    type Delivered = Vec<(u8, &'static [u8])>;
    let received: Arc<Mutex<Delivered>> = Arc::new(Mutex::new(Vec::new()));

    std::thread::scope(|scope| {
        let clients: Vec<_> = (0..CONNECTIONS as u64)
            .map(|c| {
                let start = Arc::clone(&start);
                let received = Arc::clone(&received);
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("dial raw");
                    stream.set_nodelay(true).expect("nodelay");
                    start.wait();
                    for i in 0..PER_CONNECTION {
                        let frame = Frame::Request(Request {
                            id: c * 1_000_000 + i, // globally unique
                            deadline_ms: 0,
                            want_explain: false,
                            payload: LINES[(i % LINES.len() as u64) as usize].as_bytes().to_vec(),
                        });
                        if stream.write_all(&frame::encode(&frame)).is_err() {
                            break;
                        }
                    }
                    let _ = stream.flush();
                    let mut got = Vec::new();
                    loop {
                        match frame::read_frame(&mut stream, wire::MAX_FRAME) {
                            Ok(Some(Frame::Response(response))) => {
                                let i = response.id % 1_000_000;
                                got.push((
                                    response.status.as_byte(),
                                    LINES[(i % LINES.len() as u64) as usize].as_bytes(),
                                ));
                            }
                            Ok(Some(_)) => panic!("server sent a non-response frame"),
                            Ok(None) => break,
                            Err(e) => panic!("connection {c} torn down uncleanly: {e}"),
                        }
                    }
                    received.lock().expect("lock").extend(got);
                })
            })
            .collect();
        // All clients are mid-blast when the drain lands.
        start.wait();
        std::thread::sleep(Duration::from_millis(10));
        let metrics = server.shutdown();
        for client in clients {
            client.join().expect("client thread");
        }
        let received = received.lock().expect("lock");
        assert!(!received.is_empty(), "drain landed before any response");
        assert_eq!(metrics.frames_out, received.len() as u64);
    });

    let finals = Arc::try_unwrap(service).expect("last handle").shutdown();
    assert_eq!(finals.responses(), finals.accepted);
    Arc::try_unwrap(journal)
        .expect("last journal handle")
        .close()
        .expect("journal closes clean");

    let (records, truncation) = read_all(&dir, Mode::Strict).expect("strict scan is clean");
    assert!(truncation.is_none());

    // Multiset equality: journal contents == delivered responses.
    let mut ledger: HashMap<(u8, &[u8]), i64> = HashMap::new();
    for (status, request) in received.lock().expect("lock").iter() {
        *ledger.entry((*status, request)).or_insert(0) += 1;
    }
    assert_eq!(
        records.len(),
        ledger.values().sum::<i64>() as usize,
        "journal record count != delivered response count"
    );
    for record in &records {
        let key = (record.status, &record.request[..]);
        let slot = ledger.get_mut(&key).unwrap_or_else(|| {
            panic!(
                "seq {}: journal record was never delivered to a client",
                record.seq
            )
        });
        *slot -= 1;
        assert!(
            *slot >= 0,
            "seq {}: journaled more often than delivered",
            record.seq
        );
        if Status::from_byte(record.status) == Some(Status::Ok) {
            assert_eq!(
                expected[&record.request[..]].as_bytes(),
                &record.verdict[..],
                "seq {}: journaled verdict diverges from batch oracle",
                record.seq
            );
        }
    }
    assert!(
        ledger.values().all(|&n| n == 0),
        "a delivered response has no journal record: {ledger:?}"
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
