//! Smoke tests for the `lexforensica` command-line tool.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lexforensica"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn table1_prints_twenty_rows() {
    let out = run(&["table1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 20);
    assert!(stdout.contains("#1 "));
    assert!(stdout.contains("#20"));
}

#[test]
fn assess_wiretap_posture() {
    let out = run(&[
        "assess", "--actor", "leo", "--data", "content", "--when", "realtime", "--where", "isp",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("wiretap order"), "{stdout}");
}

#[test]
fn assess_rate_only_downgrades_to_court_order() {
    let out = run(&[
        "assess", "--actor", "leo", "--data", "content", "--when", "realtime", "--where", "isp",
        "--rate-only",
    ]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("court order"), "{stdout}");
}

#[test]
fn assess_admin_own_network_is_free() {
    let out = run(&[
        "assess", "--actor", "admin", "--data", "headers", "--where", "own-network",
    ]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("no need"), "{stdout}");
}

#[test]
fn cite_finds_katz() {
    let out = run(&["cite", "katz"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("389 U.S. 347"));
}

#[test]
fn cite_miss_fails() {
    let out = run(&["cite", "zzzznonexistent"]);
    assert!(!out.status.success());
}

#[test]
fn bad_usage_exits_2() {
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["assess", "--where", "narnia"]);
    assert_eq!(out.status.code(), Some(2));
}
