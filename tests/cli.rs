//! Smoke tests for the `lexforensica` command-line tool.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lexforensica"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn table1_prints_twenty_rows() {
    let out = run(&["table1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 20);
    assert!(stdout.contains("#1 "));
    assert!(stdout.contains("#20"));
}

#[test]
fn assess_wiretap_posture() {
    let out = run(&[
        "assess", "--actor", "leo", "--data", "content", "--when", "realtime", "--where", "isp",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("wiretap order"), "{stdout}");
}

#[test]
fn assess_rate_only_downgrades_to_court_order() {
    let out = run(&[
        "assess",
        "--actor",
        "leo",
        "--data",
        "content",
        "--when",
        "realtime",
        "--where",
        "isp",
        "--rate-only",
    ]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("court order"), "{stdout}");
}

#[test]
fn assess_admin_own_network_is_free() {
    let out = run(&[
        "assess",
        "--actor",
        "admin",
        "--data",
        "headers",
        "--where",
        "own-network",
    ]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("no need"), "{stdout}");
}

#[test]
fn cite_finds_katz() {
    let out = run(&["cite", "katz"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("389 U.S. 347"));
}

#[test]
fn cite_miss_fails() {
    let out = run(&["cite", "zzzznonexistent"]);
    assert!(!out.status.success());
}

#[test]
fn bad_usage_exits_2() {
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["assess", "--where", "narnia"]);
    assert_eq!(out.status.code(), Some(2));
}

/// Run `assess-batch` with `input` piped on stdin.
fn run_batch_stdin(input: &str) -> std::process::Output {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_lexforensica"))
        .args(["assess-batch", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    child.wait_with_output().expect("binary exits")
}

/// The checked-in fixture must produce this exact verdict stream — the
/// golden record for the batch pipeline end to end, including Table 1
/// rows 7 (pen/trap), 8 (wiretap), and 12 (provider-operated server).
#[test]
fn assess_batch_fixture_matches_golden_output() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/assess_batch.jsonl"
    );
    let out = run(&["assess-batch", fixture]);
    assert!(out.status.success(), "{:?}", out);

    let stdout = String::from_utf8(out.stdout).unwrap();
    let golden = "\
#1 need (court order) [settled] -- row 7: pen/trap on addressing data at the ISP
#2 need (wiretap order) [settled] -- row 8: real-time content interception at the ISP
#4 need (search warrant) [settled] -- row 12: hidden server operating as a provider
#5 no need [settled] -- admin collects headers realtime at own-network
#6 need (court order) [settled] -- traffic-rate watermark tracing only
#7 unlawful for a private actor [authors' judgment (*)] -- private collects content realtime at wireless
#8 no need [settled] -- device search with the target's consent
#9 need (subpoena) [settled] -- subscriber records subpoenaed from the provider
#10 no need [settled] -- forensic image of a probationer's seized laptop
#11 no need [settled] -- monitoring an open P2P protocol
";
    assert_eq!(stdout, golden);

    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("10 actions"), "{stderr}");
    assert!(stderr.contains("10 misses"), "{stderr}");
}

/// Repeated fact patterns on stdin are deduplicated by the verdict cache;
/// the report on stderr shows the hits.
#[test]
fn assess_batch_reports_cache_hits_for_repeats() {
    let line = r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "isp"}"#;
    let input = format!("{line}\n{line}\n{line}\n");
    let out = run_batch_stdin(&input);
    assert!(out.status.success());

    let stdout = String::from_utf8(out.stdout).unwrap();
    for n in 1..=3 {
        assert!(
            stdout.contains(&format!("#{n} need (wiretap order) [settled]")),
            "{stdout}"
        );
    }
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("2 hits, 1 misses"), "{stderr}");
}

/// A malformed line is reported to stderr with its 1-based line number
/// and fails the run, but the remaining lines are still assessed.
#[test]
fn assess_batch_malformed_line_is_reported_not_fatal() {
    let input = concat!(
        r#"{"actor": "leo", "data": "headers", "when": "realtime", "where": "isp"}"#,
        "\n",
        "this is not json\n",
        r#"{"actor": "leo", "where": "narnia"}"#,
        "\n",
        r#"{"actor": "admin", "data": "headers", "where": "own-network"}"#,
        "\n",
    );
    let out = run_batch_stdin(input);
    assert_eq!(out.status.code(), Some(1));

    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 2:"), "{stderr}");
    assert!(stderr.contains("line 3:"), "{stderr}");
    assert!(stderr.contains("narnia"), "{stderr}");
    assert!(stderr.contains("2 malformed line(s) skipped"), "{stderr}");

    // The good lines around the bad ones were still assessed.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("#1 need (court order) [settled]"),
        "{stdout}"
    );
    assert!(stdout.contains("#4 no need [settled]"), "{stdout}");
}

/// A missing input file is a usage-level failure, not a panic.
#[test]
fn assess_batch_missing_file_fails_cleanly() {
    let out = run(&["assess-batch", "/nonexistent/batch.jsonl"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.is_empty());
}

/// `--threads` and `--seed` parse through the shared `Args` helper and
/// never change the verdict stream: any seed shuffles only the internal
/// assessment order, and the output is re-sorted into line order.
#[test]
fn assess_batch_output_is_thread_and_seed_invariant() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/assess_batch.jsonl"
    );
    let baseline = run(&["assess-batch", fixture]);
    assert!(baseline.status.success());
    for extra in [
        &["--threads", "1"][..],
        &["--threads", "8", "--seed", "7"][..],
        &["--seed=12345"][..],
    ] {
        let mut args = vec!["assess-batch", fixture];
        args.extend_from_slice(extra);
        let out = run(&args);
        assert!(out.status.success(), "{args:?}");
        assert_eq!(
            out.stdout, baseline.stdout,
            "verdicts changed under {args:?}"
        );
    }
}

/// The batch report surfaces throughput and the cache hit rate on
/// stderr, in the same shape `serve` uses.
#[test]
fn assess_batch_report_shows_throughput_and_hit_rate() {
    let line = r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "isp"}"#;
    let input = format!("{line}\n{line}\n{line}\n{line}\n");
    let out = run_batch_stdin(&input);
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("actions/s"), "{stderr}");
    assert!(stderr.contains("75.0% hit rate"), "{stderr}");
}

/// The `serve` fixture's golden output: the service path must answer
/// exactly what the one-shot engine answers, line for line.
#[test]
fn serve_fixture_matches_golden_output() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/serve_demo.jsonl"
    );
    let out = run(&["serve", fixture, "--workers", "2"]);
    assert!(out.status.success(), "{out:?}");

    let stdout = String::from_utf8(out.stdout).unwrap();
    let golden = "\
#1 need (court order) [settled] -- pen/trap stream on addressing data
#2 need (wiretap order) [settled] -- live content interception request
#3 need (subpoena) [settled] -- subscriber records request
#4 need (court order) [settled] -- repeat pen/trap request (cache hit)
#5 no need [settled] -- provider-side ops review
#6 need (search warrant) [settled] -- stored unopened mail at the provider
#7 need (wiretap order) [settled] -- second interception on the same facts (cache hit)
#8 no need [settled] -- consented device examination
";
    assert_eq!(stdout, golden);

    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("served 8 of 8 requests"), "{stderr}");
    assert!(stderr.contains("2 hits, 6 misses"), "{stderr}");
    assert!(stderr.contains("metrics: {\"submitted\": 8"), "{stderr}");
    assert!(stderr.contains("\"end_to_end_us\""), "{stderr}");
}

/// `serve` and `assess-batch` agree verdict-for-verdict on the same
/// input — the service changes the cost model, never the answers.
#[test]
fn serve_agrees_with_assess_batch() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/assess_batch.jsonl"
    );
    let batch = run(&["assess-batch", fixture]);
    let served = run(&["serve", fixture, "--workers", "4", "--capacity", "4"]);
    assert!(batch.status.success() && served.status.success());
    assert_eq!(batch.stdout, served.stdout);
}

/// Every admission policy serves the small fixture completely — at this
/// scale nothing is shed, whatever the policy.
#[test]
fn serve_accepts_each_admission_policy() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/serve_demo.jsonl"
    );
    for policy in ["block", "reject", "drop-oldest"] {
        let out = run(&["serve", fixture, "--policy", policy, "--workers", "2"]);
        assert!(out.status.success(), "policy {policy}: {out:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("served 8 of 8"),
            "policy {policy}: {stderr}"
        );
    }
    let out = run(&["serve", fixture, "--policy", "lifo"]);
    assert_eq!(out.status.code(), Some(2));
}

/// A generous deadline changes nothing; the flag parses and the requests
/// still complete.
#[test]
fn serve_with_deadline_completes_small_batches() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/serve_demo.jsonl"
    );
    let out = run(&["serve", fixture, "--deadline-ms", "10000"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(!stdout.contains("timeout"), "{stdout}");
}

/// A `serve --tcp` server under test: spawned with stdin held open (EOF
/// is the shutdown signal) and its listening address scraped from
/// stderr.
struct TcpServer {
    child: std::process::Child,
    stdin: Option<std::process::ChildStdin>,
    stderr: std::thread::JoinHandle<String>,
    addr: String,
}

impl TcpServer {
    fn spawn(extra: &[&str]) -> TcpServer {
        use std::io::{BufRead, BufReader, Read};
        use std::process::Stdio;
        let mut child = Command::new(env!("CARGO_BIN_EXE_lexforensica"))
            .args(["serve", "--tcp", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary runs");
        let stdin = child.stdin.take();
        let mut reader = BufReader::new(child.stderr.take().expect("stderr piped"));
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .expect("server announces itself");
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected first stderr line: {line:?}"))
            .trim()
            .to_string();
        // Keep draining stderr so the server never blocks on a full pipe.
        let stderr = std::thread::spawn(move || {
            let mut rest = String::new();
            let _ = reader.read_to_string(&mut rest);
            rest
        });
        TcpServer {
            child,
            stdin,
            stderr,
            addr,
        }
    }

    /// Closes stdin (the graceful-shutdown signal) and collects the
    /// exit status and remaining stderr.
    fn shutdown(mut self) -> (std::process::ExitStatus, String) {
        drop(self.stdin.take());
        let status = self.child.wait().expect("server exits");
        let stderr = self.stderr.join().expect("stderr thread");
        (status, stderr)
    }
}

/// `assess-remote` against a live `serve --tcp` prints byte-for-byte
/// what `assess-batch` prints for the same fixture, and the server
/// drains cleanly on stdin EOF with balanced wire metrics.
#[test]
fn assess_remote_matches_assess_batch_over_tcp() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/serve_demo.jsonl"
    );
    let server = TcpServer::spawn(&["--workers", "2"]);

    let batch = run(&["assess-batch", fixture]);
    assert!(batch.status.success());
    // Two sequential replays: the second also proves connection
    // teardown leaves the server healthy.
    for round in 0..2 {
        let remote = run(&["assess-remote", &server.addr, fixture, "--pipeline", "4"]);
        assert!(remote.status.success(), "round {round}: {remote:?}");
        assert_eq!(
            remote.stdout, batch.stdout,
            "round {round}: remote verdicts differ from assess-batch"
        );
    }

    let (status, stderr) = server.shutdown();
    assert!(status.success(), "{stderr}");
    assert!(stderr.contains("stdin closed; draining"), "{stderr}");
    assert!(stderr.contains("\"frames_in\": 16"), "{stderr}");
    assert!(stderr.contains("\"frames_out\": 16"), "{stderr}");
    assert!(stderr.contains("\"protocol_errors\": 0"), "{stderr}");
    assert!(stderr.contains("service metrics:"), "{stderr}");
}

/// Malformed lines fail `assess-remote` with a nonzero exit and per-line
/// diagnostics, while well-formed lines are still assessed remotely.
#[test]
fn assess_remote_reports_malformed_lines_and_fails() {
    use std::io::Write;
    use std::process::Stdio;
    let server = TcpServer::spawn(&[]);

    let mut child = Command::new(env!("CARGO_BIN_EXE_lexforensica"))
        .args(["assess-remote", &server.addr, "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"{\"actor\": \"leo\"}\nnot json\n")
        .unwrap();
    let out = child.wait_with_output().expect("binary exits");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 2:"), "{stderr}");
    assert!(stderr.contains("1 malformed line(s) skipped"), "{stderr}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("#1 need (wiretap order)"), "{stdout}");

    let (status, _) = server.shutdown();
    assert!(status.success());
}

/// A dead address fails fast and nonzero, with a readable message.
#[test]
fn assess_remote_unreachable_server_fails_cleanly() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/serve_demo.jsonl"
    );
    let out = run(&["assess-remote", "127.0.0.1:1", fixture]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cannot connect"), "{stderr}");
}

/// Malformed lines are reported and skipped by `serve` exactly as by
/// `assess-batch`, with a nonzero exit.
#[test]
fn serve_reports_malformed_lines() {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_lexforensica"))
        .args(["serve", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"{\"actor\": \"leo\"}\nnot json\n")
        .unwrap();
    let out = child.wait_with_output().expect("binary exits");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 2:"), "{stderr}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("#1 need (wiretap order)"), "{stdout}");
}
