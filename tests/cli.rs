//! Smoke tests for the `lexforensica` command-line tool.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lexforensica"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn table1_prints_twenty_rows() {
    let out = run(&["table1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 20);
    assert!(stdout.contains("#1 "));
    assert!(stdout.contains("#20"));
}

#[test]
fn assess_wiretap_posture() {
    let out = run(&[
        "assess", "--actor", "leo", "--data", "content", "--when", "realtime", "--where", "isp",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("wiretap order"), "{stdout}");
}

#[test]
fn assess_rate_only_downgrades_to_court_order() {
    let out = run(&[
        "assess",
        "--actor",
        "leo",
        "--data",
        "content",
        "--when",
        "realtime",
        "--where",
        "isp",
        "--rate-only",
    ]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("court order"), "{stdout}");
}

#[test]
fn assess_admin_own_network_is_free() {
    let out = run(&[
        "assess",
        "--actor",
        "admin",
        "--data",
        "headers",
        "--where",
        "own-network",
    ]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("no need"), "{stdout}");
}

#[test]
fn cite_finds_katz() {
    let out = run(&["cite", "katz"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("389 U.S. 347"));
}

#[test]
fn cite_miss_fails() {
    let out = run(&["cite", "zzzznonexistent"]);
    assert!(!out.status.success());
}

#[test]
fn bad_usage_exits_2() {
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["assess", "--where", "narnia"]);
    assert_eq!(out.status.code(), Some(2));
}

/// Run `assess-batch` with `input` piped on stdin.
fn run_batch_stdin(input: &str) -> std::process::Output {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_lexforensica"))
        .args(["assess-batch", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    child.wait_with_output().expect("binary exits")
}

/// The checked-in fixture must produce this exact verdict stream — the
/// golden record for the batch pipeline end to end, including Table 1
/// rows 7 (pen/trap), 8 (wiretap), and 12 (provider-operated server).
#[test]
fn assess_batch_fixture_matches_golden_output() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/assess_batch.jsonl"
    );
    let out = run(&["assess-batch", fixture]);
    assert!(out.status.success(), "{:?}", out);

    let stdout = String::from_utf8(out.stdout).unwrap();
    let golden = "\
#1 need (court order) [settled] -- row 7: pen/trap on addressing data at the ISP
#2 need (wiretap order) [settled] -- row 8: real-time content interception at the ISP
#4 need (search warrant) [settled] -- row 12: hidden server operating as a provider
#5 no need [settled] -- admin collects headers realtime at own-network
#6 need (court order) [settled] -- traffic-rate watermark tracing only
#7 unlawful for a private actor [authors' judgment (*)] -- private collects content realtime at wireless
#8 no need [settled] -- device search with the target's consent
#9 need (subpoena) [settled] -- subscriber records subpoenaed from the provider
#10 no need [settled] -- forensic image of a probationer's seized laptop
#11 no need [settled] -- monitoring an open P2P protocol
";
    assert_eq!(stdout, golden);

    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("10 actions"), "{stderr}");
    assert!(stderr.contains("10 misses"), "{stderr}");
}

/// Repeated fact patterns on stdin are deduplicated by the verdict cache;
/// the report on stderr shows the hits.
#[test]
fn assess_batch_reports_cache_hits_for_repeats() {
    let line = r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "isp"}"#;
    let input = format!("{line}\n{line}\n{line}\n");
    let out = run_batch_stdin(&input);
    assert!(out.status.success());

    let stdout = String::from_utf8(out.stdout).unwrap();
    for n in 1..=3 {
        assert!(
            stdout.contains(&format!("#{n} need (wiretap order) [settled]")),
            "{stdout}"
        );
    }
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("2 hits, 1 misses"), "{stderr}");
}

/// A malformed line is reported to stderr with its 1-based line number
/// and fails the run, but the remaining lines are still assessed.
#[test]
fn assess_batch_malformed_line_is_reported_not_fatal() {
    let input = concat!(
        r#"{"actor": "leo", "data": "headers", "when": "realtime", "where": "isp"}"#,
        "\n",
        "this is not json\n",
        r#"{"actor": "leo", "where": "narnia"}"#,
        "\n",
        r#"{"actor": "admin", "data": "headers", "where": "own-network"}"#,
        "\n",
    );
    let out = run_batch_stdin(input);
    assert_eq!(out.status.code(), Some(1));

    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 2:"), "{stderr}");
    assert!(stderr.contains("line 3:"), "{stderr}");
    assert!(stderr.contains("narnia"), "{stderr}");
    assert!(stderr.contains("2 malformed line(s) skipped"), "{stderr}");

    // The good lines around the bad ones were still assessed.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("#1 need (court order) [settled]"),
        "{stdout}"
    );
    assert!(stdout.contains("#4 no need [settled]"), "{stdout}");
}

/// A missing input file is a usage-level failure, not a panic.
#[test]
fn assess_batch_missing_file_fails_cleanly() {
    let out = run(&["assess-batch", "/nonexistent/batch.jsonl"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.is_empty());
}
