//! Differential lockdown of the DSSS detector fast path.
//!
//! The synchronization search in [`Detector::detect`] was rewritten from
//! a naive per-offset recomputation (O(offsets × chips × oversample))
//! to a prefix-sum formulation with incrementally folded Pearson
//! normalization (O(series + offsets × chips)). The naive implementation
//! is retained as `despread_at_reference`/`detect_reference` precisely so
//! this suite can assert the two agree: over pseudo-random series,
//! oversample factors, and offsets, the per-offset statistics match
//! within 1e-9 and the full search picks the identical best offset.

use lexforensica::watermark::detect::{ideal_series, Detector};
use lexforensica::watermark::pn::PnCode;

/// Deterministic xorshift64* generator — the only randomness source in
/// this suite (same driver idiom as `property_tests.rs`).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n`.
    fn gen_range(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform f64 in `[lo, hi)`.
    fn gen_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

const TOLERANCE: f64 = 1e-9;

fn random_series(rng: &mut Rng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_f64(0.0, 200.0)).collect()
}

/// Noisy watermark-bearing series with a random lead-in, so the search
/// has a non-trivial true offset to find.
fn watermarked_series(rng: &mut Rng, code: &PnCode, oversample: usize, lead: usize) -> Vec<f64> {
    let mut series: Vec<f64> = (0..lead).map(|_| rng.gen_f64(40.0, 160.0)).collect();
    for x in ideal_series(code, oversample, 120.0, 40.0) {
        series.push(x + rng.gen_f64(-15.0, 15.0));
    }
    series
}

#[test]
fn despread_at_matches_reference_on_random_series() {
    let mut rng = Rng::new(0x5eed_d1ff);
    for degree in [5u32, 6, 7, 8] {
        let code = PnCode::m_sequence(degree, 1);
        for _ in 0..8 {
            let oversample = 1 + rng.gen_range(4);
            let extra = rng.gen_range(3 * oversample + 1);
            let len = code.len() * oversample + extra;
            let series = random_series(&mut rng, len);
            let det = Detector::new(code.clone(), oversample, extra, 0.5);
            for offset in 0..=extra {
                let fast = det.despread_at(&series, offset);
                let reference = det.despread_at_reference(&series, offset);
                match (fast, reference) {
                    (Some(f), Some(r)) => assert!(
                        (f - r).abs() <= TOLERANCE,
                        "degree {degree} oversample {oversample} offset {offset}: \
                         fast {f} vs reference {r}"
                    ),
                    (None, None) => {}
                    other => panic!(
                        "degree {degree} oversample {oversample} offset {offset}: \
                         availability diverged: {other:?}"
                    ),
                }
            }
        }
    }
}

#[test]
fn despread_at_agrees_on_degenerate_inputs() {
    let code = PnCode::m_sequence(6, 1);
    let det = Detector::new(code.clone(), 2, 8, 0.5);

    // Constant series: zero variance, both paths must decline.
    let flat = vec![100.0; code.len() * 2 + 8];
    for offset in 0..=8 {
        assert_eq!(
            det.despread_at(&flat, offset),
            det.despread_at_reference(&flat, offset),
            "flat series diverged at offset {offset}"
        );
    }

    // Series too short for even one full code period at the offset.
    let short = vec![100.0, 120.0, 90.0];
    for offset in 0..=8 {
        assert_eq!(det.despread_at(&short, offset), None);
        assert_eq!(det.despread_at_reference(&short, offset), None);
    }

    // Empty series.
    assert_eq!(det.despread_at(&[], 0), None);
    assert_eq!(det.despread_at_reference(&[], 0), None);
}

#[test]
fn detect_matches_reference_search_on_watermarked_series() {
    let mut rng = Rng::new(0xdead_10cc);
    for degree in [6u32, 7, 8] {
        let code = PnCode::m_sequence(degree, 1);
        for _ in 0..6 {
            let oversample = 1 + rng.gen_range(3);
            let max_offset = 4 * oversample;
            let lead = rng.gen_range(max_offset + 1);
            let series = watermarked_series(&mut rng, &code, oversample, lead);
            let det = Detector::new(
                code.clone(),
                oversample,
                max_offset,
                Detector::sigma_threshold(code.len(), 4.0),
            );
            let fast = det.detect(&series);
            let reference = det.detect_reference(&series);
            assert_eq!(
                fast.best_offset, reference.best_offset,
                "degree {degree} oversample {oversample} lead {lead}: best offset diverged"
            );
            assert_eq!(
                fast.detected, reference.detected,
                "degree {degree} oversample {oversample} lead {lead}: verdict diverged"
            );
            assert!(
                (fast.statistic - reference.statistic).abs() <= TOLERANCE,
                "degree {degree} oversample {oversample} lead {lead}: \
                 statistic {} vs {}",
                fast.statistic,
                reference.statistic
            );
        }
    }
}

#[test]
fn detect_matches_reference_on_pure_noise() {
    let mut rng = Rng::new(0x0b5e_55ed);
    let code = PnCode::m_sequence(7, 1);
    for _ in 0..6 {
        let oversample = 1 + rng.gen_range(3);
        let max_offset = 5 * oversample;
        let len = code.len() * oversample + max_offset + rng.gen_range(8);
        let series = random_series(&mut rng, len);
        let det = Detector::new(
            code.clone(),
            oversample,
            max_offset,
            Detector::sigma_threshold(code.len(), 4.0),
        );
        let fast = det.detect(&series);
        let reference = det.detect_reference(&series);
        assert_eq!(fast.best_offset, reference.best_offset);
        assert_eq!(fast.detected, reference.detected);
        assert!((fast.statistic - reference.statistic).abs() <= TOLERANCE);
    }
}
