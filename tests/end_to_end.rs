//! Cross-crate integration tests spanning the simulators, the legal
//! engine, the evidence locker, and the court.

use lexforensica::investigation::court::rule_on;
use lexforensica::investigation::storyline::{
    campus_admin_private_search_assessment, run_seized_server_storyline,
};
use lexforensica::investigation::workflow::Investigation;
use lexforensica::law::prelude::*;
use lexforensica::law::process::FactualStandard;
use lexforensica::p2psim::experiment::{run_experiment, ExperimentConfig};
use lexforensica::watermark::experiment::{run_trials, WatermarkExperimentConfig};

fn quick_watermark_config() -> WatermarkExperimentConfig {
    WatermarkExperimentConfig {
        suspects: 4,
        code_degree: 7,
        chip_ms: 300,
        ..WatermarkExperimentConfig::default()
    }
}

#[test]
fn e_iv_a_oneswarm_attack_is_accurate_and_lawful() {
    // Technique works...
    let cfg = ExperimentConfig {
        peers: 48,
        sources: 8,
        targets: 12,
        probes: 3,
        ..ExperimentConfig::default()
    };
    let result = run_experiment(&cfg);
    assert!(
        result.metrics.accuracy() >= 0.9,
        "accuracy {}",
        result.metrics.accuracy()
    );

    // ...and the legal posture is Table 1 row 10: no process needed.
    use lexforensica::law::scenarios::scenario;
    let engine = ComplianceEngine::new();
    assert_eq!(
        engine.assess(scenario(10).action()).verdict(),
        Verdict::NoProcessNeeded
    );
}

#[test]
fn e_iv_b_watermark_beats_passive_baseline() {
    let summary = run_trials(&quick_watermark_config(), 3);
    assert!(summary.watermark_accuracy >= 2.0 / 3.0);
    assert!(summary.watermark_accuracy > summary.baseline_accuracy);
}

#[test]
fn e_sup_lawful_and_rogue_variants_diverge_only_in_court() {
    let lawful = run_seized_server_storyline(&quick_watermark_config(), true);
    let rogue = run_seized_server_storyline(&quick_watermark_config(), false);
    // Same technical outcome...
    assert_eq!(lawful.suspect_identified, rogue.suspect_identified);
    assert!(lawful.suspect_identified);
    // ...different courtroom outcome.
    assert!(lawful.court.case_survives());
    assert!(!rogue.court.case_survives());
    assert_eq!(lawful.court.excluded_count(), 0);
    assert_eq!(rogue.court.admitted_count(), 0);
}

#[test]
fn situation_two_private_search_is_clear() {
    let assessment = campus_admin_private_search_assessment();
    assert_eq!(assessment.verdict(), Verdict::NoProcessNeeded);
    // The rationale should mention the private-search footing.
    let text = assessment.rationale().to_string();
    assert!(text.contains("private"), "rationale: {text}");
}

#[test]
fn full_workflow_subpoena_then_order_then_warrant() {
    // The escalation the paper recommends: start with what needs nothing,
    // build facts, escalate process step by step.
    let mut inv = Investigation::open("escalation ladder");

    // Step 1: public P2P collection (row 9) — nothing needed.
    let p2p = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::PublicForum,
        ),
    )
    .joining_public_protocol()
    .build();
    let p2p_item = inv
        .collect(
            &p2p,
            "P2P observations",
            b"peers sharing contraband".to_vec(),
            "agent",
        )
        .expect("no process needed");
    inv.add_fact(
        "P2P observation ties an IP to sharing",
        FactualStandard::MereSuspicion,
    );

    // Step 2: subpoena the ISP for subscriber identity.
    inv.apply_for(LegalProcess::Subpoena, "subscriber records for the IP")
        .expect("mere suspicion suffices");
    let compel = lexforensica::law::scenarios::compel_subscriber_info_from_public_isp();
    let sub_item = inv
        .collect_derived(
            &compel,
            "subscriber identity",
            b"john doe, 12 elm st".to_vec(),
            "agent",
            [p2p_item],
        )
        .expect("subpoena in hand");
    inv.add_fact(
        "ISP identified the subscriber at the relevant time",
        FactualStandard::ProbableCause,
    );

    // Step 3: warrant for the residence.
    inv.apply_for(LegalProcess::SearchWarrant, "the residence")
        .expect("probable cause on record");
    let device = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::SuspectDevice,
        ),
    )
    .build();
    inv.collect_derived(
        &device,
        "device image",
        b"sectors".to_vec(),
        "agent",
        [sub_item],
    )
    .expect("warrant in hand");

    let report = rule_on(&inv);
    assert_eq!(report.admitted_count(), 3);
    assert!(report.case_survives());
    assert_eq!(
        inv.grants().iter().map(|g| g.process).collect::<Vec<_>>(),
        vec![LegalProcess::Subpoena, LegalProcess::SearchWarrant]
    );
}

#[test]
fn custody_tampering_defeats_even_lawful_collection() {
    let mut inv = Investigation::open("tamper");
    let p2p = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::PublicForum,
        ),
    )
    .joining_public_protocol()
    .build();
    let item = inv
        .collect(&p2p, "observations", vec![1, 2, 3], "agent")
        .unwrap();
    assert!(rule_on(&inv).case_survives());
    // Someone edits the evidence afterwards.
    // (Reach into the locker the way a failure-injection test would.)
    // The public API exposes item_mut on the locker only via &mut
    // Investigation — model the tamper through the storyline's locker.
    // Here we verify at least that integrity holds before tampering:
    assert!(inv.locker().item(item).unwrap().verify_integrity());
}

#[test]
fn suppression_strikes_cascade_through_facts() {
    // When the evidence supporting a fact is suppressed, striking the
    // fact can invalidate later process — the engine pieces exist to
    // model the cascade.
    let mut inv = Investigation::open("cascade");
    let device = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::SuspectDevice,
        ),
    )
    .build();
    // Unlawful seizure produced the only incriminating fact.
    inv.collect_anyway(&device, "warrantless image", vec![1], "agent");
    let fact = inv.add_fact("contraband found on image", FactualStandard::ProbableCause);
    inv.apply_for(LegalProcess::SearchWarrant, "follow-up")
        .unwrap();

    // Court suppresses; the prosecution strikes the fact.
    assert!(!rule_on(&inv).case_survives());
    // Striking the fact drops the record below probable cause.
    let mut case = inv.case().clone();
    case.strike(fact);
    assert!(!case.supports_application_for(LegalProcess::SearchWarrant));
}
