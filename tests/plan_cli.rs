//! Golden tests for the `plan` subcommand: the checked-in fixture
//! problems must produce byte-exact plan renderings, including the
//! provenance-backed "no lawful path" negative case.

use std::process::Command;

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lexforensica"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// The curated demo problem — provider-held records on the SCA ladder,
/// a device search, and a free public-posts lead that bootstraps the
/// showing (the Table 1 scenario space) — must plan to the golden
/// rendering exactly: one search warrant dominating the weaker
/// instruments, every collect carrying its justification.
#[test]
fn plan_fixture_matches_golden_output() {
    let out = run(&["plan", &fixture("plan_demo.jsonl")]);
    assert!(out.status.success(), "{out:?}");
    let golden = std::fs::read_to_string(fixture("plan_demo.expected")).expect("golden exists");
    assert_eq!(String::from_utf8(out.stdout).unwrap(), golden);

    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("nodes/s"), "{stderr}");
    assert!(stderr.contains("hit rate"), "{stderr}");
}

/// The negative fixture: a wiretap goal whose showing is out of reach.
/// "No lawful path" is an answer, not an error — exit zero, with the
/// blocking rule named from the engine's provenance.
#[test]
fn plan_no_lawful_path_fixture_matches_golden_output() {
    let out = run(&["plan", &fixture("plan_unreachable.jsonl")]);
    assert!(out.status.success(), "{out:?}");
    let golden =
        std::fs::read_to_string(fixture("plan_unreachable.expected")).expect("golden exists");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout, golden);
    assert!(stdout.starts_with("no lawful path:"), "{stdout}");
    assert!(
        stdout.contains("blocking rule: statute.wiretap"),
        "{stdout}"
    );
}

/// The plan bytes are thread-count invariant — the planner's
/// determinism contract, observed end to end through the CLI.
#[test]
fn plan_output_is_thread_invariant() {
    let baseline = run(&["plan", &fixture("plan_demo.jsonl"), "--threads", "1"]);
    assert!(baseline.status.success());
    for threads in ["2", "8"] {
        let out = run(&["plan", &fixture("plan_demo.jsonl"), "--threads", threads]);
        assert!(out.status.success());
        assert_eq!(
            out.stdout, baseline.stdout,
            "plan changed at {threads} threads"
        );
    }
}

/// Malformed problems report every defect with its 1-based line number
/// — the same located-error shape `assess-batch` and `replay` use —
/// and exit nonzero without printing a plan.
#[test]
fn plan_malformed_problem_reports_line_numbers_and_fails() {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_lexforensica"))
        .args(["plan", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            b"{\"start\": {\"standard\": \"mere-suspicion\"}}\nnot json\n{\"gaol\": \"typo\"}\n",
        )
        .unwrap();
    let out = child.wait_with_output().expect("binary exits");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 2:"), "{stderr}");
    assert!(stderr.contains("line 3:"), "{stderr}");
    assert!(stderr.contains("problem defect(s)"), "{stderr}");
    assert!(out.stdout.is_empty(), "printed a plan for a bad problem");
}

/// A missing problem file is a clean failure, not a panic.
#[test]
fn plan_missing_file_fails_cleanly() {
    let out = run(&["plan", "/nonexistent/problem.jsonl"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cannot read"), "{stderr}");
}

/// `plan` with no input path is a usage error.
#[test]
fn plan_without_input_exits_2() {
    let out = run(&["plan"]);
    assert_eq!(out.status.code(), Some(2));
}
