//! Golden test for the `--explain` decision-provenance output.
//!
//! The provenance JSONL — and in particular the **order of rule
//! firings** inside each record — is a contract: downstream audit
//! tooling joins these records to span chains by trace id and replays
//! the engine's reasoning step by step. Any change to rule names,
//! firing order, or the record layout must be deliberate and must
//! update the pinned fixture.

use std::process::Command;

const FIXTURE: &str = "tests/fixtures/explain_demo.jsonl";
const GOLDEN: &str = "tests/fixtures/explain_demo.expected.jsonl";

/// Runs `assess-batch FIXTURE --explain <tmp>` plus any extra args and
/// returns the explain JSONL the run produced.
fn run_explain(tag: &str, extra: &[&str]) -> String {
    let out_path = std::env::temp_dir().join(format!(
        "lexforensica_explain_{}_{tag}.jsonl",
        std::process::id()
    ));
    let output = Command::new(env!("CARGO_BIN_EXE_lexforensica"))
        .arg("assess-batch")
        .arg(FIXTURE)
        .args(["--explain", out_path.to_str().expect("utf-8 temp path")])
        .args(extra)
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "assess-batch failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let records = std::fs::read_to_string(&out_path).expect("explain file written");
    let _ = std::fs::remove_file(&out_path);
    records
}

#[test]
fn explain_provenance_matches_the_pinned_golden_byte_for_byte() {
    let got = run_explain("golden", &["--threads", "1"]);
    let want = std::fs::read_to_string(GOLDEN).expect("golden fixture exists");
    assert_eq!(
        got, want,
        "--explain provenance drifted from the pinned golden; \
         rule-firing order is a contract — regenerate the fixture only \
         for a deliberate engine change"
    );
}

#[test]
fn explain_records_are_joinable_and_end_with_the_final_verdict() {
    let got = run_explain("shape", &["--threads", "1"]);
    let lines: Vec<&str> = got.lines().collect();
    assert_eq!(lines.len(), 6, "one record per fixture scenario");
    for (i, line) in lines.iter().enumerate() {
        let n = i + 1;
        // Trace ids are minted per row in line order from a fresh
        // process, so record n carries trace n — that is what makes the
        // file joinable against a span dump from the same run.
        assert!(
            line.starts_with(&format!("{{\"trace\":{n},\"line\":{n},")),
            "record {n} is not joinable by trace id: {line}"
        );
        let last_rule = line
            .rfind("{\"rule\":\"")
            .map(|at| &line[at..])
            .expect("record has at least one rule firing");
        assert!(
            last_rule.starts_with("{\"rule\":\"verdict.final\""),
            "record {n} does not end with the final verdict firing: {last_rule}"
        );
    }
}

#[test]
fn explain_output_is_independent_of_threads_and_seed() {
    let baseline = run_explain("base", &["--threads", "1"]);
    let threaded = run_explain("threads", &["--threads", "4"]);
    let shuffled = run_explain("seeded", &["--threads", "4", "--seed", "42"]);
    assert_eq!(
        baseline, threaded,
        "provenance records must not depend on the worker count"
    );
    assert_eq!(
        baseline, shuffled,
        "provenance records must not depend on the assessment order"
    );
}
