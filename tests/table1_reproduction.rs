//! Cross-crate integration test: the headline reproduction — every row
//! of the paper's Table 1, with process specificity and rationale
//! integrity checks on top of the binary verdicts.

use lexforensica::law::assessment::{Confidence, Verdict};
use lexforensica::law::casebook::lookup;
use lexforensica::law::engine::ComplianceEngine;
use lexforensica::law::process::LegalProcess;
use lexforensica::law::scenarios::{scenario, table1};

#[test]
fn all_twenty_verdicts_match_the_paper() {
    let engine = ComplianceEngine::new();
    for row in table1() {
        let out = engine.assess(row.action());
        assert_eq!(
            out.verdict().needs_process(),
            row.paper_verdict().needs_process,
            "row {}: {}\nrationale:\n{}",
            row.number(),
            row.summary(),
            out.rationale()
        );
    }
}

#[test]
fn confidence_markers_match_the_papers_stars() {
    let engine = ComplianceEngine::new();
    for row in table1() {
        let out = engine.assess(row.action());
        let expected = if row.paper_verdict().starred {
            Confidence::AuthorsJudgment
        } else {
            Confidence::Settled
        };
        assert_eq!(out.confidence(), expected, "row {}", row.number());
    }
}

#[test]
fn need_rows_specify_the_expected_instrument() {
    let engine = ComplianceEngine::new();
    let expectations: &[(usize, LegalProcess)] = &[
        (4, LegalProcess::WiretapOrder),   // wireless payload
        (6, LegalProcess::WiretapOrder),   // encrypted wireless payload
        (7, LegalProcess::CourtOrder),     // pen/trap at ISP
        (8, LegalProcess::WiretapOrder),   // full packets at ISP
        (12, LegalProcess::SearchWarrant), // hidden server content
        (13, LegalProcess::WiretapOrder),  // LEO-run Tor node
        (14, LegalProcess::WiretapOrder),  // Anonymizer monitoring
        (16, LegalProcess::SearchWarrant), // attacker's remote computer
        (18, LegalProcess::SearchWarrant), // drive-wide hashing
    ];
    for &(row, process) in expectations {
        let out = engine.assess(scenario(row).action());
        assert_eq!(
            out.verdict(),
            Verdict::ProcessRequired(process),
            "row {row}"
        );
    }
}

#[test]
fn every_assessment_carries_a_cited_rationale() {
    let engine = ComplianceEngine::new();
    for row in table1() {
        let out = engine.assess(row.action());
        assert!(
            !out.rationale().is_empty(),
            "row {} produced an empty rationale",
            row.number()
        );
        let cited = out.rationale().cited_authorities();
        assert!(!cited.is_empty(), "row {} cites no authority", row.number());
        // Every citation resolves in the casebook.
        for c in cited {
            let authority = lookup(c);
            assert!(!authority.cite.is_empty());
        }
    }
}

#[test]
fn need_rows_lawful_with_sufficient_process_only() {
    let engine = ComplianceEngine::new();
    for row in table1() {
        let out = engine.assess(row.action());
        match out.verdict() {
            Verdict::NoProcessNeeded => {
                assert!(
                    out.is_lawful_with(LegalProcess::None),
                    "row {}",
                    row.number()
                );
            }
            Verdict::ProcessRequired(p) => {
                assert!(out.is_lawful_with(p), "row {}", row.number());
                assert!(
                    out.is_lawful_with(LegalProcess::WiretapOrder),
                    "row {}: strongest process must always suffice",
                    row.number()
                );
                if p > LegalProcess::Subpoena {
                    assert!(
                        !out.is_lawful_with(LegalProcess::Subpoena),
                        "row {}: a bare subpoena must not satisfy {p}",
                        row.number()
                    );
                }
            }
            Verdict::UnlawfulForPrivateActor => {
                panic!("Table 1 rows are all government or provider scenes")
            }
        }
    }
}

#[test]
fn government_direction_flips_the_campus_rows() {
    // Rows 1-2 are lawful because campus IT acts privately on its own
    // network; the same capture at government direction loses both the
    // private-search posture and the provider exception.
    use lexforensica::law::prelude::*;
    let engine = ComplianceEngine::new();
    for row in [1usize, 2] {
        let base = scenario(row);
        let directed = InvestigativeAction::builder(
            Actor::system_administrator().directed_by_government(),
            base.action().data(),
        )
        .describe("the same capture, at government direction")
        .build();
        let out = engine.assess(&directed);
        assert!(
            out.verdict().needs_process(),
            "row {row} at government direction must need process"
        );
    }
}
