//! Soundness of the [`FactKey`] projection: equal keys must imply equal
//! assessments, and fact patterns the paper answers differently must
//! never share a key.

use forensic_law::engine::ComplianceEngine;
use forensic_law::factkey::FactKey;
use forensic_law::prelude::*;
use forensic_law::scenarios::table1;
use std::collections::HashMap;

/// Build a broad pool of actions: every Table 1 row plus single-axis
/// perturbations (consent, probation, plain view, revoked consent) of
/// each, with descriptions deliberately varied.
fn pool() -> Vec<InvestigativeAction> {
    let mut actions: Vec<InvestigativeAction> = Vec::new();
    for (i, scenario) in table1().iter().enumerate() {
        let action = scenario.action().clone();
        let actor = action.actor();
        let data = action.data();
        actions.push(action);

        let mut relabeled = InvestigativeAction::builder(actor, data);
        relabeled.describe(format!("relabeled copy #{i}"));
        actions.push(relabeled.build());

        let mut consented = InvestigativeAction::builder(actor, data);
        consented.with_consent(Consent::by(ConsentAuthority::TargetSelf));
        actions.push(consented.build());

        let mut revoked = InvestigativeAction::builder(actor, data);
        revoked.with_consent(Consent::by(ConsentAuthority::TargetSelf).revoked());
        actions.push(revoked.build());

        let mut probation = InvestigativeAction::builder(actor, data);
        probation.target_on_probation();
        actions.push(probation.build());

        let mut plain = InvestigativeAction::builder(actor, data);
        plain.plain_view();
        actions.push(plain.build());
    }
    actions
}

/// Whenever two actions project to the same key, the engine must hand
/// back indistinguishable assessments — verdict, confidence, authorities,
/// and the full rationale text.
#[test]
fn equal_keys_imply_identical_assessments() {
    let engine = ComplianceEngine::new();
    let mut by_key: HashMap<FactKey, (usize, forensic_law::assessment::LegalAssessment)> =
        HashMap::new();
    let mut collisions = 0usize;

    for (i, action) in pool().iter().enumerate() {
        let fresh = engine.assess(action);
        match by_key.get(&FactKey::of(action)) {
            None => {
                by_key.insert(FactKey::of(action), (i, fresh));
            }
            Some((j, prior)) => {
                collisions += 1;
                assert_eq!(
                    prior.verdict(),
                    fresh.verdict(),
                    "actions #{j} and #{i} share a key but differ in verdict"
                );
                assert_eq!(prior.confidence(), fresh.confidence());
                assert_eq!(prior.governing_authorities(), fresh.governing_authorities());
                assert_eq!(
                    prior.rationale(),
                    fresh.rationale(),
                    "actions #{j} and #{i} share a key but differ in rationale"
                );
            }
        }
    }

    // The pool intentionally contains same-facts/different-description
    // pairs, so the property must actually have been exercised.
    assert!(collisions > 0, "pool never exercised a key collision");
}

/// Table 1 rows whose paper verdicts differ must project to different
/// keys — otherwise the cache would blur distinctions the paper draws.
#[test]
fn rows_with_different_paper_verdicts_never_collide() {
    for a in table1().iter() {
        for b in table1().iter() {
            if a.paper_verdict() != b.paper_verdict() {
                assert_ne!(
                    FactKey::of(a.action()),
                    FactKey::of(b.action()),
                    "rows {} and {} disagree in Table 1 yet share a fact key",
                    a.number(),
                    b.number()
                );
            }
        }
    }
}

/// The key is a pure projection: recomputing it is stable, and it ignores
/// the free-text description entirely.
#[test]
fn key_is_stable_and_description_blind() {
    for scenario in table1() {
        let action = scenario.action();
        assert_eq!(FactKey::of(action), FactKey::of(action));

        let mut plain = InvestigativeAction::builder(action.actor(), action.data());
        plain.describe("one label");
        let mut renamed = InvestigativeAction::builder(action.actor(), action.data());
        renamed.describe("a completely different label");
        assert_eq!(FactKey::of(&plain.build()), FactKey::of(&renamed.build()));
    }
}
