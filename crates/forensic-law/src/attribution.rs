//! Person-and-intent attribution — the paper's §III-A-2 purposes.
//!
//! "To discover contraband or substantive evidence of a crime on the hard
//! drive is the most important goal of a computer search. But ... to
//! identify the person and the intent of the criminal is also important:
//! (i) ... prove the action of a particular individual to put contraband
//! on the hard drive rather than allowing for the possibility that
//! someone else with access to the computer did so; (ii) ... confirm that
//! a virus or other piece of malware was not responsible for the crime;
//! (iii) ... show that a defendant had knowledge of the particular
//! subject."
//!
//! This module scores an attribution record against those three prongs,
//! giving researchers a checklist for whether their technique identifies
//! a *person* or merely a *machine* — the gap the paper says makes
//! research "with less relevance in practice".

use std::fmt;

/// Evidence items bearing on the three attribution prongs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributionEvidence {
    /// Ties a specific individual (not just the machine) to the act:
    /// login records, keystroke biometrics, camera footage, exclusive
    /// physical access.
    IndividualAction {
        /// Whether other people also had access to the machine.
        others_had_access: bool,
    },
    /// Rules malware in or out as the actor.
    MalwareAnalysis {
        /// Whether the analysis excluded malware responsibility.
        malware_excluded: bool,
    },
    /// Shows the defendant's knowledge of the subject: browsing history,
    /// cookies, search terms (the paper's methamphetamine-laboratory
    /// example).
    KnowledgeIndicators {
        /// Whether the indicators tie the *defendant* (not just the
        /// machine) to the subject.
        tied_to_defendant: bool,
    },
}

/// How fully an attribution record covers the three prongs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttributionStrength {
    /// Only a machine is identified — the paper's warning case.
    MachineOnly,
    /// Some prongs covered; a defense retains arguments.
    Partial,
    /// All three prongs covered: individual action proven, malware
    /// excluded, knowledge shown.
    PersonAndIntent,
}

impl fmt::Display for AttributionStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttributionStrength::MachineOnly => "identifies a machine only",
            AttributionStrength::Partial => "partially identifies the person",
            AttributionStrength::PersonAndIntent => "identifies the person and the intent",
        };
        f.write_str(s)
    }
}

/// The scored attribution record.
#[derive(Debug, Clone, Default)]
pub struct AttributionRecord {
    individual_proved: bool,
    malware_excluded: bool,
    knowledge_shown: bool,
    weaknesses: Vec<String>,
}

impl AttributionRecord {
    /// Starts an empty record.
    pub fn new() -> Self {
        AttributionRecord::default()
    }

    /// Adds an evidence item, updating the prongs.
    pub fn add(&mut self, evidence: AttributionEvidence) {
        match evidence {
            AttributionEvidence::IndividualAction { others_had_access } => {
                if others_had_access {
                    self.weaknesses
                        .push("others with access to the computer could have acted".to_string());
                } else {
                    self.individual_proved = true;
                }
            }
            AttributionEvidence::MalwareAnalysis { malware_excluded } => {
                if malware_excluded {
                    self.malware_excluded = true;
                } else {
                    self.weaknesses
                        .push("malware responsibility not excluded".to_string());
                }
            }
            AttributionEvidence::KnowledgeIndicators { tied_to_defendant } => {
                if tied_to_defendant {
                    self.knowledge_shown = true;
                } else {
                    self.weaknesses
                        .push("knowledge indicators tie only to the machine".to_string());
                }
            }
        }
    }

    /// Whether individual action is proven.
    pub fn individual_proved(&self) -> bool {
        self.individual_proved
    }

    /// Whether malware has been excluded.
    pub fn malware_excluded(&self) -> bool {
        self.malware_excluded
    }

    /// Whether the defendant's knowledge is shown.
    pub fn knowledge_shown(&self) -> bool {
        self.knowledge_shown
    }

    /// Unresolved defense arguments.
    pub fn weaknesses(&self) -> &[String] {
        &self.weaknesses
    }

    /// The overall strength.
    pub fn strength(&self) -> AttributionStrength {
        let covered = [
            self.individual_proved,
            self.malware_excluded,
            self.knowledge_shown,
        ]
        .iter()
        .filter(|&&b| b)
        .count();
        match covered {
            3 => AttributionStrength::PersonAndIntent,
            0 => AttributionStrength::MachineOnly,
            _ => AttributionStrength::Partial,
        }
    }
}

impl fmt::Display for AttributionRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "attribution: {}", self.strength())?;
        writeln!(
            f,
            "  individual action proven: {} | malware excluded: {} | knowledge shown: {}",
            self.individual_proved, self.malware_excluded, self.knowledge_shown
        )?;
        for w in &self.weaknesses {
            writeln!(f, "  open defense argument: {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_record_is_machine_only() {
        let r = AttributionRecord::new();
        assert_eq!(r.strength(), AttributionStrength::MachineOnly);
    }

    #[test]
    fn full_record_identifies_person_and_intent() {
        let mut r = AttributionRecord::new();
        r.add(AttributionEvidence::IndividualAction {
            others_had_access: false,
        });
        r.add(AttributionEvidence::MalwareAnalysis {
            malware_excluded: true,
        });
        r.add(AttributionEvidence::KnowledgeIndicators {
            tied_to_defendant: true,
        });
        assert_eq!(r.strength(), AttributionStrength::PersonAndIntent);
        assert!(r.weaknesses().is_empty());
        assert!(r.individual_proved());
        assert!(r.malware_excluded());
        assert!(r.knowledge_shown());
    }

    #[test]
    fn shared_access_is_a_weakness() {
        let mut r = AttributionRecord::new();
        r.add(AttributionEvidence::IndividualAction {
            others_had_access: true,
        });
        assert_eq!(r.strength(), AttributionStrength::MachineOnly);
        assert_eq!(r.weaknesses().len(), 1);
        assert!(r.weaknesses()[0].contains("others with access"));
    }

    #[test]
    fn partial_coverage() {
        let mut r = AttributionRecord::new();
        r.add(AttributionEvidence::MalwareAnalysis {
            malware_excluded: true,
        });
        assert_eq!(r.strength(), AttributionStrength::Partial);
        r.add(AttributionEvidence::KnowledgeIndicators {
            tied_to_defendant: false,
        });
        assert_eq!(r.strength(), AttributionStrength::Partial);
        assert_eq!(r.weaknesses().len(), 1);
    }

    #[test]
    fn strength_ordering() {
        assert!(AttributionStrength::MachineOnly < AttributionStrength::Partial);
        assert!(AttributionStrength::Partial < AttributionStrength::PersonAndIntent);
    }

    #[test]
    fn display_lists_weaknesses() {
        let mut r = AttributionRecord::new();
        r.add(AttributionEvidence::MalwareAnalysis {
            malware_excluded: false,
        });
        let text = r.to_string();
        assert!(text.contains("machine only"));
        assert!(text.contains("malware responsibility not excluded"));
    }
}
