//! Establishing probable cause — the paper's §III-A-1 scenarios.
//!
//! "Probable cause in computer forensics to search a computer or
//! electronic media is a belief that the computer or media is
//! (i) contraband; (ii) a repository of data that is evidence of a crime;
//! (iii) an instrument of a crime." The module models the two common
//! establishment paths (IP address, online account) and the staleness
//! doctrine.

use crate::casebook::CitationId;
use crate::process::FactualStandard;
use crate::rationale::Rationale;
use std::fmt;

/// A path by which investigators build probable cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbableCauseBasis {
    /// §III-A-1-a: an attacker's IP address obtained from a victim or
    /// provider, then resolved to a subscriber by subpoena.
    IpAddressIdentification {
        /// Whether the ISP has identified the subscriber behind the
        /// address at the relevant time.
        subscriber_identified: bool,
        /// Whether the suspect ran an unsecured wireless network others
        /// could have used — which the cases hold does *not* defeat
        /// probable cause (*Perez*, *Latham*, *Hibble*).
        open_wifi: bool,
    },
    /// §III-A-1-b: information associated with an online account, e.g.
    /// membership in a child-pornography site or email group.
    OnlineAccountInformation {
        /// Whether the only evidence is bare membership (*Coreas*: not all
        /// courts accept membership alone).
        membership_only: bool,
        /// Whether a technique additionally evidences the suspect's
        /// *intent* — the paper's recommendation for researchers.
        intent_evidence: bool,
    },
}

/// The result of evaluating a probable-cause basis.
#[derive(Debug, Clone)]
pub struct ProbableCauseFinding {
    achieved: FactualStandard,
    rationale: Rationale,
}

impl ProbableCauseFinding {
    /// The factual standard the basis establishes.
    pub fn achieved_standard(&self) -> FactualStandard {
        self.achieved
    }

    /// Whether full probable cause was established.
    pub fn establishes_probable_cause(&self) -> bool {
        self.achieved >= FactualStandard::ProbableCause
    }

    /// The reasoning.
    pub fn rationale(&self) -> &Rationale {
        &self.rationale
    }
}

impl fmt::Display for ProbableCauseFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "establishes {}", self.achieved)
    }
}

/// Evaluates a probable-cause basis under the paper's case survey.
///
/// # Examples
///
/// ```
/// use forensic_law::probable_cause::{evaluate_basis, ProbableCauseBasis};
///
/// let finding = evaluate_basis(ProbableCauseBasis::IpAddressIdentification {
///     subscriber_identified: true,
///     open_wifi: true, // does not defeat probable cause
/// });
/// assert!(finding.establishes_probable_cause());
/// ```
pub fn evaluate_basis(basis: ProbableCauseBasis) -> ProbableCauseFinding {
    let mut r = Rationale::new();
    let achieved = match basis {
        ProbableCauseBasis::IpAddressIdentification {
            subscriber_identified,
            open_wifi,
        } => {
            if subscriber_identified {
                r.add(
                    "an IP address resolved to the subscriber at the relevant time typically suffices for a residential search warrant",
                    [
                        CitationId::UnitedStatesVPerez,
                        CitationId::UnitedStatesVGrant,
                        CitationId::UnitedStatesVCarter,
                    ],
                );
                if open_wifi {
                    r.add(
                        "an unsecured wireless connection allowing others to use the IP address does not defeat probable cause",
                        [
                            CitationId::UnitedStatesVLatham,
                            CitationId::UnitedStatesVHibble,
                        ],
                    );
                }
                FactualStandard::ProbableCause
            } else {
                r.add(
                    "an unresolved IP address is a suspicion sufficient only to subpoena the controlling ISP for subscriber identity",
                    [CitationId::Section2703],
                );
                FactualStandard::MereSuspicion
            }
        }
        ProbableCauseBasis::OnlineAccountInformation {
            membership_only,
            intent_evidence,
        } => {
            if intent_evidence {
                r.add(
                    "a technique identifying the suspect's intent along with membership establishes probable cause",
                    [CitationId::UnitedStatesVGourde, CitationId::UnitedStatesVTerry],
                );
                FactualStandard::ProbableCause
            } else if membership_only {
                r.add(
                    "not all courts agree that membership alone supports a warrant application",
                    [CitationId::UnitedStatesVCoreas],
                );
                FactualStandard::SpecificArticulableFacts
            } else {
                r.add(
                    "account information corroborated beyond bare membership supports probable cause",
                    [CitationId::UnitedStatesVTerry, CitationId::UnitedStatesVWilder],
                );
                FactualStandard::ProbableCause
            }
        }
    };
    ProbableCauseFinding {
        achieved,
        rationale: r,
    }
}

/// The kind of evidence whose age is challenged under the staleness
/// doctrine (§III-A-1-c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StalenessProfile {
    /// Collections of contraband (e.g. child-pornography libraries) that
    /// "the cases tell us ... is sufficient ... no matter how old"
    /// (*Irving*, *Paull*, *Riccardi*).
    ContrabandCollection,
    /// Commercial purchase records (*Watzman*: three months fine).
    PurchaseRecords,
    /// A single transient item, possibly deleted (*Zimmerman*: stale at
    /// ten months).
    SingleTransientItem,
}

/// Evaluates whether information of a given age still supports probable
/// cause.
///
/// Returns the finding and the rationale. Forensic recoverability of
/// deleted files extends freshness (*Cox*).
pub fn staleness_check(
    profile: StalenessProfile,
    age_days: u32,
    forensic_recovery_possible: bool,
) -> (bool, Rationale) {
    let mut r = Rationale::new();
    let fresh = match profile {
        StalenessProfile::ContrabandCollection => {
            r.add(
                "collectors retain contraband; even years-old information supports probable cause",
                [
                    CitationId::UnitedStatesVIrving,
                    CitationId::UnitedStatesVPaull,
                    CitationId::UnitedStatesVRiccardi,
                    CitationId::UnitedStatesVNewsom,
                ],
            );
            true
        }
        StalenessProfile::PurchaseRecords => {
            let ok = age_days <= 365 || forensic_recovery_possible;
            if ok {
                r.add(
                    "purchase records within roughly a year remain fresh",
                    [CitationId::UnitedStatesVWatzman],
                );
            } else {
                r.add(
                    "aged purchase records without more may be stale",
                    [CitationId::UnitedStatesVFrechette],
                );
            }
            ok
        }
        StalenessProfile::SingleTransientItem => {
            if forensic_recovery_possible {
                r.add(
                    "deleted files recoverable by forensic examination keep old information fresh",
                    [CitationId::UnitedStatesVCox],
                );
                true
            } else if age_days > 300 {
                r.add(
                    "months-old evidence of a single deleted item is stale",
                    [
                        CitationId::UnitedStatesVZimmerman,
                        CitationId::UnitedStatesVDoan,
                    ],
                );
                false
            } else {
                r.add(
                    "recent evidence of a single item remains fresh",
                    [CitationId::IllinoisVGates],
                );
                true
            }
        }
    };
    (fresh, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolved_ip_establishes_probable_cause() {
        let f = evaluate_basis(ProbableCauseBasis::IpAddressIdentification {
            subscriber_identified: true,
            open_wifi: false,
        });
        assert!(f.establishes_probable_cause());
        assert!(!f.rationale().is_empty());
    }

    #[test]
    fn open_wifi_does_not_defeat_probable_cause() {
        let f = evaluate_basis(ProbableCauseBasis::IpAddressIdentification {
            subscriber_identified: true,
            open_wifi: true,
        });
        assert!(f.establishes_probable_cause());
        assert!(f
            .rationale()
            .cited_authorities()
            .contains(&CitationId::UnitedStatesVLatham));
    }

    #[test]
    fn unresolved_ip_is_only_suspicion() {
        let f = evaluate_basis(ProbableCauseBasis::IpAddressIdentification {
            subscriber_identified: false,
            open_wifi: false,
        });
        assert!(!f.establishes_probable_cause());
        assert_eq!(f.achieved_standard(), FactualStandard::MereSuspicion);
        // Enough for a subpoena, though.
        assert!(f
            .achieved_standard()
            .suffices_for(crate::process::LegalProcess::Subpoena));
    }

    #[test]
    fn membership_alone_falls_short() {
        let f = evaluate_basis(ProbableCauseBasis::OnlineAccountInformation {
            membership_only: true,
            intent_evidence: false,
        });
        assert!(!f.establishes_probable_cause());
        assert!(f
            .rationale()
            .cited_authorities()
            .contains(&CitationId::UnitedStatesVCoreas));
    }

    #[test]
    fn membership_plus_intent_establishes_probable_cause() {
        let f = evaluate_basis(ProbableCauseBasis::OnlineAccountInformation {
            membership_only: true,
            intent_evidence: true,
        });
        assert!(f.establishes_probable_cause());
    }

    #[test]
    fn corroborated_account_info_establishes_probable_cause() {
        let f = evaluate_basis(ProbableCauseBasis::OnlineAccountInformation {
            membership_only: false,
            intent_evidence: false,
        });
        assert!(f.establishes_probable_cause());
    }

    #[test]
    fn contraband_collections_never_go_stale() {
        for age in [30, 400, 2000] {
            let (fresh, _) = staleness_check(StalenessProfile::ContrabandCollection, age, false);
            assert!(fresh, "age {age}");
        }
    }

    #[test]
    fn transient_item_goes_stale_without_recovery() {
        let (fresh, _) = staleness_check(StalenessProfile::SingleTransientItem, 400, false);
        assert!(!fresh);
        let (fresh2, r) = staleness_check(StalenessProfile::SingleTransientItem, 400, true);
        assert!(fresh2);
        assert!(r
            .cited_authorities()
            .contains(&CitationId::UnitedStatesVCox));
    }

    #[test]
    fn recent_transient_item_is_fresh() {
        let (fresh, _) = staleness_check(StalenessProfile::SingleTransientItem, 60, false);
        assert!(fresh);
    }

    #[test]
    fn purchase_records_age_out() {
        assert!(staleness_check(StalenessProfile::PurchaseRecords, 90, false).0);
        assert!(!staleness_check(StalenessProfile::PurchaseRecords, 800, false).0);
        assert!(staleness_check(StalenessProfile::PurchaseRecords, 800, true).0);
    }
}
