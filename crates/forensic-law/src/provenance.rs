//! Decision provenance: the ordered list of rule firings behind a verdict.
//!
//! The paper's framework only matters if an investigator can show *why*
//! a verdict came out the way it did — which authority (Fourth
//! Amendment / Wiretap Act / SCA / Pen-Trap) governed, which exception
//! applied, and which process tier was selected. A [`Provenance`] is
//! that audit trail: every rule the engine evaluated that changed (or
//! could have changed) the outcome appends a [`RuleFiring`], in
//! evaluation order. **The firing order is part of the contract** — it
//! mirrors the engine's layering (privacy calculus, then statutes, then
//! the constitutional layer and its exceptions, then the final fold)
//! and is pinned by a golden test.
//!
//! Firings are deliberately flat and `Copy` (static rule ids, static
//! effect strings, a typed authority and process tier) so a provenance
//! record clones as one `memcpy`-able vector and serializes to JSON
//! without escaping surprises.

use crate::casebook::CitationId;
use crate::process::LegalProcess;
use std::fmt;

/// One rule firing: a stable rule identifier, the authority it rests
/// on, what it did to the outcome, and the process tier it demanded or
/// waived (when the rule speaks to process at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleFiring {
    rule: &'static str,
    authority: Option<CitationId>,
    effect: &'static str,
    process: Option<LegalProcess>,
}

impl RuleFiring {
    /// The stable, dot-namespaced rule identifier (e.g.
    /// `"statute.wiretap"`, `"exception.consent"`, `"verdict.final"`).
    pub fn rule(&self) -> &'static str {
        self.rule
    }

    /// The primary authority the rule rests on, if one is on point.
    pub fn authority(&self) -> Option<CitationId> {
        self.authority
    }

    /// What the firing did to the outcome, in one static phrase.
    pub fn effect(&self) -> &'static str {
        self.effect
    }

    /// The process tier this firing demanded (or waived, as
    /// [`LegalProcess::None`]), when the rule speaks to process.
    pub fn process(&self) -> Option<LegalProcess> {
        self.process
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"rule\":\"");
        push_escaped(out, self.rule);
        out.push('"');
        if let Some(authority) = self.authority {
            out.push_str(",\"authority\":\"");
            push_escaped(out, &format!("{authority:?}"));
            out.push('"');
        }
        out.push_str(",\"effect\":\"");
        push_escaped(out, self.effect);
        out.push('"');
        if let Some(process) = self.process {
            out.push_str(",\"process\":\"");
            push_escaped(out, &process.to_string());
            out.push('"');
        }
        out.push('}');
    }
}

impl fmt::Display for RuleFiring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.rule, self.effect)?;
        if let Some(authority) = self.authority {
            write!(f, " [{authority:?}]")?;
        }
        if let Some(process) = self.process {
            write!(f, " -> {process}")?;
        }
        Ok(())
    }
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// The ordered rule firings that produced one verdict.
///
/// # Examples
///
/// ```
/// use forensic_law::prelude::*;
///
/// let engine = ComplianceEngine::new();
/// let action = InvestigativeAction::builder(
///     Actor::law_enforcement(),
///     DataSpec::new(
///         ContentClass::Content,
///         Temporality::stored_opened(),
///         DataLocation::SuspectDevice,
///     ),
/// )
/// .build();
/// let assessment = engine.assess(&action);
/// let provenance = assessment.provenance();
/// assert!(!provenance.is_empty());
/// // The last firing always states the final verdict.
/// assert_eq!(provenance.firings().last().unwrap().rule(), "verdict.final");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Provenance {
    firings: Vec<RuleFiring>,
}

impl Provenance {
    /// An empty record ready for firings.
    pub fn new() -> Provenance {
        Provenance::default()
    }

    /// Appends a firing. Engine-internal; order of calls is the order
    /// of the record.
    pub(crate) fn fire(
        &mut self,
        rule: &'static str,
        authority: Option<CitationId>,
        effect: &'static str,
        process: Option<LegalProcess>,
    ) {
        self.firings.push(RuleFiring {
            rule,
            authority,
            effect,
            process,
        });
    }

    /// The firings, in evaluation order.
    pub fn firings(&self) -> &[RuleFiring] {
        &self.firings
    }

    /// Number of firings recorded.
    pub fn len(&self) -> usize {
        self.firings.len()
    }

    /// Whether no rule fired (never true for an engine-produced record).
    pub fn is_empty(&self) -> bool {
        self.firings.is_empty()
    }

    /// The record as one JSON array, e.g.
    /// `[{"rule":"privacy.rep","authority":"KatzVUnitedStates",...}]`.
    /// Stable across runs for a given action: same firings, same order,
    /// same bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 * self.firings.len() + 2);
        out.push('[');
        for (i, firing) in self.firings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            firing.write_json(&mut out);
        }
        out.push(']');
        out
    }
}

/// `Display` walks the firings one per line, numbered — the terminal
/// rendering of the audit chain.
impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, firing) in self.firings.iter().enumerate() {
            writeln!(f, "  {}. {firing}", i + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Provenance {
        let mut p = Provenance::new();
        p.fire(
            "privacy.rep",
            Some(CitationId::KatzVUnitedStates),
            "reasonable expectation of privacy found",
            None,
        );
        p.fire(
            "verdict.final",
            None,
            "most demanding requirement selected",
            Some(LegalProcess::SearchWarrant),
        );
        p
    }

    #[test]
    fn firings_keep_order_and_fields() {
        let p = sample();
        assert_eq!(p.len(), 2);
        assert_eq!(p.firings()[0].rule(), "privacy.rep");
        assert_eq!(
            p.firings()[0].authority(),
            Some(CitationId::KatzVUnitedStates)
        );
        assert_eq!(p.firings()[1].process(), Some(LegalProcess::SearchWarrant));
    }

    #[test]
    fn json_is_stable_and_well_formed() {
        let p = sample();
        let json = p.to_json();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"rule\":\"privacy.rep\""));
        assert!(json.contains("\"authority\":\"KatzVUnitedStates\""));
        assert!(json.contains("\"process\":\"search warrant\""));
        assert_eq!(json, p.to_json(), "serialization must be deterministic");
    }

    #[test]
    fn empty_record_serializes_to_empty_array() {
        assert_eq!(Provenance::new().to_json(), "[]");
        assert!(Provenance::new().is_empty());
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        let mut out = String::new();
        push_escaped(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn display_numbers_the_chain() {
        let text = sample().to_string();
        assert!(text.contains("1. privacy.rep"));
        assert!(text.contains("2. verdict.final"));
        assert!(text.contains("-> search warrant"));
    }
}
