//! A machine-readable description of an investigative action — the input
//! to the compliance engine.
//!
//! An [`InvestigativeAction`] captures the facts the paper's framework
//! turns on: who acts ([`Actor`]), what data is collected
//! ([`DataSpec`]), by what method ([`Method`]), with what consent,
//! exigency, or other exception in play ([`Circumstances`]).

use crate::actor::Actor;
use crate::data::DataSpec;
use crate::exceptions::{Consent, EmergencyPenTrap, Exigency};
use crate::provider::{CompelledInfo, MessageLifecycle};
use std::fmt;

/// How the information is technically acquired. Each flag corresponds to a
/// doctrine the engine must consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Method {
    /// The investigator participates in a protocol whose normal operation
    /// exposes the information to any participant (P2P queries, public
    /// chat rooms, public websites) — §IV-A: "it is legal for everybody to
    /// observe the traffic under normal operations of the protocol".
    pub joins_public_protocol: bool,
    /// Specialized technology *not in general public use* is employed
    /// (the first Kyllo factor, §III-B-a).
    pub specialized_tech_not_public: bool,
    /// The technology discloses information about the interior of a home
    /// (the second Kyllo factor).
    pub reveals_home_interior: bool,
    /// An exhaustive forensic examination (e.g. hashing every file on a
    /// drive) looking for specific material — *United States v. Crist*
    /// (Table 1 row 18).
    pub exhaustive_forensic_search: bool,
    /// Analysis confined to a dataset already lawfully in government
    /// custody — *State v. Sloane* (Table 1 row 19).
    pub derives_from_lawfully_held_dataset: bool,
    /// Uses an arrestee's own credentials to reach remote data
    /// (Table 1 row 20).
    pub uses_credentials_of_arrestee: bool,
    /// Observes only traffic *rates/volumes*, never packet contents — the
    /// §IV-B DSSS-watermark posture ("they do not need to collect the
    /// entire packet, so they do not need a wiretap warrant").
    pub rate_observation_only: bool,
    /// The investigator operates network infrastructure (e.g. runs a Tor
    /// node) and collects other users' traffic transiting it
    /// (Table 1 row 13).
    pub operates_intercepting_infrastructure: bool,
}

/// Circumstances bearing on exceptions and context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Circumstances {
    /// A binding policy (employer/campus terms) eliminates users'
    /// expectation of privacy on this network (Table 1 row 2).
    pub policy_eliminates_privacy: bool,
    /// A victim of an ongoing intrusion authorized monitoring of the
    /// trespasser on the victim's own system (§ 2511(2)(i); Table 1 row 15).
    pub victim_authorized_trespasser_monitoring: bool,
    /// The target is on probation, parole, or supervised release
    /// (§III-B-f).
    pub target_on_probation: bool,
    /// The evidence appeared in plain view during lawful presence
    /// (§III-B-e).
    pub plain_view_during_lawful_presence: bool,
    /// A private party already conducted this search and reported it; the
    /// government merely repeats it within the private search's scope
    /// (§III-B-i).
    pub repeats_prior_private_search: bool,
    /// The surveillance target entity functions as a communications
    /// service provider for third parties ("the hidden web server is as an
    /// ISP", Table 1 rows 12 and 14).
    pub target_operates_as_provider: bool,
}

/// A request to *compel* a provider to disclose information under § 2703.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProviderCompulsion {
    /// The provider's SCA posture with respect to the data.
    pub lifecycle: MessageLifecycle,
    /// Which category of information is demanded.
    pub info: CompelledInfo,
}

/// A full description of an investigative action.
///
/// Construct with [`InvestigativeAction::builder`].
///
/// # Examples
///
/// ```
/// use forensic_law::action::InvestigativeAction;
/// use forensic_law::actor::Actor;
/// use forensic_law::data::{ContentClass, DataLocation, DataSpec, Temporality, TransmissionMedium};
///
/// let action = InvestigativeAction::builder(
///     Actor::law_enforcement(),
///     DataSpec::new(
///         ContentClass::Content,
///         Temporality::RealTime,
///         DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
///     ),
/// )
/// .describe("full packet capture at an ISP")
/// .build();
/// assert!(action.data().is_interception_of_content());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvestigativeAction {
    actor: Actor,
    data: DataSpec,
    description: String,
    method: Method,
    circumstances: Circumstances,
    consent: Option<Consent>,
    exigency: Option<Exigency>,
    emergency_pen_trap: Option<EmergencyPenTrap>,
    compulsion: Option<ProviderCompulsion>,
}

impl InvestigativeAction {
    /// Starts building an action performed by `actor` targeting `data`.
    pub fn builder(actor: Actor, data: DataSpec) -> InvestigativeActionBuilder {
        InvestigativeActionBuilder {
            action: InvestigativeAction {
                actor,
                data,
                description: String::new(),
                method: Method::default(),
                circumstances: Circumstances::default(),
                consent: None,
                exigency: None,
                emergency_pen_trap: None,
                compulsion: None,
            },
        }
    }

    /// Who performs the action.
    pub fn actor(&self) -> Actor {
        self.actor
    }

    /// What data is targeted.
    pub fn data(&self) -> DataSpec {
        self.data
    }

    /// Human-readable description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The acquisition method flags.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The contextual circumstances.
    pub fn circumstances(&self) -> Circumstances {
        self.circumstances
    }

    /// Consent in play, if any.
    pub fn consent(&self) -> Option<Consent> {
        self.consent
    }

    /// Exigency claimed, if any.
    pub fn exigency(&self) -> Option<Exigency> {
        self.exigency
    }

    /// Emergency pen/trap authorization claimed, if any.
    pub fn emergency_pen_trap(&self) -> Option<EmergencyPenTrap> {
        self.emergency_pen_trap
    }

    /// Provider compulsion demanded, if any.
    pub fn compulsion(&self) -> Option<ProviderCompulsion> {
        self.compulsion
    }
}

impl fmt::Display for InvestigativeAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.description.is_empty() {
            write!(f, "{} collects {}", self.actor, self.data)
        } else {
            f.write_str(&self.description)
        }
    }
}

/// Builder for [`InvestigativeAction`] (non-consuming, per C-BUILDER).
#[derive(Debug, Clone)]
pub struct InvestigativeActionBuilder {
    action: InvestigativeAction,
}

impl InvestigativeActionBuilder {
    /// Sets the human-readable description.
    pub fn describe(&mut self, text: impl Into<String>) -> &mut Self {
        self.action.description = text.into();
        self
    }

    /// The investigator participates in a public protocol (P2P, chat,
    /// web).
    pub fn joining_public_protocol(&mut self) -> &mut Self {
        self.action.method.joins_public_protocol = true;
        self
    }

    /// Specialized technology not in general public use is used; `reveals
    /// home interior` triggers the full Kyllo rule.
    pub fn with_specialized_tech(&mut self, reveals_home_interior: bool) -> &mut Self {
        self.action.method.specialized_tech_not_public = true;
        self.action.method.reveals_home_interior = reveals_home_interior;
        self
    }

    /// Exhaustive forensic search of media (e.g. drive-wide hashing).
    pub fn exhaustive_forensic_search(&mut self) -> &mut Self {
        self.action.method.exhaustive_forensic_search = true;
        self
    }

    /// Mining a dataset already lawfully held.
    pub fn mining_lawfully_held_dataset(&mut self) -> &mut Self {
        self.action.method.derives_from_lawfully_held_dataset = true;
        self
    }

    /// Uses an arrestee's credentials to access remote data.
    pub fn using_arrestee_credentials(&mut self) -> &mut Self {
        self.action.method.uses_credentials_of_arrestee = true;
        self
    }

    /// Observes only traffic rates/volumes (never contents).
    pub fn rate_observation_only(&mut self) -> &mut Self {
        self.action.method.rate_observation_only = true;
        self
    }

    /// The investigator operates infrastructure that intercepts third
    /// parties' traffic (e.g. runs a Tor relay).
    pub fn operating_intercepting_infrastructure(&mut self) -> &mut Self {
        self.action.method.operates_intercepting_infrastructure = true;
        self
    }

    /// A binding policy eliminates the privacy expectation on the network.
    pub fn policy_eliminates_privacy(&mut self) -> &mut Self {
        self.action.circumstances.policy_eliminates_privacy = true;
        self
    }

    /// The intrusion victim authorized trespasser monitoring
    /// (§ 2511(2)(i)).
    pub fn victim_authorized_trespasser_monitoring(&mut self) -> &mut Self {
        self.action
            .circumstances
            .victim_authorized_trespasser_monitoring = true;
        self
    }

    /// The target is on probation/parole/supervised release.
    pub fn target_on_probation(&mut self) -> &mut Self {
        self.action.circumstances.target_on_probation = true;
        self
    }

    /// Evidence in plain view during lawful presence.
    pub fn plain_view(&mut self) -> &mut Self {
        self.action.circumstances.plain_view_during_lawful_presence = true;
        self
    }

    /// The government repeats a search a private party already performed.
    pub fn repeating_private_search(&mut self) -> &mut Self {
        self.action.circumstances.repeats_prior_private_search = true;
        self
    }

    /// The surveilled target functions as a service provider ("as an
    /// ISP").
    pub fn target_operates_as_provider(&mut self) -> &mut Self {
        self.action.circumstances.target_operates_as_provider = true;
        self
    }

    /// Adds a consent grant.
    pub fn with_consent(&mut self, consent: Consent) -> &mut Self {
        self.action.consent = Some(consent);
        self
    }

    /// Adds an exigency claim.
    pub fn with_exigency(&mut self, exigency: Exigency) -> &mut Self {
        self.action.exigency = Some(exigency);
        self
    }

    /// Adds an emergency pen/trap authorization.
    pub fn with_emergency_pen_trap(&mut self, auth: EmergencyPenTrap) -> &mut Self {
        self.action.emergency_pen_trap = Some(auth);
        self
    }

    /// Adds a § 2703 provider compulsion demand.
    pub fn compelling_provider(&mut self, compulsion: ProviderCompulsion) -> &mut Self {
        self.action.compulsion = Some(compulsion);
        self
    }

    /// Finishes the build.
    pub fn build(&self) -> InvestigativeAction {
        self.action.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{ContentClass, DataLocation, Temporality, TransmissionMedium};
    use crate::exceptions::ConsentAuthority;

    fn spec() -> DataSpec {
        DataSpec::new(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
        )
    }

    #[test]
    fn builder_defaults_are_clean() {
        let a = InvestigativeAction::builder(Actor::law_enforcement(), spec()).build();
        assert_eq!(a.method(), Method::default());
        assert_eq!(a.circumstances(), Circumstances::default());
        assert!(a.consent().is_none());
        assert!(a.exigency().is_none());
        assert!(a.compulsion().is_none());
    }

    #[test]
    fn builder_sets_flags() {
        let a = InvestigativeAction::builder(Actor::law_enforcement(), spec())
            .describe("test action")
            .joining_public_protocol()
            .with_specialized_tech(true)
            .rate_observation_only()
            .target_on_probation()
            .build();
        assert!(a.method().joins_public_protocol);
        assert!(a.method().specialized_tech_not_public);
        assert!(a.method().reveals_home_interior);
        assert!(a.method().rate_observation_only);
        assert!(a.circumstances().target_on_probation);
        assert_eq!(a.description(), "test action");
    }

    #[test]
    fn builder_supports_one_liner_and_staged_use() {
        // One-liner.
        let one = InvestigativeAction::builder(Actor::law_enforcement(), spec())
            .plain_view()
            .build();
        assert!(one.circumstances().plain_view_during_lawful_presence);

        // Staged.
        let mut b = InvestigativeAction::builder(Actor::law_enforcement(), spec());
        b.describe("staged");
        if true {
            b.exhaustive_forensic_search();
        }
        let staged = b.build();
        assert!(staged.method().exhaustive_forensic_search);
    }

    #[test]
    fn consent_and_exigency_attach() {
        let a = InvestigativeAction::builder(Actor::law_enforcement(), spec())
            .with_consent(Consent::by(ConsentAuthority::TargetSelf))
            .with_exigency(Exigency::HotPursuit)
            .build();
        assert!(a.consent().unwrap().is_effective());
        assert_eq!(a.exigency(), Some(Exigency::HotPursuit));
    }

    #[test]
    fn display_uses_description_when_present() {
        let a = InvestigativeAction::builder(Actor::law_enforcement(), spec())
            .describe("wiretap at ISP")
            .build();
        assert_eq!(a.to_string(), "wiretap at ISP");
        let b = InvestigativeAction::builder(Actor::law_enforcement(), spec()).build();
        assert!(b.to_string().contains("law enforcement"));
    }
}
