//! The compliance engine: folds the privacy doctrine, the three statutes,
//! and the warrant exceptions into a single verdict — the executable form
//! of the paper's §III decision framework.

use crate::action::InvestigativeAction;
use crate::assessment::{LegalAssessment, Verdict};
use crate::casebook::CitationId;
use crate::data::{DataLocation, TransmissionMedium};
use crate::exceptions::ConsentAuthority;
use crate::privacy::assess_privacy;
use crate::process::LegalProcess;
use crate::provenance::Provenance;
use crate::rationale::Rationale;
use crate::statutes::{pen_trap, sca, wiretap, StatuteRuling};

/// Assesses investigative actions against the paper's legal framework.
///
/// The engine is stateless and cheap to construct; one instance can
/// assess any number of actions.
///
/// # Examples
///
/// Reproducing Table 1 row 8 (full packet capture on the public wired
/// Internet — "Need"):
///
/// ```
/// use forensic_law::prelude::*;
///
/// let engine = ComplianceEngine::new();
/// let action = InvestigativeAction::builder(
///     Actor::law_enforcement(),
///     DataSpec::new(
///         ContentClass::Content,
///         Temporality::RealTime,
///         DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
///     ),
/// )
/// .describe("log entire packets at an ISP")
/// .build();
///
/// let assessment = engine.assess(&action);
/// assert_eq!(
///     assessment.verdict(),
///     Verdict::ProcessRequired(LegalProcess::WiretapOrder),
/// );
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComplianceEngine {
    _private: (),
}

impl ComplianceEngine {
    /// Creates a new engine.
    pub fn new() -> Self {
        ComplianceEngine::default()
    }

    /// Runs the full assessment pipeline on an action.
    ///
    /// Besides the verdict and rationale, the returned assessment
    /// carries a [`Provenance`] record: every rule that fired, in
    /// evaluation order (privacy calculus, statutes, constitutional
    /// layer and its exceptions, final fold). The firing order is a
    /// stable contract pinned by the `--explain` golden test.
    pub fn assess(&self, action: &InvestigativeAction) -> LegalAssessment {
        let privacy = assess_privacy(action);
        let mut rationale = Rationale::new();
        rationale.extend_from(privacy.rationale());
        let mut governing: Vec<CitationId> = Vec::new();
        let mut provenance = Provenance::new();
        let confidence = privacy.confidence();

        provenance.fire(
            "privacy.rep",
            Some(CitationId::KatzVUnitedStates),
            if privacy.has_reasonable_expectation() {
                "reasonable expectation of privacy found"
            } else {
                "no reasonable expectation of privacy"
            },
            None,
        );

        // Statutory layer — Title III, Pen/Trap, SCA restrain government
        // and private actors alike.
        let rulings: Vec<StatuteRuling> = [
            wiretap::evaluate(action),
            pen_trap::evaluate(action),
            sca::evaluate(action),
        ]
        .into_iter()
        .flatten()
        .collect();

        let mut statutory_required = LegalProcess::None;
        for ruling in &rulings {
            governing.push(ruling.statute());
            rationale.extend_from(ruling.rationale());
            statutory_required = statutory_required.max(ruling.required_process());
            provenance.fire(
                match ruling.statute() {
                    CitationId::WiretapAct => "statute.wiretap",
                    CitationId::PenTrapStatute => "statute.pen_trap",
                    CitationId::StoredCommunicationsAct => "statute.sca",
                    _ => "statute.other",
                },
                Some(ruling.statute()),
                "statute governs the acquisition",
                Some(ruling.required_process()),
            );
        }

        if action.circumstances().target_operates_as_provider {
            rationale.add(
                "the surveillance target functions as a communications service provider; its users' data enjoys statutory protection",
                [CitationId::StoredCommunicationsAct],
            );
            provenance.fire(
                "statute.provider_target",
                Some(CitationId::StoredCommunicationsAct),
                "target operates as a service provider; its users' data is statutorily protected",
                None,
            );
        }

        // Private actors: the Fourth Amendment does not restrain them, but
        // the statutes do — and a private actor has no path to compulsory
        // process.
        if !action.actor().is_government_actor() {
            rationale.add(
                "the actor is private and not a government agent; the Fourth Amendment does not apply to this search",
                [CitationId::DojSearchSeizureManual],
            );
            provenance.fire(
                "actor.private",
                Some(CitationId::DojSearchSeizureManual),
                "actor is private; the Fourth Amendment does not restrain the search",
                None,
            );
            let verdict = if statutory_required == LegalProcess::None {
                rationale.add(
                    "no statute forbids the action; it is a lawful private search whose fruits may be reported to law enforcement",
                    [CitationId::WallsInvestigatorCentric],
                );
                provenance.fire(
                    "verdict.final",
                    None,
                    "lawful private search; no process needed",
                    Some(LegalProcess::None),
                );
                Verdict::NoProcessNeeded
            } else {
                rationale.add(
                    "a statute forbids the action and compulsory process is a government instrument; the private actor may not proceed",
                    [CitationId::WiretapAct],
                );
                provenance.fire(
                    "verdict.final",
                    Some(CitationId::WiretapAct),
                    "a statute forbids the action and a private actor cannot obtain compulsory process",
                    None,
                );
                Verdict::UnlawfulForPrivateActor
            };
            return LegalAssessment::new(
                verdict, confidence, privacy, governing, rationale, provenance,
            );
        }

        // Constitutional layer: a government invasion of a reasonable
        // expectation of privacy is a search requiring a warrant unless an
        // exception applies (§III-B).
        let mut constitutional_required = LegalProcess::None;
        if privacy.has_reasonable_expectation() {
            governing.push(CitationId::FourthAmendment);
            provenance.fire(
                "fourth_amendment.applies",
                Some(CitationId::FourthAmendment),
                "government invasion of a reasonable expectation of privacy is a search",
                None,
            );
            constitutional_required =
                self.fourth_amendment_requirement(action, &mut rationale, &mut provenance);
        }

        let required = statutory_required.max(constitutional_required);
        let verdict = if required == LegalProcess::None {
            Verdict::NoProcessNeeded
        } else {
            Verdict::ProcessRequired(required)
        };
        provenance.fire(
            "verdict.final",
            None,
            "most demanding requirement across the statutory and constitutional layers selected",
            Some(required),
        );
        LegalAssessment::new(
            verdict, confidence, privacy, governing, rationale, provenance,
        )
    }

    /// Applies the §III-B warrant exceptions; returns the process the
    /// Fourth Amendment still requires after exceptions.
    fn fourth_amendment_requirement(
        &self,
        action: &InvestigativeAction,
        rationale: &mut Rationale,
        provenance: &mut Provenance,
    ) -> LegalProcess {
        let circ = action.circumstances();

        // Consent (§III-B-c) — any effective grant by someone with
        // authority over the searched space.
        if let Some(consent) = action.consent() {
            rationale.push(consent.rationale());
            // One-party consent is consent *to interception*: it waives
            // the Fourth Amendment for communications the consenter is a
            // party to, but says nothing about searching someone's
            // stored effects.
            let party_consent_applies = match consent.authority() {
                ConsentAuthority::OnePartyToCommunication { .. } => {
                    action.data().location.is_in_transit()
                }
                _ => true,
            };
            if consent.is_effective() && party_consent_applies {
                provenance.fire(
                    "exception.consent",
                    None,
                    "effective consent waives the warrant requirement",
                    Some(LegalProcess::None),
                );
                return LegalProcess::None;
            }
            provenance.fire(
                "exception.consent",
                None,
                "consent present but ineffective or inapplicable to this search",
                None,
            );
        }

        // Victim-authorized trespasser monitoring doubles as the owner's
        // consent to a search of the owner's own system (Table 1 row 15).
        if circ.victim_authorized_trespasser_monitoring
            && action.data().location == DataLocation::InTransit(TransmissionMedium::OwnNetwork)
        {
            rationale.add(
                "the victim, with authority over the monitored system, consented to the search of that system",
                [
                    CitationId::Section2511TrespasserException,
                    CitationId::UnitedStatesVGorshkov,
                ],
            );
            provenance.fire(
                "exception.trespasser_monitoring",
                Some(CitationId::UnitedStatesVGorshkov),
                "victim-authorized trespasser monitoring doubles as owner consent",
                Some(LegalProcess::None),
            );
            return LegalProcess::None;
        }

        // Exigent circumstances (§III-B-b).
        if let Some(exigency) = action.exigency() {
            rationale.push(exigency.rationale());
            provenance.fire(
                "exception.exigency",
                None,
                "exigent circumstances excuse the warrant",
                Some(LegalProcess::None),
            );
            return LegalProcess::None;
        }

        // Plain view (§III-B-e).
        if circ.plain_view_during_lawful_presence {
            rationale.add(
                "the evidence was in plain view from a lawful vantage point and its incriminating character was immediately apparent",
                [CitationId::DojSearchSeizureManual],
            );
            provenance.fire(
                "exception.plain_view",
                Some(CitationId::DojSearchSeizureManual),
                "evidence in plain view from a lawful vantage point",
                Some(LegalProcess::None),
            );
            return LegalProcess::None;
        }

        // Probation and parole (§III-B-f).
        if circ.target_on_probation {
            rationale.add(
                "the target is on probation or parole and subject to warrantless search on reasonable suspicion",
                [CitationId::UnitedStatesVKnights],
            );
            provenance.fire(
                "exception.probation",
                Some(CitationId::UnitedStatesVKnights),
                "target on probation or parole; warrantless search on reasonable suspicion",
                Some(LegalProcess::None),
            );
            return LegalProcess::None;
        }

        // Repeating a private search (§III-B-i): within the scope of what
        // the private party already exposed, no fresh search occurs.
        if circ.repeats_prior_private_search {
            rationale.add(
                "the government merely repeated a private search within its original scope; no new invasion occurred",
                [CitationId::UnitedStatesVRunyan],
            );
            provenance.fire(
                "exception.private_search_repeat",
                Some(CitationId::UnitedStatesVRunyan),
                "government repeated a private search within its original scope",
                Some(LegalProcess::None),
            );
            return LegalProcess::None;
        }

        rationale.add(
            "a government invasion of a reasonable expectation of privacy requires a search warrant supported by probable cause",
            [CitationId::FourthAmendment, CitationId::KatzVUnitedStates],
        );
        provenance.fire(
            "fourth_amendment.warrant",
            Some(CitationId::FourthAmendment),
            "no exception applies; a search warrant on probable cause is required",
            Some(LegalProcess::SearchWarrant),
        );
        LegalProcess::SearchWarrant
    }
}

/// Convenience free function: assess with a fresh engine.
///
/// # Examples
///
/// ```
/// use forensic_law::prelude::*;
/// use forensic_law::engine::assess;
///
/// let action = InvestigativeAction::builder(
///     Actor::law_enforcement(),
///     DataSpec::new(
///         ContentClass::Content,
///         Temporality::stored_opened(),
///         DataLocation::PublicForum,
///     ),
/// )
/// .joining_public_protocol()
/// .build();
/// assert_eq!(assess(&action).verdict(), Verdict::NoProcessNeeded);
/// ```
pub fn assess(action: &InvestigativeAction) -> LegalAssessment {
    ComplianceEngine::new().assess(action)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Actor;
    use crate::data::{ContentClass, DataSpec, Temporality};
    use crate::exceptions::{Consent, Exigency};

    fn engine() -> ComplianceEngine {
        ComplianceEngine::new()
    }

    fn device_search() -> InvestigativeAction {
        InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::SuspectDevice,
            ),
        )
        .build()
    }

    #[test]
    fn device_search_needs_warrant() {
        let a = device_search();
        let out = engine().assess(&a);
        assert_eq!(
            out.verdict(),
            Verdict::ProcessRequired(LegalProcess::SearchWarrant)
        );
        assert!(out
            .governing_authorities()
            .contains(&CitationId::FourthAmendment));
    }

    #[test]
    fn consent_waives_device_search() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::SuspectDevice,
            ),
        )
        .with_consent(Consent::by(ConsentAuthority::TargetSelf))
        .build();
        assert_eq!(engine().assess(&a).verdict(), Verdict::NoProcessNeeded);
    }

    #[test]
    fn revoked_consent_does_not_waive() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::SuspectDevice,
            ),
        )
        .with_consent(Consent::by(ConsentAuthority::TargetSelf).revoked())
        .build();
        assert_eq!(
            engine().assess(&a).verdict(),
            Verdict::ProcessRequired(LegalProcess::SearchWarrant)
        );
    }

    #[test]
    fn exigency_waives_warrant() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::SuspectDevice,
            ),
        )
        .with_exigency(Exigency::ImminentEvidenceDestruction)
        .build();
        assert_eq!(engine().assess(&a).verdict(), Verdict::NoProcessNeeded);
    }

    #[test]
    fn probation_waives_warrant() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::SuspectDevice,
            ),
        )
        .target_on_probation()
        .build();
        assert_eq!(engine().assess(&a).verdict(), Verdict::NoProcessNeeded);
    }

    #[test]
    fn plain_view_waives_warrant() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::SuspectDevice,
            ),
        )
        .plain_view()
        .build();
        assert_eq!(engine().assess(&a).verdict(), Verdict::NoProcessNeeded);
    }

    #[test]
    fn repeated_private_search_waives_warrant() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::SuspectDevice,
            ),
        )
        .repeating_private_search()
        .build();
        assert_eq!(engine().assess(&a).verdict(), Verdict::NoProcessNeeded);
    }

    #[test]
    fn private_wiretap_is_unlawful() {
        let a = InvestigativeAction::builder(
            Actor::private_individual(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::RealTime,
                DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
            ),
        )
        .build();
        assert_eq!(
            engine().assess(&a).verdict(),
            Verdict::UnlawfulForPrivateActor
        );
    }

    #[test]
    fn sysadmin_own_network_is_lawful_private_search() {
        let a = InvestigativeAction::builder(
            Actor::system_administrator(),
            DataSpec::new(
                ContentClass::NonContentAddressing,
                Temporality::RealTime,
                DataLocation::InTransit(TransmissionMedium::OwnNetwork),
            ),
        )
        .build();
        assert_eq!(engine().assess(&a).verdict(), Verdict::NoProcessNeeded);
    }

    #[test]
    fn exigency_does_not_waive_wiretap_statute() {
        // Exigent circumstances is a Fourth Amendment doctrine; Title III
        // still demands its order.
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::RealTime,
                DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
            ),
        )
        .with_exigency(Exigency::DangerToSafety)
        .build();
        assert_eq!(
            engine().assess(&a).verdict(),
            Verdict::ProcessRequired(LegalProcess::WiretapOrder)
        );
    }

    #[test]
    fn lawful_with_tracks_process_ladder() {
        let out = engine().assess(&device_search());
        assert!(!out.is_lawful_with(LegalProcess::None));
        assert!(!out.is_lawful_with(LegalProcess::CourtOrder));
        assert!(out.is_lawful_with(LegalProcess::SearchWarrant));
        assert!(out.is_lawful_with(LegalProcess::WiretapOrder));
    }

    #[test]
    fn rationale_is_never_empty() {
        let out = engine().assess(&device_search());
        assert!(!out.rationale().is_empty());
        assert!(!out.to_string().is_empty());
    }

    #[test]
    fn provenance_ends_with_final_verdict_and_keeps_layer_order() {
        let out = engine().assess(&device_search());
        let firings = out.provenance().firings();
        assert!(!firings.is_empty());
        assert_eq!(firings[0].rule(), "privacy.rep");
        assert_eq!(firings.last().unwrap().rule(), "verdict.final");
        assert_eq!(
            firings.last().unwrap().process(),
            Some(LegalProcess::SearchWarrant)
        );
        // The warrant firing precedes the final fold.
        let warrant = firings
            .iter()
            .position(|f| f.rule() == "fourth_amendment.warrant")
            .expect("warrant rule fired");
        assert_eq!(warrant, firings.len() - 2);
    }

    #[test]
    fn provenance_records_the_applied_exception() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::SuspectDevice,
            ),
        )
        .target_on_probation()
        .build();
        let out = engine().assess(&a);
        let rules: Vec<_> = out
            .provenance()
            .firings()
            .iter()
            .map(|f| f.rule())
            .collect();
        assert!(rules.contains(&"exception.probation"));
        assert!(!rules.contains(&"fourth_amendment.warrant"));
        assert_eq!(
            out.provenance().firings().last().unwrap().process(),
            Some(LegalProcess::None)
        );
    }

    #[test]
    fn provenance_marks_private_actor_dead_end() {
        let a = InvestigativeAction::builder(
            Actor::private_individual(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::RealTime,
                DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
            ),
        )
        .build();
        let out = engine().assess(&a);
        let firings = out.provenance().firings();
        assert!(firings.iter().any(|f| f.rule() == "actor.private"));
        let last = firings.last().unwrap();
        assert_eq!(last.rule(), "verdict.final");
        assert_eq!(last.process(), None, "unlawful: no process tier exists");
    }

    #[test]
    fn free_function_matches_engine() {
        let a = device_search();
        assert_eq!(assess(&a).verdict(), engine().assess(&a).verdict());
    }

    #[test]
    fn monotonicity_more_process_never_hurts() {
        // For a sample of actions, if lawful with process P it stays
        // lawful with any stronger process.
        let actions = [device_search()];
        for a in &actions {
            let out = engine().assess(a);
            let mut prev = false;
            for p in LegalProcess::ALL {
                let now = out.is_lawful_with(p);
                assert!(!prev || now, "legality must be monotone in process");
                prev = now;
            }
        }
    }
}
