//! Provider classification under the Stored Communications Act.
//!
//! The SCA "is not a catchall statute" (§III-A-3): it protects only
//! providers of *electronic communication service* (ECS,
//! 18 U.S.C. § 2510(15)) and *remote computing service* (RCS, § 2711(2)),
//! and RCS status additionally requires that the service be offered *to
//! the public*. The paper walks a specific lifecycle — Alice at a
//! university mails Bob at Gmail — which this module reproduces as a state
//! machine ([`MessageLifecycle`]).

use std::fmt;

/// Whether the provider offers service to the public.
///
/// Public commercial providers (Gmail, Hotmail) are restrained by § 2702
/// from voluntary disclosure; providers "not available to the public"
/// (a university or employer server) "may freely disclose both contents
/// and non-content records" (§III-A-3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProviderPublicity {
    /// Offered to the public (commercial ISP, webmail).
    Public,
    /// Internal/institutional only (university, employer).
    NonPublic,
}

impl fmt::Display for ProviderPublicity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProviderPublicity::Public => f.write_str("public provider"),
            ProviderPublicity::NonPublic => f.write_str("non-public provider"),
        }
    }
}

/// The provider's SCA role *with respect to a particular communication*.
///
/// The role is per-message, not per-provider: the same Gmail server is an
/// ECS for an in-flight email and an RCS for the same email once Bob has
/// opened and left it in storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaRole {
    /// Provider of electronic communication service with respect to the
    /// message (§ 2510(15)).
    Ecs,
    /// Provider of remote computing service with respect to the message
    /// (§ 2711(2)); requires a public-facing service.
    Rcs,
    /// Neither ECS nor RCS — "the SCA no longer regulates access ... and
    /// such access is governed solely by the Fourth Amendment" (§III-A-3).
    Neither,
}

impl ScaRole {
    /// Whether the SCA regulates government access to the message in this
    /// role.
    pub fn sca_applies(self) -> bool {
        !matches!(self, ScaRole::Neither)
    }
}

impl fmt::Display for ScaRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaRole::Ecs => f.write_str("ECS provider"),
            ScaRole::Rcs => f.write_str("RCS provider"),
            ScaRole::Neither => f.write_str("neither ECS nor RCS"),
        }
    }
}

/// Where a message is in its delivery lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageStage {
    /// Sitting at the provider awaiting retrieval by the recipient.
    AwaitingRetrieval,
    /// Retrieved/opened by the recipient and left in storage at the
    /// provider.
    OpenedInStorage,
}

/// A message's position relative to a particular provider, sufficient to
/// derive the provider's SCA role for it.
///
/// # Examples
///
/// The paper's Alice→Bob walkthrough (§III-A-3):
///
/// ```
/// use forensic_law::provider::{MessageLifecycle, MessageStage, ProviderPublicity, ScaRole};
///
/// // Bob's unopened email at Gmail: Gmail is an ECS provider.
/// let at_gmail = MessageLifecycle::new(ProviderPublicity::Public, MessageStage::AwaitingRetrieval);
/// assert_eq!(at_gmail.sca_role(), ScaRole::Ecs);
///
/// // Bob opens it and leaves it there: Gmail becomes an RCS provider.
/// let opened = at_gmail.after_opening();
/// assert_eq!(opened.sca_role(), ScaRole::Rcs);
///
/// // Alice's opened reply on the university server: neither ECS nor RCS —
/// // the SCA drops out and the Fourth Amendment alone governs.
/// let at_univ = MessageLifecycle::new(ProviderPublicity::NonPublic, MessageStage::OpenedInStorage);
/// assert_eq!(at_univ.sca_role(), ScaRole::Neither);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MessageLifecycle {
    publicity: ProviderPublicity,
    stage: MessageStage,
}

impl MessageLifecycle {
    /// Creates a lifecycle position.
    pub fn new(publicity: ProviderPublicity, stage: MessageStage) -> Self {
        MessageLifecycle { publicity, stage }
    }

    /// The provider's publicity.
    pub fn publicity(self) -> ProviderPublicity {
        self.publicity
    }

    /// The message's stage.
    pub fn stage(self) -> MessageStage {
        self.stage
    }

    /// The lifecycle after the recipient opens the message and leaves it
    /// in storage.
    #[must_use]
    pub fn after_opening(self) -> Self {
        MessageLifecycle {
            publicity: self.publicity,
            stage: MessageStage::OpenedInStorage,
        }
    }

    /// Derives the provider's SCA role with respect to this message.
    ///
    /// * awaiting retrieval → ECS (any provider);
    /// * opened in storage at a **public** provider → RCS;
    /// * opened in storage at a **non-public** provider → neither
    ///   (*Andersen Consulting v. UOP*): "It does not provide RCS because
    ///   it does not provide services to the public."
    pub fn sca_role(self) -> ScaRole {
        match (self.stage, self.publicity) {
            (MessageStage::AwaitingRetrieval, _) => ScaRole::Ecs,
            (MessageStage::OpenedInStorage, ProviderPublicity::Public) => ScaRole::Rcs,
            (MessageStage::OpenedInStorage, ProviderPublicity::NonPublic) => ScaRole::Neither,
        }
    }
}

/// The categories of information § 2703 lets the government compel from a
/// provider, each with its own process requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompelledInfo {
    /// Name, address, connection records, session times, payment info
    /// (§ 2703(c)(2)) — compellable with a subpoena.
    BasicSubscriberInfo,
    /// Other non-content records and logs — compellable with a § 2703(d)
    /// court order.
    TransactionalRecords,
    /// Content of communications in "electronic storage" unopened —
    /// requires a search warrant.
    UnopenedContent,
    /// Content already opened or held by an RCS — compellable with less
    /// than a warrant (modelled as a § 2703(d) order with notice).
    OpenedContent,
}

impl fmt::Display for CompelledInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompelledInfo::BasicSubscriberInfo => "basic subscriber information",
            CompelledInfo::TransactionalRecords => "transactional records",
            CompelledInfo::UnopenedContent => "unopened stored content",
            CompelledInfo::OpenedContent => "opened stored content",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unretrieved_message_makes_any_provider_ecs() {
        for p in [ProviderPublicity::Public, ProviderPublicity::NonPublic] {
            let lc = MessageLifecycle::new(p, MessageStage::AwaitingRetrieval);
            assert_eq!(lc.sca_role(), ScaRole::Ecs);
            assert!(lc.sca_role().sca_applies());
        }
    }

    #[test]
    fn opened_at_public_provider_is_rcs() {
        let lc = MessageLifecycle::new(ProviderPublicity::Public, MessageStage::OpenedInStorage);
        assert_eq!(lc.sca_role(), ScaRole::Rcs);
    }

    #[test]
    fn opened_at_non_public_provider_drops_out_of_sca() {
        let lc = MessageLifecycle::new(ProviderPublicity::NonPublic, MessageStage::OpenedInStorage);
        assert_eq!(lc.sca_role(), ScaRole::Neither);
        assert!(!lc.sca_role().sca_applies());
    }

    #[test]
    fn after_opening_transitions_stage_only() {
        let lc = MessageLifecycle::new(ProviderPublicity::Public, MessageStage::AwaitingRetrieval);
        let opened = lc.after_opening();
        assert_eq!(opened.stage(), MessageStage::OpenedInStorage);
        assert_eq!(opened.publicity(), ProviderPublicity::Public);
        // Idempotent.
        assert_eq!(opened.after_opening(), opened);
    }

    #[test]
    fn paper_alice_bob_walkthrough() {
        // Alice -> Bob at Gmail. In transit/awaiting: ECS.
        let gmail =
            MessageLifecycle::new(ProviderPublicity::Public, MessageStage::AwaitingRetrieval);
        assert_eq!(gmail.sca_role(), ScaRole::Ecs);
        // Bob stores it after reading: RCS.
        assert_eq!(gmail.after_opening().sca_role(), ScaRole::Rcs);
        // Bob -> Alice at the university. Before retrieval: ECS.
        let univ = MessageLifecycle::new(
            ProviderPublicity::NonPublic,
            MessageStage::AwaitingRetrieval,
        );
        assert_eq!(univ.sca_role(), ScaRole::Ecs);
        // Alice opens and stores: neither — Fourth Amendment governs.
        assert_eq!(univ.after_opening().sca_role(), ScaRole::Neither);
    }

    #[test]
    fn displays() {
        assert_eq!(ScaRole::Ecs.to_string(), "ECS provider");
        assert!(CompelledInfo::BasicSubscriberInfo
            .to_string()
            .contains("subscriber"));
    }
}
