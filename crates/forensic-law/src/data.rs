//! What information is being collected, where it lives, and how it is
//! moving — the three axes the statutes carve the world along.
//!
//! The paper (§II-B-2, §III-A-3) summarizes the division of labour:
//! the **Pen/Trap statute** regulates collection of *addressing and other
//! non-content information* in real time, **Title III** regulates
//! collection of the *actual content* in real time, and the **SCA**
//! regulates *stored* content and records held by providers. Information
//! inside a computer is governed by the Fourth Amendment directly.

use std::fmt;

/// The substantive category of the information collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentClass {
    /// The substance of a communication: message bodies, email subject
    /// lines, web page contents, full packets including payload.
    Content,
    /// Dialing, routing, addressing or signalling information: IP/TCP/UDP
    /// headers, TO/FROM email addresses, dialed numbers, packet sizes and
    /// volumes (§II-B-2-c).
    NonContentAddressing,
    /// Basic subscriber information held by a provider: name, address,
    /// connection logs, payment data (18 U.S.C. § 2703(c)(2)).
    SubscriberRecords,
    /// Other transactional records held by a provider (account logs,
    /// cell-site-like records) compellable with a § 2703(d) order.
    TransactionalRecords,
}

impl ContentClass {
    /// Whether this class is communication *content* for Title III /
    /// § 2703(a) purposes.
    pub fn is_content(self) -> bool {
        matches!(self, ContentClass::Content)
    }
}

impl fmt::Display for ContentClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ContentClass::Content => "communication content",
            ContentClass::NonContentAddressing => "non-content addressing information",
            ContentClass::SubscriberRecords => "basic subscriber records",
            ContentClass::TransactionalRecords => "transactional records",
        };
        f.write_str(s)
    }
}

/// Whether the collection is contemporaneous with transmission.
///
/// The "intercept" element of Title III carries a contemporaneity
/// requirement (§III-A-3, citing *Steiger*, *Konop*): acquisition must be
/// contemporaneous with transmission, otherwise the SCA (stored
/// communications), not Title III, governs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Temporality {
    /// Acquired in real time, contemporaneous with transmission.
    RealTime,
    /// Acquired from storage after transmission completed.
    Stored {
        /// Whether the communication has already been retrieved/opened by
        /// its intended recipient. Under the paper's Alice/Bob example
        /// (§III-A-3) this drives the ECS→RCS→neither provider lifecycle.
        opened: bool,
    },
}

impl Temporality {
    /// Convenience constructor for stored, not-yet-opened communications.
    pub fn stored_unopened() -> Self {
        Temporality::Stored { opened: false }
    }

    /// Convenience constructor for stored, already-opened communications.
    pub fn stored_opened() -> Self {
        Temporality::Stored { opened: true }
    }

    /// True when acquisition is contemporaneous with transmission.
    pub fn is_real_time(self) -> bool {
        matches!(self, Temporality::RealTime)
    }
}

impl fmt::Display for Temporality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Temporality::RealTime => f.write_str("in real time"),
            Temporality::Stored { opened: false } => f.write_str("stored (unopened)"),
            Temporality::Stored { opened: true } => f.write_str("stored (opened)"),
        }
    }
}

/// The transmission medium, for actions that capture data in flight.
///
/// Table 1 of the paper distinguishes campus-owned cable plant, the public
/// wired Internet, and open-air wireless (encrypted or not) — the medium
/// changes both the privacy expectation and which statutory exception is
/// available (§ 2511(2)(g)(i) "readily accessible to the general public").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransmissionMedium {
    /// Wires and devices owned/operated by the collecting organization
    /// (Table 1 rows 1–2: "the campus' cables and devices").
    OwnNetwork,
    /// The public wired Internet at an ISP or carrier (Table 1 rows 7–8).
    PublicWiredInternet,
    /// Unencrypted radio broadcast into public air (Table 1 rows 3–4;
    /// the WarDriving / Google Street View scene).
    WirelessUnencrypted,
    /// Encrypted radio (Table 1 rows 5–6).
    WirelessEncrypted,
}

impl TransmissionMedium {
    /// Whether the raw signal is "readily accessible to the general
    /// public" in the § 2511(2)(g)(i) sense — open-air, unscrambled radio.
    pub fn readily_accessible_to_public(self) -> bool {
        matches!(self, TransmissionMedium::WirelessUnencrypted)
    }
}

impl fmt::Display for TransmissionMedium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TransmissionMedium::OwnNetwork => "collector-owned network",
            TransmissionMedium::PublicWiredInternet => "public wired internet",
            TransmissionMedium::WirelessUnencrypted => "unencrypted wireless",
            TransmissionMedium::WirelessEncrypted => "encrypted wireless",
        };
        f.write_str(s)
    }
}

/// Where the information lives at the moment of collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataLocation {
    /// Inside the suspect's own computer or storage device (the
    /// closed-container consensus, §II-C-1).
    SuspectDevice,
    /// In transit across a network.
    InTransit(TransmissionMedium),
    /// Held in storage by a third-party service provider.
    ProviderStorage,
    /// Knowingly exposed in a public forum: public website, public chat
    /// room, P2P shares, Usenet (§II-C-2).
    PublicForum,
    /// On media already lawfully in government custody (seized under a
    /// prior warrant, consented, or handed over) — Table 1 rows 18–20
    /// start from this posture.
    LawfullyObtainedMedia,
    /// Inside a *remote* computer the investigator reaches over the
    /// network (Table 1 rows 16 and 20).
    RemoteComputer,
}

impl DataLocation {
    /// True if the data is in transit (any medium).
    pub fn is_in_transit(self) -> bool {
        matches!(self, DataLocation::InTransit(_))
    }

    /// The transmission medium, when in transit.
    pub fn medium(self) -> Option<TransmissionMedium> {
        match self {
            DataLocation::InTransit(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for DataLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataLocation::SuspectDevice => f.write_str("suspect's device"),
            DataLocation::InTransit(m) => write!(f, "in transit over {m}"),
            DataLocation::ProviderStorage => f.write_str("provider storage"),
            DataLocation::PublicForum => f.write_str("public forum"),
            DataLocation::LawfullyObtainedMedia => f.write_str("lawfully obtained media"),
            DataLocation::RemoteComputer => f.write_str("remote computer"),
        }
    }
}

/// A complete description of the information targeted by an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataSpec {
    /// Substantive category.
    pub category: ContentClass,
    /// Real-time vs stored.
    pub temporality: Temporality,
    /// Physical/logical location.
    pub location: DataLocation,
}

impl DataSpec {
    /// Creates a new data specification.
    pub fn new(category: ContentClass, temporality: Temporality, location: DataLocation) -> Self {
        DataSpec {
            category,
            temporality,
            location,
        }
    }

    /// Real-time content in transit — the classic Title III interception
    /// posture.
    pub fn is_interception_of_content(self) -> bool {
        self.category.is_content()
            && self.temporality.is_real_time()
            && self.location.is_in_transit()
    }

    /// Real-time addressing information — the Pen/Trap posture.
    pub fn is_pen_trap_collection(self) -> bool {
        self.category == ContentClass::NonContentAddressing
            && self.temporality.is_real_time()
            && self.location.is_in_transit()
    }
}

impl fmt::Display for DataSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} at {}",
            self.category, self.temporality, self.location
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_class_predicate() {
        assert!(ContentClass::Content.is_content());
        assert!(!ContentClass::NonContentAddressing.is_content());
        assert!(!ContentClass::SubscriberRecords.is_content());
        assert!(!ContentClass::TransactionalRecords.is_content());
    }

    #[test]
    fn temporality_constructors() {
        assert_eq!(
            Temporality::stored_unopened(),
            Temporality::Stored { opened: false }
        );
        assert_eq!(
            Temporality::stored_opened(),
            Temporality::Stored { opened: true }
        );
        assert!(Temporality::RealTime.is_real_time());
        assert!(!Temporality::stored_opened().is_real_time());
    }

    #[test]
    fn only_unencrypted_wireless_is_publicly_accessible() {
        assert!(TransmissionMedium::WirelessUnencrypted.readily_accessible_to_public());
        assert!(!TransmissionMedium::WirelessEncrypted.readily_accessible_to_public());
        assert!(!TransmissionMedium::PublicWiredInternet.readily_accessible_to_public());
        assert!(!TransmissionMedium::OwnNetwork.readily_accessible_to_public());
    }

    #[test]
    fn location_medium_accessor() {
        let loc = DataLocation::InTransit(TransmissionMedium::PublicWiredInternet);
        assert!(loc.is_in_transit());
        assert_eq!(loc.medium(), Some(TransmissionMedium::PublicWiredInternet));
        assert_eq!(DataLocation::SuspectDevice.medium(), None);
    }

    #[test]
    fn interception_posture_detection() {
        let spec = DataSpec::new(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
        );
        assert!(spec.is_interception_of_content());
        assert!(!spec.is_pen_trap_collection());

        let headers = DataSpec::new(
            ContentClass::NonContentAddressing,
            Temporality::RealTime,
            DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
        );
        assert!(headers.is_pen_trap_collection());
        assert!(!headers.is_interception_of_content());
    }

    #[test]
    fn stored_content_is_not_interception() {
        let spec = DataSpec::new(
            ContentClass::Content,
            Temporality::stored_unopened(),
            DataLocation::ProviderStorage,
        );
        assert!(!spec.is_interception_of_content());
    }

    #[test]
    fn displays_are_nonempty() {
        let spec = DataSpec::new(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::InTransit(TransmissionMedium::WirelessUnencrypted),
        );
        let s = spec.to_string();
        assert!(s.contains("content"));
        assert!(s.contains("wireless"));
    }
}
