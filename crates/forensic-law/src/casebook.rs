//! A typed casebook of the authorities the paper cites.
//!
//! Every rationale step produced by the compliance engine cites one or more
//! entries from this casebook, mirroring how the paper grounds each rule in
//! a case, statute, or secondary source. Holdings are paraphrased from the
//! paper's own characterizations.

use std::fmt;

/// The kind of legal authority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuthorityKind {
    /// A constitutional provision.
    Constitution,
    /// A federal statute.
    Statute,
    /// A decided case.
    Case,
    /// A secondary source (treatise, DOJ manual, paper).
    Secondary,
}

/// Identifiers for each authority in the casebook.
///
/// The variants cover the constitutional text, the three statutes the paper
/// is organized around, and the cases the paper's footnotes rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
#[allow(missing_docs)] // each variant is documented by its casebook entry via `lookup`
pub enum CitationId {
    // Constitutional and statutory authorities.
    FourthAmendment,
    WiretapAct,
    StoredCommunicationsAct,
    PenTrapStatute,
    Section2702,
    Section2703,
    Section2511TrespasserException,
    Section2511PublicAccessException,
    Section3121c,
    Section3125Emergency,
    // Reasonable-expectation-of-privacy cases.
    KatzVUnitedStates,
    KylloVUnitedStates,
    SmithVMaryland,
    HoffaVUnitedStates,
    CouchVUnitedStates,
    UnitedStatesVGorshkov,
    WilsonVMoreau,
    UnitedStatesVGinesPerez,
    UnitedStatesVButler,
    UnitedStatesVKing2007,
    UnitedStatesVBarrows,
    UnitedStatesVStults,
    UnitedStatesVVillarreal,
    UnitedStatesVYoung2003,
    UnitedStatesVKing1995,
    UnitedStatesVMeriwether,
    UnitedStatesVCharbonneau,
    UnitedStatesVHorowitz,
    GuestVLeis,
    // Closed-container / scope cases.
    UnitedStatesVRunyan,
    UnitedStatesVBeusch,
    UnitedStatesVWalser,
    // Probable-cause cases.
    IllinoisVGates,
    UnitedStatesVPerez,
    UnitedStatesVGrant,
    UnitedStatesVCarter,
    UnitedStatesVLatham,
    UnitedStatesVHibble,
    UnitedStatesVTerry,
    UnitedStatesVWilder,
    UnitedStatesVGourde,
    UnitedStatesVCoreas,
    // Staleness cases.
    UnitedStatesVIrving,
    UnitedStatesVPaull,
    UnitedStatesVWatzman,
    UnitedStatesVNewsom,
    UnitedStatesVRiccardi,
    UnitedStatesVCox,
    UnitedStatesVDoan,
    UnitedStatesVZimmerman,
    UnitedStatesVFrechette,
    // Warrant-scope / time cases.
    UnitedStatesVAdjani,
    UnitedStatesVKow,
    UnitedStatesVHill,
    UnitedStatesVHargus,
    UnitedStatesVTamura,
    UnitedStatesVHay,
    UnitedStatesVLong,
    UnitedStatesVBurns,
    UnitedStatesVMutschelknaus,
    // Title III interception cases.
    SteveJacksonGames,
    FraserVNationwide,
    KonopVHawaiianAirlines,
    UnitedStatesVSteiger,
    UnitedStatesVForrester,
    // Exception cases.
    MinceyVArizona,
    UnitedStatesVRomeroGarcia,
    UnitedStatesVYoung2006,
    UnitedStatesVMoralesOrtiz,
    UnitedStatesVWall,
    UnitedStatesVReyes,
    UnitedStatesVMegahed,
    UnitedStatesVMatlock,
    UnitedStatesVSmith,
    TrulockVFreeh,
    UnitedStatesVLavin,
    UnitedStatesVDurham,
    UnitedStatesVZiegler,
    OConnorVOrtega,
    UnitedStatesVCassiere,
    UnitedStatesVKnights,
    UnitedStatesVVillanueva,
    // SCA provider-classification cases.
    KaufmanVNestSeekers,
    AndersenConsultingVUop,
    SenateReport99_541,
    // Hashing / data-mining cases (Table 1 rows 18-19).
    UnitedStatesVCrist,
    StateVSloane,
    // Secondary sources.
    DojSearchSeizureManual,
    KerrComputerCrimeLaw,
    WallsInvestigatorCentric,
    PrustyOneSwarm,
    HuangDsssWatermark,
}

/// A casebook entry: citation text plus a paraphrased holding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Authority {
    /// Which authority this is.
    pub id: CitationId,
    /// Constitutional, statutory, case, or secondary.
    pub kind: AuthorityKind,
    /// The bluebook-ish citation string.
    pub cite: &'static str,
    /// One-sentence paraphrase of the relevant holding.
    pub holding: &'static str,
}

impl fmt::Display for Authority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} — {}", self.cite, self.holding)
    }
}

/// Looks up the casebook entry for a citation.
///
/// # Examples
///
/// ```
/// use forensic_law::casebook::{lookup, CitationId};
///
/// let katz = lookup(CitationId::KatzVUnitedStates);
/// assert!(katz.cite.contains("389 U.S. 347"));
/// ```
pub fn lookup(id: CitationId) -> Authority {
    use AuthorityKind::*;
    use CitationId::*;
    let (kind, cite, holding) = match id {
        FourthAmendment => (Constitution, "U.S. Const. amend. IV", "no unreasonable searches and seizures; warrants only upon probable cause, particularly describing the place and things"),
        WiretapAct => (Statute, "18 U.S.C. §§ 2510–2522 (Title III)", "prohibits unauthorized real-time interception of the content of wire, oral, and electronic communications"),
        StoredCommunicationsAct => (Statute, "18 U.S.C. §§ 2701–2712 (SCA)", "regulates government access to stored content and non-content records held by ECS/RCS providers"),
        PenTrapStatute => (Statute, "18 U.S.C. §§ 3121–3127", "regulates real-time collection of dialing, routing, addressing, and signalling information"),
        Section2702 => (Statute, "18 U.S.C. § 2702", "limits voluntary disclosure by public providers; non-public providers may freely disclose"),
        Section2703 => (Statute, "18 U.S.C. § 2703", "ladder of process for compelled disclosure: subpoena for basic subscriber info, (d) order for records, warrant for unopened content"),
        Section2511TrespasserException => (Statute, "18 U.S.C. § 2511(2)(i)", "victims may authorize persons acting under color of law to monitor computer trespassers"),
        Section2511PublicAccessException => (Statute, "18 U.S.C. § 2511(2)(g)(i)", "any person may intercept electronic communications readily accessible to the general public"),
        Section3121c => (Statute, "18 U.S.C. § 3121(c)", "pen/trap collection must use technology reasonably available to avoid recording content"),
        Section3125Emergency => (Statute, "18 U.S.C. § 3125", "emergency pen/trap installation without order on high-level approval for danger, organized crime, national security, or ongoing protected-computer attack"),
        KatzVUnitedStates => (Case, "Katz v. United States, 389 U.S. 347 (1967)", "the Fourth Amendment protects people, not places; a call from a closed phone booth carries a reasonable expectation of privacy"),
        KylloVUnitedStates => (Case, "Kyllo v. United States, 533 U.S. 27 (2001)", "sense-enhancing technology not in general public use revealing details of the home interior is a search"),
        SmithVMaryland => (Case, "Smith v. Maryland, 442 U.S. 735 (1979)", "no reasonable expectation of privacy in numbers dialed, which are conveyed to the phone company"),
        HoffaVUnitedStates => (Case, "Hoffa v. United States, 385 U.S. 293 (1966)", "no protected privacy interest in information knowingly revealed to another"),
        CouchVUnitedStates => (Case, "Couch v. United States, 409 U.S. 322 (1973)", "records relinquished to a third party lose the owner's privacy expectation"),
        UnitedStatesVGorshkov => (Case, "United States v. Gorshkov, 2001 WL 1024026 (W.D. Wash. 2001)", "no expectation of privacy in information knowingly exposed on another's system"),
        WilsonVMoreau => (Case, "Wilson v. Moreau, 440 F. Supp. 2d 81 (D.R.I. 2006)", "no privacy expectation in files left on a public library computer"),
        UnitedStatesVGinesPerez => (Case, "United States v. Gines-Perez, 214 F. Supp. 2d 205 (D.P.R. 2002)", "no privacy expectation in information placed on the public Internet"),
        UnitedStatesVButler => (Case, "United States v. Butler, 151 F. Supp. 2d 82 (D. Me. 2001)", "no privacy expectation in a shared public computer"),
        UnitedStatesVKing2007 => (Case, "United States v. King, 509 F.3d 1338 (11th Cir. 2007)", "sharing a folder over a network forfeits the expectation of privacy in it"),
        UnitedStatesVBarrows => (Case, "United States v. Barrows, 481 F.3d 1246 (10th Cir. 2007)", "networking a personal computer for sharing forfeits privacy in the shared material"),
        UnitedStatesVStults => (Case, "United States v. Stults, 2007 WL 4284721 (D. Neb. 2007)", "no privacy expectation in files shared through P2P software"),
        UnitedStatesVVillarreal => (Case, "United States v. Villarreal, 963 F.2d 770 (5th Cir. 1992)", "sealed containers in transit retain both sender's and recipient's privacy expectations"),
        UnitedStatesVYoung2003 => (Case, "United States v. Young, 350 F.3d 1302 (11th Cir. 2003)", "carrier terms of service can eliminate the privacy expectation as against the carrier"),
        UnitedStatesVKing1995 => (Case, "United States v. King, 55 F.3d 1193 (6th Cir. 1995)", "a sender's expectation of privacy in a communication terminates upon delivery"),
        UnitedStatesVMeriwether => (Case, "United States v. Meriwether, 917 F.2d 955 (6th Cir. 1990)", "no privacy expectation in a message once delivered to a recipient's device"),
        UnitedStatesVCharbonneau => (Case, "United States v. Charbonneau, 979 F. Supp. 1177 (S.D. Ohio 1997)", "email loses privacy protection once it reaches its recipients, including undercover agents"),
        UnitedStatesVHorowitz => (Case, "United States v. Horowitz, 806 F.2d 1222 (4th Cir. 1986)", "relinquishing control of data to a third party defeats the privacy expectation"),
        GuestVLeis => (Case, "Guest v. Leis, 255 F.3d 325 (6th Cir. 2001)", "no privacy expectation in material posted to a bulletin board accessible to others"),
        UnitedStatesVRunyan => (Case, "United States v. Runyan, 275 F.3d 449 (5th Cir. 2001)", "disks are closed containers; private search of some files does not expose the rest"),
        UnitedStatesVBeusch => (Case, "United States v. Beusch, 596 F.2d 871 (9th Cir. 1979)", "items seized together may be treated as a unit when intermingled"),
        UnitedStatesVWalser => (Case, "United States v. Walser, 275 F.3d 981 (10th Cir. 2001)", "computer searches must be tailored; agents must stop and get a new warrant for evidence of a different crime"),
        IllinoisVGates => (Case, "Illinois v. Gates, 462 U.S. 213 (1983)", "probable cause is a fair probability under the totality of the circumstances"),
        UnitedStatesVPerez => (Case, "United States v. Perez, 484 F.3d 735 (5th Cir. 2007)", "an IP address tied to a residence supports probable cause despite possible open Wi-Fi use"),
        UnitedStatesVGrant => (Case, "United States v. Grant, 218 F.3d 72 (1st Cir. 2000)", "IP-based identification supports a residential search warrant"),
        UnitedStatesVCarter => (Case, "United States v. Carter, 549 F. Supp. 2d 1257 (D. Nev. 2008)", "subscriber identification from an IP address supports probable cause"),
        UnitedStatesVLatham => (Case, "United States v. Latham, 2007 WL 4563459 (D. Nev. 2007)", "unsecured wireless does not defeat probable cause from an IP address"),
        UnitedStatesVHibble => (Case, "United States v. Hibble, 2006 WL 2620349 (D. Ariz. 2006)", "possibility of outsiders using the connection goes to weight, not probable cause"),
        UnitedStatesVTerry => (Case, "United States v. Terry, 522 F.3d 645 (6th Cir. 2008)", "online account information can establish probable cause to search the account holder's computer"),
        UnitedStatesVWilder => (Case, "United States v. Wilder, 526 F.3d 1 (1st Cir. 2008)", "membership evidence plus corroboration supports probable cause"),
        UnitedStatesVGourde => (Case, "United States v. Gourde, 440 F.3d 1065 (9th Cir. 2006) (en banc)", "paid membership in a child-pornography site supports probable cause"),
        UnitedStatesVCoreas => (Case, "United States v. Coreas, 419 F.3d 151 (2d Cir. 2005)", "mere membership alone may not establish probable cause"),
        UnitedStatesVIrving => (Case, "United States v. Irving, 452 F.3d 110 (2d Cir. 2006)", "aged information can still support probable cause for collectors of contraband"),
        UnitedStatesVPaull => (Case, "United States v. Paull, 551 F.3d 516 (6th Cir. 2009)", "thirteen-month-old information not stale for child-pornography collections"),
        UnitedStatesVWatzman => (Case, "United States v. Watzman, 486 F.3d 1004 (7th Cir. 2007)", "three-month-old purchase records not stale"),
        UnitedStatesVNewsom => (Case, "United States v. Newsom, 402 F.3d 780 (7th Cir. 2005)", "images tend to persist on hard drives; staleness challenge rejected"),
        UnitedStatesVRiccardi => (Case, "United States v. Riccardi, 405 F.3d 852 (10th Cir. 2005)", "five-year-old information not stale where evidence likely retained"),
        UnitedStatesVCox => (Case, "United States v. Cox, 190 F. Supp. 2d 330 (N.D.N.Y. 2002)", "deleted files recoverable by forensics keep old information fresh"),
        UnitedStatesVDoan => (Case, "United States v. Doan, 2007 WL 2247657 (7th Cir. 2007)", "some information can be too stale to support probable cause"),
        UnitedStatesVZimmerman => (Case, "United States v. Zimmerman, 277 F.3d 426 (3d Cir. 2002)", "ten-month-old evidence of a single deleted item was stale"),
        UnitedStatesVFrechette => (Case, "United States v. Frechette, 2008 WL 4287818 (W.D. Mich. 2008)", "expired subscription too stale on its facts"),
        UnitedStatesVAdjani => (Case, "United States v. Adjani, 452 F.3d 1140 (9th Cir. 2006)", "warrants may authorize search of records reasonably related to the crime"),
        UnitedStatesVKow => (Case, "United States v. Kow, 58 F.3d 423 (9th Cir. 1995)", "generic warrants lacking crime-specific limits are overbroad"),
        UnitedStatesVHill => (Case, "United States v. Hill, 459 F.3d 966 (9th Cir. 2006)", "agents must justify seizing entire systems for off-site examination"),
        UnitedStatesVHargus => (Case, "United States v. Hargus, 128 F.3d 1358 (10th Cir. 1997)", "wholesale seizure for later examination upheld where justified"),
        UnitedStatesVTamura => (Case, "United States v. Tamura, 694 F.2d 591 (9th Cir. 1982)", "intermingled documents may be removed for off-site sorting with safeguards"),
        UnitedStatesVHay => (Case, "United States v. Hay, 231 F.3d 630 (9th Cir. 2000)", "imaging the entire system was justified on explanation of necessity"),
        UnitedStatesVLong => (Case, "United States v. Long, 425 F.3d 482 (7th Cir. 2005)", "the Fourth Amendment does not limit the examiner's technique over responsive data"),
        UnitedStatesVBurns => (Case, "United States v. Burns, 2008 WL 4542990 (N.D. Ill. 2008)", "no specific constitutional time limit on forensic examination"),
        UnitedStatesVMutschelknaus => (Case, "United States v. Mutschelknaus, 564 F. Supp. 2d 1072 (D.N.D. 2008)", "examination may continue past the warrant's execution window on reasonableness"),
        SteveJacksonGames => (Case, "Steve Jackson Games v. U.S. Secret Service, 36 F.3d 457 (5th Cir. 1994)", "seizure of stored email is not an 'interception' under Title III"),
        FraserVNationwide => (Case, "Fraser v. Nationwide Mut. Ins., 352 F.3d 107 (3d Cir. 2003)", "acquisition of email from storage is governed by the SCA, not Title III"),
        KonopVHawaiianAirlines => (Case, "Konop v. Hawaiian Airlines, 302 F.3d 868 (9th Cir. 2002)", "interception requires acquisition contemporaneous with transmission"),
        UnitedStatesVSteiger => (Case, "United States v. Steiger, 318 F.3d 1039 (11th Cir. 2003)", "accessing stored files via a hack is not real-time interception"),
        UnitedStatesVForrester => (Case, "United States v. Forrester, 512 F.3d 500 (9th Cir. 2008)", "email TO/FROM addresses, destination IPs, and volume are non-content pen/trap data"),
        MinceyVArizona => (Case, "Mincey v. Arizona, 437 U.S. 385 (1978)", "warrantless searches allowed in exigent circumstances to protect safety or evidence"),
        UnitedStatesVRomeroGarcia => (Case, "United States v. Romero-Garcia, 991 F. Supp. 1223 (D. Or. 1997)", "imminent destruction of digital evidence is an exigency"),
        UnitedStatesVYoung2006 => (Case, "United States v. Young, 2006 WL 1302667 (N.D.W.Va. 2006)", "devices may auto-delete or be remotely wiped; exigency tied to case facts"),
        UnitedStatesVMoralesOrtiz => (Case, "United States v. Morales-Ortiz, 376 F. Supp. 2d 1131 (D.N.M. 2004)", "exigency for electronic devices assessed on individual facts"),
        UnitedStatesVWall => (Case, "United States v. Wall, 2008 WL 5381412 (S.D. Fla. 2008)", "no automatic exigency for cell phones; facts control"),
        UnitedStatesVReyes => (Case, "United States v. Reyes, 922 F. Supp. 818 (S.D.N.Y. 1996)", "pager message loss risk evaluated case by case"),
        UnitedStatesVMegahed => (Case, "United States v. Megahed, 2009 WL 722481 (M.D. Fla. 2009)", "no privacy expectation retained in a mirror image made before consent was revoked"),
        UnitedStatesVMatlock => (Case, "United States v. Matlock, 415 U.S. 164 (1974)", "a co-occupant with common authority may consent to a search"),
        UnitedStatesVSmith => (Case, "United States v. Smith, 27 F. Supp. 2d 1111 (C.D. Ill. 1998)", "shared computer users can consent to the spaces they control"),
        TrulockVFreeh => (Case, "Trulock v. Freeh, 275 F.3d 391 (4th Cir. 2001)", "common authority does not extend to another user's password-protected files"),
        UnitedStatesVLavin => (Case, "United States v. Lavin, 1992 WL 373486 (S.D.N.Y. 1992)", "parents may consent to searches of minor children's property"),
        UnitedStatesVDurham => (Case, "United States v. Durham, 1998 WL 684241 (D. Kan. 1998)", "parental consent for adult children depends on the facts"),
        UnitedStatesVZiegler => (Case, "United States v. Ziegler, 474 F.3d 1184 (9th Cir. 2007)", "a private employer may consent to a search of workplace computers"),
        OConnorVOrtega => (Case, "O'Connor v. Ortega, 480 U.S. 709 (1987)", "government employers may conduct reasonable work-related searches without a warrant"),
        UnitedStatesVCassiere => (Case, "United States v. Cassiere, 4 F.3d 1006 (1st Cir. 1993)", "one-party consent authorizes interception absent criminal or tortious purpose"),
        UnitedStatesVKnights => (Case, "United States v. Knights, 534 U.S. 112 (2001)", "probationers may be searched on reasonable suspicion"),
        UnitedStatesVVillanueva => (Case, "United States v. Villanueva, 32 F. Supp. 2d 635 (S.D.N.Y. 1998)", "victims may permit monitoring of intruders on their systems"),
        KaufmanVNestSeekers => (Case, "Kaufman v. Nest Seekers, 2006 WL 2807177 (S.D.N.Y. 2006)", "a bulletin-board host is an ECS provider"),
        AndersenConsultingVUop => (Case, "Andersen Consulting v. UOP, 991 F. Supp. 1041 (N.D. Ill. 1998)", "a non-public system is not an RCS provider; the SCA drops out"),
        SenateReport99_541 => (Secondary, "S. Rep. No. 99-541 (1986)", "legislative history of ECPA defining ECS/RCS roles and the public-access exception"),
        UnitedStatesVCrist => (Case, "United States v. Crist, 627 F. Supp. 2d 575 (M.D. Pa. 2008)", "running hash values across a drive is a search requiring a warrant"),
        StateVSloane => (Case, "State v. Sloane, 939 A.2d 796 (N.J. 2008)", "mining a lawfully obtained database for hidden information is not a new search"),
        DojSearchSeizureManual => (Secondary, "DOJ, Searching and Seizing Computers and Obtaining Electronic Evidence (3d ed. 2009)", "the DOJ field manual the paper's taxonomy follows"),
        KerrComputerCrimeLaw => (Secondary, "O. Kerr, Computer Crime Law (2d ed. 2009)", "treatise on the interplay of Title III, the SCA, and the Pen/Trap statute"),
        WallsInvestigatorCentric => (Secondary, "Walls et al., Effective Digital Forensics Research is Investigator-Centric (HotSec 2011)", "forensic research must respect the investigator's legal constraints"),
        PrustyOneSwarm => (Secondary, "Prusty, Levine & Liberatore, Forensic Investigation of the OneSwarm Anonymous Filesharing System (CCS 2011)", "timing analysis of protocol-visible traffic identifies OneSwarm sources without legal process"),
        HuangDsssWatermark => (Secondary, "Huang, Pan, Fu & Wang, Long PN Code Based DSSS Watermarking (INFOCOM 2011)", "rate-modulation watermark traces flows through anonymity systems using only rate observation"),
    };
    Authority {
        id,
        kind,
        cite,
        holding,
    }
}

/// All citation ids in the casebook, for enumeration in tests and docs.
pub fn all_citations() -> Vec<CitationId> {
    use CitationId::*;
    vec![
        FourthAmendment,
        WiretapAct,
        StoredCommunicationsAct,
        PenTrapStatute,
        Section2702,
        Section2703,
        Section2511TrespasserException,
        Section2511PublicAccessException,
        Section3121c,
        Section3125Emergency,
        KatzVUnitedStates,
        KylloVUnitedStates,
        SmithVMaryland,
        HoffaVUnitedStates,
        CouchVUnitedStates,
        UnitedStatesVGorshkov,
        WilsonVMoreau,
        UnitedStatesVGinesPerez,
        UnitedStatesVButler,
        UnitedStatesVKing2007,
        UnitedStatesVBarrows,
        UnitedStatesVStults,
        UnitedStatesVVillarreal,
        UnitedStatesVYoung2003,
        UnitedStatesVKing1995,
        UnitedStatesVMeriwether,
        UnitedStatesVCharbonneau,
        UnitedStatesVHorowitz,
        GuestVLeis,
        UnitedStatesVRunyan,
        UnitedStatesVBeusch,
        UnitedStatesVWalser,
        IllinoisVGates,
        UnitedStatesVPerez,
        UnitedStatesVGrant,
        UnitedStatesVCarter,
        UnitedStatesVLatham,
        UnitedStatesVHibble,
        UnitedStatesVTerry,
        UnitedStatesVWilder,
        UnitedStatesVGourde,
        UnitedStatesVCoreas,
        UnitedStatesVIrving,
        UnitedStatesVPaull,
        UnitedStatesVWatzman,
        UnitedStatesVNewsom,
        UnitedStatesVRiccardi,
        UnitedStatesVCox,
        UnitedStatesVDoan,
        UnitedStatesVZimmerman,
        UnitedStatesVFrechette,
        UnitedStatesVAdjani,
        UnitedStatesVKow,
        UnitedStatesVHill,
        UnitedStatesVHargus,
        UnitedStatesVTamura,
        UnitedStatesVHay,
        UnitedStatesVLong,
        UnitedStatesVBurns,
        UnitedStatesVMutschelknaus,
        SteveJacksonGames,
        FraserVNationwide,
        KonopVHawaiianAirlines,
        UnitedStatesVSteiger,
        UnitedStatesVForrester,
        MinceyVArizona,
        UnitedStatesVRomeroGarcia,
        UnitedStatesVYoung2006,
        UnitedStatesVMoralesOrtiz,
        UnitedStatesVWall,
        UnitedStatesVReyes,
        UnitedStatesVMegahed,
        UnitedStatesVMatlock,
        UnitedStatesVSmith,
        TrulockVFreeh,
        UnitedStatesVLavin,
        UnitedStatesVDurham,
        UnitedStatesVZiegler,
        OConnorVOrtega,
        UnitedStatesVCassiere,
        UnitedStatesVKnights,
        UnitedStatesVVillanueva,
        KaufmanVNestSeekers,
        AndersenConsultingVUop,
        SenateReport99_541,
        UnitedStatesVCrist,
        StateVSloane,
        DojSearchSeizureManual,
        KerrComputerCrimeLaw,
        WallsInvestigatorCentric,
        PrustyOneSwarm,
        HuangDsssWatermark,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_citation_resolves() {
        for id in all_citations() {
            let a = lookup(id);
            assert_eq!(a.id, id);
            assert!(!a.cite.is_empty());
            assert!(!a.holding.is_empty());
        }
    }

    #[test]
    fn citations_are_unique() {
        let ids = all_citations();
        let set: HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
        let cites: HashSet<_> = ids.iter().map(|&i| lookup(i).cite).collect();
        assert_eq!(cites.len(), ids.len(), "citation strings must be unique");
    }

    #[test]
    fn casebook_covers_paper_reference_span() {
        // The paper cites ~60 distinct legal authorities; the casebook
        // should carry at least that many plus the secondary sources.
        assert!(all_citations().len() >= 60);
    }

    #[test]
    fn statutes_are_marked_as_statutes() {
        assert_eq!(lookup(CitationId::WiretapAct).kind, AuthorityKind::Statute);
        assert_eq!(
            lookup(CitationId::FourthAmendment).kind,
            AuthorityKind::Constitution
        );
        assert_eq!(
            lookup(CitationId::KatzVUnitedStates).kind,
            AuthorityKind::Case
        );
        assert_eq!(
            lookup(CitationId::KerrComputerCrimeLaw).kind,
            AuthorityKind::Secondary
        );
    }

    #[test]
    fn display_contains_cite_and_holding() {
        let s = lookup(CitationId::KylloVUnitedStates).to_string();
        assert!(s.contains("533 U.S. 27"));
        assert!(s.contains("sense-enhancing"));
    }
}
