//! The paper's Table 1: "Warrant/Court Order/Subpoena in Digital Crime
//! Scenes" — twenty concrete scenarios with the authors' verdicts.
//!
//! Each scenario constructs the corresponding [`InvestigativeAction`] and
//! records the paper's answer ([`PaperVerdict`]); the benchmark harness
//! compares the engine's output against every row. Rows the paper marks
//! `(*)` are the authors' own judgments.

use crate::action::{InvestigativeAction, ProviderCompulsion};
use crate::actor::Actor;
use crate::data::{ContentClass, DataLocation, DataSpec, Temporality, TransmissionMedium};
use crate::provider::{CompelledInfo, MessageLifecycle, MessageStage, ProviderPublicity};
use std::fmt;

/// The paper's recorded answer for a Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PaperVerdict {
    /// `true` = "Need", `false` = "No need".
    pub needs_process: bool,
    /// Whether the paper marks the row with `(*)`.
    pub starred: bool,
}

impl fmt::Display for PaperVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = if self.needs_process {
            "Need"
        } else {
            "No need"
        };
        if self.starred {
            write!(f, "{base} (*)")
        } else {
            f.write_str(base)
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Scenario {
    number: usize,
    summary: &'static str,
    action: InvestigativeAction,
    paper_verdict: PaperVerdict,
}

impl Scenario {
    /// The row number (1–20).
    pub fn number(&self) -> usize {
        self.number
    }

    /// A short summary of the scene.
    pub fn summary(&self) -> &'static str {
        self.summary
    }

    /// The machine-readable action.
    pub fn action(&self) -> &InvestigativeAction {
        &self.action
    }

    /// The paper's verdict.
    pub fn paper_verdict(&self) -> PaperVerdict {
        self.paper_verdict
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<2} {} → {}",
            self.number, self.summary, self.paper_verdict
        )
    }
}

fn verdict(needs_process: bool, starred: bool) -> PaperVerdict {
    PaperVerdict {
        needs_process,
        starred,
    }
}

/// Builds all twenty Table 1 scenarios in order.
///
/// # Examples
///
/// ```
/// use forensic_law::scenarios::table1;
///
/// let rows = table1();
/// assert_eq!(rows.len(), 20);
/// assert_eq!(rows[0].number(), 1);
/// ```
pub fn table1() -> Vec<Scenario> {
    (1..=20).map(scenario).collect()
}

/// Builds a single Table 1 scenario by row number.
///
/// # Panics
///
/// Panics if `number` is not in `1..=20`.
pub fn scenario(number: usize) -> Scenario {
    match number {
        1 => Scenario {
            number,
            summary: "campus IT logs wired traffic headers on the campus' own cables",
            action: InvestigativeAction::builder(
                Actor::system_administrator(),
                DataSpec::new(
                    ContentClass::NonContentAddressing,
                    Temporality::RealTime,
                    DataLocation::InTransit(TransmissionMedium::OwnNetwork),
                ),
            )
            .describe("campus IT logs link/IP/TCP/UDP headers of wired traffic within campus")
            .build(),
            paper_verdict: verdict(false, false),
        },
        2 => Scenario {
            number,
            summary: "campus IT logs full wired traffic; campus policy eliminates privacy",
            action: InvestigativeAction::builder(
                Actor::system_administrator(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::RealTime,
                    DataLocation::InTransit(TransmissionMedium::OwnNetwork),
                ),
            )
            .describe("campus IT logs headers and content of wired traffic within campus")
            .policy_eliminates_privacy()
            .build(),
            paper_verdict: verdict(false, false),
        },
        3 => Scenario {
            number,
            summary: "officer outside a house logs unencrypted wireless headers (WarDriving)",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::NonContentAddressing,
                    Temporality::RealTime,
                    DataLocation::InTransit(TransmissionMedium::WirelessUnencrypted),
                ),
            )
            .describe("officer logs unencrypted wireless link/IP/TCP headers outside a residence")
            .build(),
            paper_verdict: verdict(false, true),
        },
        4 => Scenario {
            number,
            summary: "officer logs unencrypted wireless traffic incl. payload (Street View scene)",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::RealTime,
                    DataLocation::InTransit(TransmissionMedium::WirelessUnencrypted),
                ),
            )
            .describe("officer logs unencrypted wireless routing headers and payload")
            .build(),
            paper_verdict: verdict(true, true),
        },
        5 => Scenario {
            number,
            summary: "officer logs encrypted wireless headers",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::NonContentAddressing,
                    Temporality::RealTime,
                    DataLocation::InTransit(TransmissionMedium::WirelessEncrypted),
                ),
            )
            .describe("officer logs encrypted wireless traffic headers outside a residence")
            .build(),
            paper_verdict: verdict(false, true),
        },
        6 => Scenario {
            number,
            summary: "officer logs encrypted wireless traffic incl. payload",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::RealTime,
                    DataLocation::InTransit(TransmissionMedium::WirelessEncrypted),
                ),
            )
            .describe("officer logs encrypted wireless routing headers and payload")
            .build(),
            paper_verdict: verdict(true, true),
        },
        7 => Scenario {
            number,
            summary: "officer logs packet headers and sizes on the public wired internet",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::NonContentAddressing,
                    Temporality::RealTime,
                    DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
                ),
            )
            .describe("officer logs headers and packet sizes at an ISP")
            .build(),
            paper_verdict: verdict(true, false),
        },
        8 => Scenario {
            number,
            summary: "officer logs entire packets (headers + payload) on the public wired internet",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::RealTime,
                    DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
                ),
            )
            .describe("officer logs full packets at an ISP")
            .build(),
            paper_verdict: verdict(true, false),
        },
        9 => Scenario {
            number,
            summary: "officer uses normal P2P software to collect public information",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::RealTime,
                    DataLocation::PublicForum,
                ),
            )
            .describe("officer collects user names and shared file names via normal P2P software")
            .joining_public_protocol()
            .build(),
            paper_verdict: verdict(false, false),
        },
        10 => Scenario {
            number,
            summary: "officer uses anonymous P2P software to collect public information",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::RealTime,
                    DataLocation::PublicForum,
                ),
            )
            .describe("officer collects public information shown by anonymous P2P software (the OneSwarm scene)")
            .joining_public_protocol()
            .build(),
            paper_verdict: verdict(false, false),
        },
        11 => Scenario {
            number,
            summary: "officer collects a public website's content",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::stored_opened(),
                    DataLocation::PublicForum,
                ),
            )
            .describe("officer downloads content from a website anybody can access")
            .joining_public_protocol()
            .build(),
            paper_verdict: verdict(false, false),
        },
        12 => Scenario {
            number,
            summary: "officer investigates a Tor hidden web server (the server is as an ISP)",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::stored_unopened(),
                    DataLocation::ProviderStorage,
                ),
            )
            .describe("officer investigates a hidden web server at Tor holding user data")
            .target_operates_as_provider()
            .build(),
            paper_verdict: verdict(true, false),
        },
        13 => Scenario {
            number,
            summary: "officer runs a Tor node and investigates traffic on it (not a private search)",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::RealTime,
                    DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
                ),
            )
            .describe("officer builds a Tor node and inspects transiting user traffic")
            .operating_intercepting_infrastructure()
            .build(),
            paper_verdict: verdict(true, false),
        },
        14 => Scenario {
            number,
            summary: "officer monitors Anonymizer (the server is as an ISP)",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::RealTime,
                    DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
                ),
            )
            .describe("officer monitors the Anonymizer proxy server's user traffic")
            .target_operates_as_provider()
            .build(),
            paper_verdict: verdict(true, false),
        },
        15 => Scenario {
            number,
            summary: "attack victim consents to monitoring of the attacker on the victim's computer",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::RealTime,
                    DataLocation::InTransit(TransmissionMedium::OwnNetwork),
                ),
            )
            .describe("victim authorizes officer to monitor attacker activity on the victim's computer")
            .victim_authorized_trespasser_monitoring()
            .build(),
            paper_verdict: verdict(false, false),
        },
        16 => Scenario {
            number,
            summary: "same as 15, but officer collects data inside the attacker's computer",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::stored_opened(),
                    DataLocation::RemoteComputer,
                ),
            )
            .describe("officer reaches into the attacker's own computer to collect data")
            .victim_authorized_trespasser_monitoring()
            .build(),
            paper_verdict: verdict(true, false),
        },
        17 => Scenario {
            number,
            summary: "officer collects content in a public chat room",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::RealTime,
                    DataLocation::PublicForum,
                ),
            )
            .describe("officer collects messages from a chat room anybody can access")
            .joining_public_protocol()
            .build(),
            paper_verdict: verdict(false, false),
        },
        18 => Scenario {
            number,
            summary: "officer hashes an entire lawfully obtained hard drive for a particular file",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::stored_opened(),
                    DataLocation::LawfullyObtainedMedia,
                ),
            )
            .describe("officer runs hash functions across an entire obtained drive hunting one file")
            .exhaustive_forensic_search()
            .build(),
            paper_verdict: verdict(true, false),
        },
        19 => Scenario {
            number,
            summary: "officer mines a lawfully obtained database for hidden information",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::stored_opened(),
                    DataLocation::LawfullyObtainedMedia,
                ),
            )
            .describe("officer data-mines a legally obtained database")
            .mining_lawfully_held_dataset()
            .build(),
            paper_verdict: verdict(false, false),
        },
        20 => Scenario {
            number,
            summary: "after arrest, officer uses the defendant's credentials to fetch remote data",
            action: InvestigativeAction::builder(
                Actor::law_enforcement(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::stored_opened(),
                    DataLocation::RemoteComputer,
                ),
            )
            .describe("officer uses the arrestee's username/password to obtain remote data")
            .using_arrestee_credentials()
            .build(),
            paper_verdict: verdict(false, false),
        },
        _ => panic!("Table 1 has rows 1..=20, got {number}"),
    }
}

/// The §III-A-3 compelled-disclosure postures as ready-made actions, used
/// by examples and tests beyond Table 1.
pub fn compel_subscriber_info_from_public_isp() -> InvestigativeAction {
    InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::SubscriberRecords,
            Temporality::stored_opened(),
            DataLocation::ProviderStorage,
        ),
    )
    .describe("compel an ISP to identify the subscriber behind an IP address")
    .compelling_provider(ProviderCompulsion {
        lifecycle: MessageLifecycle::new(
            ProviderPublicity::Public,
            MessageStage::AwaitingRetrieval,
        ),
        info: CompelledInfo::BasicSubscriberInfo,
    })
    .build()
}

/// Compelling unopened email content from a public provider (warrant
/// required under § 2703(a)).
pub fn compel_unopened_email_from_public_isp() -> InvestigativeAction {
    InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::stored_unopened(),
            DataLocation::ProviderStorage,
        ),
    )
    .describe("compel a public provider to disclose unopened email content")
    .compelling_provider(ProviderCompulsion {
        lifecycle: MessageLifecycle::new(
            ProviderPublicity::Public,
            MessageStage::AwaitingRetrieval,
        ),
        info: CompelledInfo::UnopenedContent,
    })
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assessment::Verdict;
    use crate::engine::ComplianceEngine;
    use crate::process::LegalProcess;

    #[test]
    fn twenty_rows_numbered_in_order() {
        let rows = table1();
        assert_eq!(rows.len(), 20);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.number(), i + 1);
            assert!(!row.summary().is_empty());
            assert!(!row.action().description().is_empty());
        }
    }

    #[test]
    fn starred_rows_are_3_4_5_6() {
        for row in table1() {
            let expect_star = matches!(row.number(), 3..=6);
            assert_eq!(
                row.paper_verdict().starred,
                expect_star,
                "row {}",
                row.number()
            );
        }
    }

    #[test]
    fn paper_verdict_pattern_matches_published_table() {
        let needs: Vec<bool> = table1()
            .iter()
            .map(|s| s.paper_verdict().needs_process)
            .collect();
        let expected = [
            false, false, false, true, false, true, true, true, false, false, false, true, true,
            true, false, true, false, true, false, false,
        ];
        assert_eq!(needs, expected);
    }

    /// The headline reproduction check: the engine agrees with the paper
    /// on all twenty rows.
    #[test]
    fn engine_reproduces_all_twenty_verdicts() {
        let engine = ComplianceEngine::new();
        for row in table1() {
            let out = engine.assess(row.action());
            assert_eq!(
                out.verdict().needs_process(),
                row.paper_verdict().needs_process,
                "row {} ({}): engine said {:?}\n{}",
                row.number(),
                row.summary(),
                out.verdict(),
                out.rationale(),
            );
        }
    }

    /// The engine's confidence matches the paper's (*) markers.
    #[test]
    fn engine_confidence_matches_stars() {
        use crate::assessment::Confidence;
        let engine = ComplianceEngine::new();
        for row in table1() {
            let out = engine.assess(row.action());
            let expect = if row.paper_verdict().starred {
                Confidence::AuthorsJudgment
            } else {
                Confidence::Settled
            };
            assert_eq!(
                out.confidence(),
                expect,
                "row {} ({})",
                row.number(),
                row.summary()
            );
        }
    }

    #[test]
    fn specific_processes_for_key_rows() {
        let engine = ComplianceEngine::new();
        // Row 7: pen/trap court order.
        assert_eq!(
            engine.assess(scenario(7).action()).verdict(),
            Verdict::ProcessRequired(LegalProcess::CourtOrder)
        );
        // Row 8: wiretap order.
        assert_eq!(
            engine.assess(scenario(8).action()).verdict(),
            Verdict::ProcessRequired(LegalProcess::WiretapOrder)
        );
        // Row 18: search warrant.
        assert_eq!(
            engine.assess(scenario(18).action()).verdict(),
            Verdict::ProcessRequired(LegalProcess::SearchWarrant)
        );
    }

    #[test]
    fn compulsion_helpers() {
        let engine = ComplianceEngine::new();
        assert_eq!(
            engine
                .assess(&compel_subscriber_info_from_public_isp())
                .verdict(),
            Verdict::ProcessRequired(LegalProcess::Subpoena)
        );
        assert_eq!(
            engine
                .assess(&compel_unopened_email_from_public_isp())
                .verdict(),
            Verdict::ProcessRequired(LegalProcess::SearchWarrant)
        );
    }

    #[test]
    #[should_panic(expected = "rows 1..=20")]
    fn out_of_range_row_panics() {
        let _ = scenario(21);
    }

    #[test]
    fn scenario_display() {
        let s = scenario(1).to_string();
        assert!(s.contains("#1"));
        assert!(s.contains("No need"));
    }
}
