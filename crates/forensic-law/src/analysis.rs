//! Research-technique feasibility analysis — the paper's §IV, as an API.
//!
//! "When researchers invent a new technique for law enforcement officers,
//! they need to consider whether law enforcement can use the new
//! technique practically and legally." This module classifies a proposed
//! technique the way the paper classifies its two case studies: workable
//! without process (§IV-A), workable with process (§IV-B), workable only
//! as a private search, or unusable — and issues the paper's
//! recommendation for each.

use crate::action::InvestigativeAction;
use crate::assessment::{LegalAssessment, Verdict};
use crate::casebook::CitationId;
use crate::engine::ComplianceEngine;
use crate::process::LegalProcess;
use std::fmt;

/// How a proposed technique can actually be used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feasibility {
    /// Usable directly, ahead of any warrant/court order/subpoena — the
    /// paper's preferred class (§IV-A, §V).
    WorkableWithoutProcess,
    /// Usable once the named process is obtained (§IV-B situation one).
    WorkableWithProcess(LegalProcess),
    /// Only usable when a private party (admin, provider) runs it on
    /// their own systems and reports the fruits (§IV-B situation two).
    PrivateSearchOnly,
    /// Not usable by the proposed actor at all.
    Unusable,
}

impl fmt::Display for Feasibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Feasibility::WorkableWithoutProcess => {
                f.write_str("workable without warrant/court order/subpoena")
            }
            Feasibility::WorkableWithProcess(p) => write!(f, "workable with a {p}"),
            Feasibility::PrivateSearchOnly => f.write_str("workable only as a private search"),
            Feasibility::Unusable => f.write_str("not usable by this actor"),
        }
    }
}

/// A research technique under legal review: how law enforcement would
/// use it, and (optionally) how a private operator would.
#[derive(Debug, Clone)]
pub struct TechniqueProfile {
    name: String,
    law_enforcement_use: InvestigativeAction,
    private_operator_use: Option<InvestigativeAction>,
}

impl TechniqueProfile {
    /// Describes a technique by its law-enforcement usage.
    pub fn new(name: impl Into<String>, law_enforcement_use: InvestigativeAction) -> Self {
        TechniqueProfile {
            name: name.into(),
            law_enforcement_use,
            private_operator_use: None,
        }
    }

    /// Adds the private-operator variant of the same technique (e.g. two
    /// campus administrators on their own gateways).
    #[must_use]
    pub fn with_private_variant(mut self, action: InvestigativeAction) -> Self {
        self.private_operator_use = Some(action);
        self
    }

    /// The technique's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The outcome of the feasibility analysis.
#[derive(Debug, Clone)]
pub struct TechniqueAnalysis {
    name: String,
    feasibility: Feasibility,
    law_enforcement_assessment: LegalAssessment,
    private_assessment: Option<LegalAssessment>,
    recommendation: String,
}

impl TechniqueAnalysis {
    /// The feasibility class.
    pub fn feasibility(&self) -> Feasibility {
        self.feasibility
    }

    /// The engine's assessment of the law-enforcement usage.
    pub fn law_enforcement_assessment(&self) -> &LegalAssessment {
        &self.law_enforcement_assessment
    }

    /// The engine's assessment of the private-operator usage, when
    /// profiled.
    pub fn private_assessment(&self) -> Option<&LegalAssessment> {
        self.private_assessment.as_ref()
    }

    /// The paper-style recommendation.
    pub fn recommendation(&self) -> &str {
        &self.recommendation
    }
}

impl fmt::Display for TechniqueAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "technique: {}", self.name)?;
        writeln!(f, "feasibility: {}", self.feasibility)?;
        write!(f, "recommendation: {}", self.recommendation)
    }
}

/// Analyzes a technique profile.
pub fn analyze(profile: &TechniqueProfile) -> TechniqueAnalysis {
    let engine = ComplianceEngine::new();
    let le = engine.assess(&profile.law_enforcement_use);
    let private = profile
        .private_operator_use
        .as_ref()
        .map(|a| engine.assess(a));

    let feasibility = match le.verdict() {
        Verdict::NoProcessNeeded => Feasibility::WorkableWithoutProcess,
        Verdict::ProcessRequired(p) => Feasibility::WorkableWithProcess(p),
        Verdict::UnlawfulForPrivateActor => match &private {
            Some(pa) if pa.verdict() == Verdict::NoProcessNeeded => Feasibility::PrivateSearchOnly,
            _ => Feasibility::Unusable,
        },
    };

    let recommendation = match feasibility {
        Feasibility::WorkableWithoutProcess => {
            "directly usable in criminal investigations ahead of a warrant/court order/subpoena; \
             ideal for gathering the facts that later applications will rest on"
                .to_string()
        }
        Feasibility::WorkableWithProcess(p) => {
            let private_note = match &private {
                Some(pa) if pa.verdict() == Verdict::NoProcessNeeded => {
                    "; alternatively workable as a private search by operators on their own systems"
                }
                _ => "",
            };
            format!(
                "usable once a {p} issues; given the overhead and reduced budgets, law \
                 enforcement may hesitate to adopt it{private_note}"
            )
        }
        Feasibility::PrivateSearchOnly => {
            "law enforcement cannot run this directly; design for private operators who may \
             lawfully monitor their own systems and report their suspicion"
                .to_string()
        }
        Feasibility::Unusable => {
            "redesign the technique: as profiled it cannot be used lawfully by anyone".to_string()
        }
    };

    TechniqueAnalysis {
        name: profile.name.clone(),
        feasibility,
        law_enforcement_assessment: le,
        private_assessment: private,
        recommendation,
    }
}

/// The paper's §IV-A case study: the OneSwarm timing attack.
pub fn oneswarm_timing_attack_profile() -> TechniqueProfile {
    use crate::actor::Actor;
    use crate::data::{ContentClass, DataLocation, DataSpec, Temporality};
    TechniqueProfile::new(
        "OneSwarm response-delay timing attack (Prusty et al., CCS 2011)",
        InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::RealTime,
                DataLocation::PublicForum,
            ),
        )
        .describe("join the anonymous P2P system, query, and time neighbors' responses")
        .joining_public_protocol()
        .build(),
    )
}

/// The paper's §IV-B case study: the long-PN-code DSSS watermark.
pub fn dsss_watermark_profile() -> TechniqueProfile {
    use crate::actor::Actor;
    use crate::data::{ContentClass, DataLocation, DataSpec, Temporality, TransmissionMedium};
    let le_use = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
        ),
    )
    .describe("modulate the seized server's rate; collect traffic rates at the suspect's ISP")
    .rate_observation_only()
    .build();
    let admin_use = InvestigativeAction::builder(
        Actor::system_administrator(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::InTransit(TransmissionMedium::OwnNetwork),
        ),
    )
    .describe("two campus administrators watermark and observe their own gateways")
    .rate_observation_only()
    .build();
    TechniqueProfile::new(
        "long-PN-code DSSS flow watermark (Huang et al., INFOCOM 2011)",
        le_use,
    )
    .with_private_variant(admin_use)
}

/// The paper's closing recommendation (§V), for inclusion in reports.
pub fn closing_recommendation() -> (&'static str, CitationId) {
    (
        "researchers could focus on crime scene investigations that do not need \
         warrant/court order/subpoena, particularly for traceback related network \
         forensics, so that their research and development can be more easily \
         accepted by law enforcement to generate a larger impact",
        CitationId::WallsInvestigatorCentric,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneswarm_attack_is_workable_without_process() {
        let analysis = analyze(&oneswarm_timing_attack_profile());
        assert_eq!(analysis.feasibility(), Feasibility::WorkableWithoutProcess);
        assert!(analysis.recommendation().contains("ahead of a warrant"));
    }

    #[test]
    fn dsss_watermark_needs_court_order_with_private_variant() {
        let analysis = analyze(&dsss_watermark_profile());
        assert_eq!(
            analysis.feasibility(),
            Feasibility::WorkableWithProcess(LegalProcess::CourtOrder)
        );
        // The paper notes the private-search alternative.
        assert!(analysis.recommendation().contains("private search"));
        let private = analysis.private_assessment().unwrap();
        assert_eq!(private.verdict(), Verdict::NoProcessNeeded);
    }

    #[test]
    fn wiretap_technique_for_private_actor_is_unusable() {
        use crate::actor::Actor;
        use crate::data::{ContentClass, DataLocation, DataSpec, Temporality, TransmissionMedium};
        let profile = TechniqueProfile::new(
            "private wiretapping",
            InvestigativeAction::builder(
                Actor::private_individual(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::RealTime,
                    DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
                ),
            )
            .build(),
        );
        let analysis = analyze(&profile);
        assert_eq!(analysis.feasibility(), Feasibility::Unusable);
        assert!(analysis.recommendation().contains("redesign"));
    }

    #[test]
    fn private_search_only_class_detected() {
        use crate::actor::Actor;
        use crate::data::{ContentClass, DataLocation, DataSpec, Temporality, TransmissionMedium};
        // A full-content monitor: unlawful for a private individual off
        // their own network, but fine for an admin on their own network.
        let profile = TechniqueProfile::new(
            "gateway content monitor",
            InvestigativeAction::builder(
                Actor::private_individual(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::RealTime,
                    DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
                ),
            )
            .build(),
        )
        .with_private_variant(
            InvestigativeAction::builder(
                Actor::system_administrator(),
                DataSpec::new(
                    ContentClass::Content,
                    Temporality::RealTime,
                    DataLocation::InTransit(TransmissionMedium::OwnNetwork),
                ),
            )
            .build(),
        );
        let analysis = analyze(&profile);
        assert_eq!(analysis.feasibility(), Feasibility::PrivateSearchOnly);
    }

    #[test]
    fn display_and_metadata() {
        let analysis = analyze(&oneswarm_timing_attack_profile());
        let text = analysis.to_string();
        assert!(text.contains("OneSwarm"));
        assert!(text.contains("workable without"));
        assert!(!analysis.law_enforcement_assessment().rationale().is_empty());
    }

    #[test]
    fn closing_recommendation_matches_paper() {
        let (text, _cite) = closing_recommendation();
        assert!(text.contains("traceback related network forensics"));
    }

    #[test]
    fn feasibility_display() {
        assert!(Feasibility::WorkableWithoutProcess
            .to_string()
            .contains("without"));
        assert!(Feasibility::WorkableWithProcess(LegalProcess::CourtOrder)
            .to_string()
            .contains("court order"));
        assert!(Feasibility::PrivateSearchOnly
            .to_string()
            .contains("private"));
        assert!(Feasibility::Unusable.to_string().contains("not usable"));
    }
}
