//! Rationale chains: every conclusion the engine reaches is justified by a
//! sequence of steps, each citing authority from the [`casebook`].
//!
//! [`casebook`]: crate::casebook

use crate::casebook::{lookup, CitationId};
use std::fmt;

/// One step in a legal rationale: a proposition plus supporting citations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RationaleStep {
    proposition: String,
    citations: Vec<CitationId>,
}

impl RationaleStep {
    /// Creates a step from a proposition and its supporting citations.
    ///
    /// # Examples
    ///
    /// ```
    /// use forensic_law::rationale::RationaleStep;
    /// use forensic_law::casebook::CitationId;
    ///
    /// let step = RationaleStep::new(
    ///     "a closed phone booth carries a reasonable expectation of privacy",
    ///     [CitationId::KatzVUnitedStates],
    /// );
    /// assert_eq!(step.citations().len(), 1);
    /// ```
    pub fn new(
        proposition: impl Into<String>,
        citations: impl IntoIterator<Item = CitationId>,
    ) -> Self {
        RationaleStep {
            proposition: proposition.into(),
            citations: citations.into_iter().collect(),
        }
    }

    /// The legal proposition asserted by this step.
    pub fn proposition(&self) -> &str {
        &self.proposition
    }

    /// The authorities supporting the proposition.
    pub fn citations(&self) -> &[CitationId] {
        &self.citations
    }
}

impl fmt::Display for RationaleStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.proposition)?;
        if !self.citations.is_empty() {
            write!(f, " [")?;
            for (i, c) in self.citations.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{}", lookup(*c).cite)?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// An ordered chain of rationale steps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Rationale {
    steps: Vec<RationaleStep>,
}

impl Rationale {
    /// Creates an empty rationale.
    pub fn new() -> Self {
        Rationale::default()
    }

    /// Appends a step.
    pub fn push(&mut self, step: RationaleStep) {
        self.steps.push(step);
    }

    /// Appends a step built from parts.
    pub fn add(
        &mut self,
        proposition: impl Into<String>,
        citations: impl IntoIterator<Item = CitationId>,
    ) {
        self.push(RationaleStep::new(proposition, citations));
    }

    /// The steps, in order.
    pub fn steps(&self) -> &[RationaleStep] {
        &self.steps
    }

    /// Whether the rationale has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// All citations appearing anywhere in the chain, in order of first use.
    pub fn cited_authorities(&self) -> Vec<CitationId> {
        let mut seen = Vec::new();
        for s in &self.steps {
            for &c in s.citations() {
                if !seen.contains(&c) {
                    seen.push(c);
                }
            }
        }
        seen
    }

    /// Appends all steps from another rationale.
    pub fn extend_from(&mut self, other: &Rationale) {
        self.steps.extend(other.steps.iter().cloned());
    }
}

impl fmt::Display for Rationale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  {}. {}", i + 1, s)?;
        }
        Ok(())
    }
}

impl FromIterator<RationaleStep> for Rationale {
    fn from_iter<I: IntoIterator<Item = RationaleStep>>(iter: I) -> Self {
        Rationale {
            steps: iter.into_iter().collect(),
        }
    }
}

impl Extend<RationaleStep> for Rationale {
    fn extend<I: IntoIterator<Item = RationaleStep>>(&mut self, iter: I) {
        self.steps.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rationale() {
        let r = Rationale::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.cited_authorities().is_empty());
    }

    #[test]
    fn add_and_enumerate() {
        let mut r = Rationale::new();
        r.add("step one", [CitationId::KatzVUnitedStates]);
        r.add(
            "step two",
            [
                CitationId::KatzVUnitedStates,
                CitationId::KylloVUnitedStates,
            ],
        );
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.cited_authorities(),
            vec![
                CitationId::KatzVUnitedStates,
                CitationId::KylloVUnitedStates
            ]
        );
    }

    #[test]
    fn display_includes_cite() {
        let step = RationaleStep::new("x", [CitationId::SmithVMaryland]);
        assert!(step.to_string().contains("442 U.S. 735"));
    }

    #[test]
    fn display_without_citations_has_no_bracket() {
        let step = RationaleStep::new("bare proposition", []);
        assert!(!step.to_string().contains('['));
    }

    #[test]
    fn from_iterator_and_extend() {
        let r: Rationale = vec![RationaleStep::new("a", []), RationaleStep::new("b", [])]
            .into_iter()
            .collect();
        assert_eq!(r.len(), 2);
        let mut r2 = Rationale::new();
        r2.extend_from(&r);
        r2.extend(vec![RationaleStep::new("c", [])]);
        assert_eq!(r2.len(), 3);
    }

    #[test]
    fn display_numbers_steps() {
        let mut r = Rationale::new();
        r.add("first", []);
        r.add("second", []);
        let out = r.to_string();
        assert!(out.contains("1. first"));
        assert!(out.contains("2. second"));
    }
}
