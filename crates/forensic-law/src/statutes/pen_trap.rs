//! The Pen Register / Trap-and-Trace statute, 18 U.S.C. §§ 3121–3127.
//!
//! "The Pen/Trap statute regulates the collection of addressing and other
//! non-content information such as packet size for wire and electronic
//! communications" (§II-B-2-c). Installation requires a court order
//! (§ 3123) — the paper's Table 1 row 7 ("Need") — subject to the provider
//! exception (§ 3121(b)), user consent, and the § 3125 emergency provision.

use crate::action::InvestigativeAction;
use crate::actor::ActorKind;
use crate::casebook::CitationId;
use crate::data::{ContentClass, DataLocation, TransmissionMedium};
use crate::exceptions::ConsentAuthority;
use crate::process::LegalProcess;
use crate::rationale::Rationale;
use crate::statutes::StatuteRuling;

/// Evaluates the Pen/Trap statute against an action.
///
/// Returns `None` when the statute does not govern. Traffic *rates and
/// volumes* count as non-content signalling information
/// (*United States v. Forrester*: "the total volume of information"), so
/// the §IV-B watermark's rate observation falls under this statute.
pub fn evaluate(action: &InvestigativeAction) -> Option<StatuteRuling> {
    let data = action.data();
    let method = action.method();
    let mut r = Rationale::new();

    let non_content = data.category == ContentClass::NonContentAddressing
        || (data.category == ContentClass::Content && method.rate_observation_only);
    let applies = non_content && data.temporality.is_real_time() && data.location.is_in_transit();
    if !applies {
        return None;
    }

    if method.rate_observation_only {
        r.add(
            "observing only traffic rates and volumes acquires non-content signalling information, regulated as pen/trap data",
            [CitationId::PenTrapStatute, CitationId::UnitedStatesVForrester],
        );
    } else {
        r.add(
            "real-time collection of dialing, routing, and addressing information is regulated by the Pen/Trap statute",
            [CitationId::PenTrapStatute, CitationId::UnitedStatesVForrester],
        );
    }

    // Over-the-air capture: the paper treats passive off-air header
    // collection (WarDriving) as outside the installation requirement —
    // its Table 1 rows 3 and 5 answer "No need (*)".
    if let DataLocation::InTransit(
        TransmissionMedium::WirelessUnencrypted | TransmissionMedium::WirelessEncrypted,
    ) = data.location
    {
        r.add(
            "passively receiving radio-broadcast headers installs no device on any line or facility; the statute's order requirement is not triggered (authors' judgment)",
            [CitationId::Section2511PublicAccessException],
        );
        return Some(StatuteRuling::new(
            CitationId::PenTrapStatute,
            LegalProcess::None,
            r,
        ));
    }

    // Provider exception, § 3121(b)(1)-(2): operation, maintenance,
    // protection of the provider's own service.
    let is_own_network_operator = matches!(
        action.actor().kind(),
        ActorKind::SystemAdministrator | ActorKind::ServiceProvider
    ) && !action.actor().is_government_directed()
        && data.location == DataLocation::InTransit(TransmissionMedium::OwnNetwork);
    if is_own_network_operator {
        r.add(
            "a provider may record addressing information on its own network in the course of operating and protecting the service",
            [CitationId::PenTrapStatute],
        );
        return Some(StatuteRuling::new(
            CitationId::PenTrapStatute,
            LegalProcess::None,
            r,
        ));
    }

    // User consent, § 3121(b)(3).
    if let Some(consent) = action.consent() {
        if matches!(
            consent.authority(),
            ConsentAuthority::OnePartyToCommunication { .. } | ConsentAuthority::TargetSelf
        ) && consent.is_effective()
        {
            r.push(consent.rationale());
            return Some(StatuteRuling::new(
                CitationId::PenTrapStatute,
                LegalProcess::None,
                r,
            ));
        }
    }

    // Victim-authorized monitoring on the victim's own system also covers
    // the addressing information of the trespasser's connections.
    if action
        .circumstances()
        .victim_authorized_trespasser_monitoring
        && data.location == DataLocation::InTransit(TransmissionMedium::OwnNetwork)
    {
        r.add(
            "the victim's authorization covers recording the trespasser's connection metadata on the victim's system",
            [CitationId::Section2511TrespasserException],
        );
        return Some(StatuteRuling::new(
            CitationId::PenTrapStatute,
            LegalProcess::None,
            r,
        ));
    }

    // Emergency installation, § 3125.
    if let Some(emergency) = action.emergency_pen_trap() {
        r.push(emergency.rationale());
        if emergency.is_valid() {
            return Some(StatuteRuling::new(
                CitationId::PenTrapStatute,
                LegalProcess::None,
                r,
            ));
        }
    }

    r.add(
        "installation and use of a pen register or trap-and-trace device requires a court order",
        [CitationId::PenTrapStatute, CitationId::Section3121c],
    );
    Some(StatuteRuling::new(
        CitationId::PenTrapStatute,
        LegalProcess::CourtOrder,
        r,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Actor;
    use crate::data::{DataSpec, Temporality};
    use crate::exceptions::{Consent, EmergencyPenTrap, EmergencyPenTrapGround};

    fn headers(medium: TransmissionMedium) -> DataSpec {
        DataSpec::new(
            ContentClass::NonContentAddressing,
            Temporality::RealTime,
            DataLocation::InTransit(medium),
        )
    }

    #[test]
    fn isp_header_logging_needs_court_order() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            headers(TransmissionMedium::PublicWiredInternet),
        )
        .build();
        assert_eq!(
            evaluate(&a).unwrap().required_process(),
            LegalProcess::CourtOrder
        );
    }

    #[test]
    fn content_capture_is_outside_pen_trap() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::RealTime,
                DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
            ),
        )
        .build();
        assert!(evaluate(&a).is_none());
    }

    #[test]
    fn rate_observation_of_content_flow_is_pen_trap() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::RealTime,
                DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
            ),
        )
        .rate_observation_only()
        .build();
        let ruling = evaluate(&a).unwrap();
        assert_eq!(ruling.required_process(), LegalProcess::CourtOrder);
        assert!(ruling
            .rationale()
            .cited_authorities()
            .contains(&CitationId::UnitedStatesVForrester));
    }

    #[test]
    fn stored_records_are_outside_pen_trap() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::NonContentAddressing,
                Temporality::stored_opened(),
                DataLocation::ProviderStorage,
            ),
        )
        .build();
        assert!(evaluate(&a).is_none());
    }

    #[test]
    fn wardriving_headers_need_no_order() {
        for m in [
            TransmissionMedium::WirelessUnencrypted,
            TransmissionMedium::WirelessEncrypted,
        ] {
            let a = InvestigativeAction::builder(Actor::law_enforcement(), headers(m)).build();
            assert_eq!(evaluate(&a).unwrap().required_process(), LegalProcess::None);
        }
    }

    #[test]
    fn campus_it_provider_exception() {
        let a = InvestigativeAction::builder(
            Actor::system_administrator(),
            headers(TransmissionMedium::OwnNetwork),
        )
        .build();
        assert_eq!(evaluate(&a).unwrap().required_process(), LegalProcess::None);
    }

    #[test]
    fn user_consent_waives() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            headers(TransmissionMedium::PublicWiredInternet),
        )
        .with_consent(Consent::by(ConsentAuthority::TargetSelf))
        .build();
        assert_eq!(evaluate(&a).unwrap().required_process(), LegalProcess::None);
    }

    #[test]
    fn valid_emergency_waives_invalid_does_not() {
        let base = headers(TransmissionMedium::PublicWiredInternet);
        let valid = InvestigativeAction::builder(Actor::law_enforcement(), base)
            .with_emergency_pen_trap(EmergencyPenTrap::new(
                EmergencyPenTrapGround::OngoingProtectedComputerAttack,
                true,
            ))
            .build();
        assert_eq!(
            evaluate(&valid).unwrap().required_process(),
            LegalProcess::None
        );
        let invalid = InvestigativeAction::builder(Actor::law_enforcement(), base)
            .with_emergency_pen_trap(EmergencyPenTrap::new(
                EmergencyPenTrapGround::OrganizedCrime,
                false,
            ))
            .build();
        assert_eq!(
            evaluate(&invalid).unwrap().required_process(),
            LegalProcess::CourtOrder
        );
    }

    #[test]
    fn trespasser_monitoring_covers_metadata() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            headers(TransmissionMedium::OwnNetwork),
        )
        .victim_authorized_trespasser_monitoring()
        .build();
        assert_eq!(evaluate(&a).unwrap().required_process(), LegalProcess::None);
    }
}
