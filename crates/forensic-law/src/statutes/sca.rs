//! The Stored Communications Act, 18 U.S.C. §§ 2701–2712.
//!
//! The SCA "protects the privacy right for customers and subscribers of
//! Internet service providers and regulates the government access to
//! stored content and non-content records held by ISPs" (§II-B-2-b).
//! § 2703 lays out the paper's compelled-disclosure ladder: "A search
//! warrant can disclose everything while a subpoena can only get the basic
//! subscriber information" (§III-A-3).

use crate::action::InvestigativeAction;
use crate::casebook::CitationId;
use crate::data::DataLocation;
use crate::exceptions::ConsentAuthority;
use crate::process::LegalProcess;
use crate::provider::CompelledInfo;
use crate::rationale::Rationale;
use crate::statutes::StatuteRuling;

/// The § 2703 process required to compel a category of information.
///
/// # Examples
///
/// ```
/// use forensic_law::provider::CompelledInfo;
/// use forensic_law::process::LegalProcess;
/// use forensic_law::statutes::sca::process_for;
///
/// assert_eq!(process_for(CompelledInfo::BasicSubscriberInfo), LegalProcess::Subpoena);
/// assert_eq!(process_for(CompelledInfo::UnopenedContent), LegalProcess::SearchWarrant);
/// ```
pub fn process_for(info: CompelledInfo) -> LegalProcess {
    match info {
        CompelledInfo::BasicSubscriberInfo => LegalProcess::Subpoena,
        CompelledInfo::TransactionalRecords => LegalProcess::CourtOrder,
        CompelledInfo::UnopenedContent => LegalProcess::SearchWarrant,
        CompelledInfo::OpenedContent => LegalProcess::CourtOrder,
    }
}

/// Evaluates the SCA against an action.
///
/// Governs when the action compels a provider under § 2703, or accesses
/// records in provider storage. Returns `None` when the provider is
/// neither ECS nor RCS with respect to the data ("the SCA no longer
/// regulates access ... governed solely by the Fourth Amendment",
/// §III-A-3) or the action does not touch provider-held data.
pub fn evaluate(action: &InvestigativeAction) -> Option<StatuteRuling> {
    let mut r = Rationale::new();

    if let Some(compulsion) = action.compulsion() {
        let role = compulsion.lifecycle.sca_role();
        if !role.sca_applies() {
            r.add(
                "the provider is neither an ECS nor an RCS with respect to this data; the SCA drops out and the Fourth Amendment alone governs",
                [CitationId::AndersenConsultingVUop, CitationId::StoredCommunicationsAct],
            );
            // Not governed by the SCA.
            return None;
        }
        r.add(
            format!(
                "the provider is an {role} with respect to the demanded {}; § 2703 supplies the compelled-disclosure ladder",
                compulsion.info
            ),
            [CitationId::Section2703, CitationId::SenateReport99_541],
        );
        let process = process_for(compulsion.info);
        r.add(
            format!(
                "compelling {} requires at least a {process}",
                compulsion.info
            ),
            [CitationId::Section2703],
        );
        return Some(StatuteRuling::new(
            CitationId::StoredCommunicationsAct,
            process,
            r,
        ));
    }

    // Non-compelled access to provider-held data (e.g. monitoring or
    // copying records at a provider). Voluntary disclosure by a *public*
    // provider to the government is restrained by § 2702 unless an
    // exception (user consent, provider self-protection, emergency)
    // applies.
    if action.data().location == DataLocation::ProviderStorage {
        if let Some(consent) = action.consent() {
            let authorized = matches!(
                consent.authority(),
                ConsentAuthority::TargetSelf | ConsentAuthority::NetworkOwnerOrAdmin
            ) && consent.is_effective();
            if authorized {
                r.push(consent.rationale());
                r.add(
                    "§ 2702 permits disclosure with the consent of the user or where the provider's terms of service establish authority",
                    [CitationId::Section2702, CitationId::UnitedStatesVYoung2003],
                );
                return Some(StatuteRuling::new(
                    CitationId::StoredCommunicationsAct,
                    LegalProcess::None,
                    r,
                ));
            }
        }
        let info = classify_stored(action);
        let process = process_for(info);
        r.add(
            format!("government access to {info} held by a provider is regulated by §§ 2702–2703"),
            [CitationId::Section2702, CitationId::Section2703],
        );
        return Some(StatuteRuling::new(
            CitationId::StoredCommunicationsAct,
            process,
            r,
        ));
    }

    None
}

/// Maps a provider-storage data spec to its § 2703 category.
fn classify_stored(action: &InvestigativeAction) -> CompelledInfo {
    use crate::data::{ContentClass, Temporality};
    match (action.data().category, action.data().temporality) {
        (ContentClass::Content, Temporality::Stored { opened: false }) => {
            CompelledInfo::UnopenedContent
        }
        (ContentClass::Content, _) => CompelledInfo::OpenedContent,
        (ContentClass::SubscriberRecords, _) => CompelledInfo::BasicSubscriberInfo,
        (ContentClass::TransactionalRecords, _) | (ContentClass::NonContentAddressing, _) => {
            CompelledInfo::TransactionalRecords
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ProviderCompulsion;
    use crate::actor::Actor;
    use crate::data::{ContentClass, DataSpec, Temporality};
    use crate::exceptions::Consent;
    use crate::provider::{MessageLifecycle, MessageStage, ProviderPublicity};

    fn stored_at_provider(c: ContentClass, t: Temporality) -> DataSpec {
        DataSpec::new(c, t, DataLocation::ProviderStorage)
    }

    #[test]
    fn ladder_matches_paper() {
        assert_eq!(
            process_for(CompelledInfo::BasicSubscriberInfo),
            LegalProcess::Subpoena
        );
        assert_eq!(
            process_for(CompelledInfo::TransactionalRecords),
            LegalProcess::CourtOrder
        );
        assert_eq!(
            process_for(CompelledInfo::UnopenedContent),
            LegalProcess::SearchWarrant
        );
        assert_eq!(
            process_for(CompelledInfo::OpenedContent),
            LegalProcess::CourtOrder
        );
    }

    #[test]
    fn compelling_subscriber_info_needs_subpoena() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            stored_at_provider(
                ContentClass::SubscriberRecords,
                Temporality::stored_opened(),
            ),
        )
        .compelling_provider(ProviderCompulsion {
            lifecycle: MessageLifecycle::new(
                ProviderPublicity::Public,
                MessageStage::AwaitingRetrieval,
            ),
            info: CompelledInfo::BasicSubscriberInfo,
        })
        .build();
        let ruling = evaluate(&a).unwrap();
        assert_eq!(ruling.statute(), CitationId::StoredCommunicationsAct);
        assert_eq!(ruling.required_process(), LegalProcess::Subpoena);
    }

    #[test]
    fn compelling_unopened_content_needs_warrant() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            stored_at_provider(ContentClass::Content, Temporality::stored_unopened()),
        )
        .compelling_provider(ProviderCompulsion {
            lifecycle: MessageLifecycle::new(
                ProviderPublicity::Public,
                MessageStage::AwaitingRetrieval,
            ),
            info: CompelledInfo::UnopenedContent,
        })
        .build();
        assert_eq!(
            evaluate(&a).unwrap().required_process(),
            LegalProcess::SearchWarrant
        );
    }

    #[test]
    fn non_public_opened_content_drops_out_of_sca() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            stored_at_provider(ContentClass::Content, Temporality::stored_opened()),
        )
        .compelling_provider(ProviderCompulsion {
            lifecycle: MessageLifecycle::new(
                ProviderPublicity::NonPublic,
                MessageStage::OpenedInStorage,
            ),
            info: CompelledInfo::OpenedContent,
        })
        .build();
        assert!(evaluate(&a).is_none());
    }

    #[test]
    fn uncompelled_provider_storage_access_is_regulated() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            stored_at_provider(ContentClass::Content, Temporality::stored_unopened()),
        )
        .build();
        assert_eq!(
            evaluate(&a).unwrap().required_process(),
            LegalProcess::SearchWarrant
        );
    }

    #[test]
    fn user_consent_waives_sca() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            stored_at_provider(ContentClass::Content, Temporality::stored_opened()),
        )
        .with_consent(Consent::by(ConsentAuthority::TargetSelf))
        .build();
        assert_eq!(evaluate(&a).unwrap().required_process(), LegalProcess::None);
    }

    #[test]
    fn in_transit_data_is_outside_sca() {
        use crate::data::TransmissionMedium;
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::RealTime,
                DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
            ),
        )
        .build();
        assert!(evaluate(&a).is_none());
    }

    #[test]
    fn stored_transactional_records_need_court_order() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            stored_at_provider(
                ContentClass::TransactionalRecords,
                Temporality::stored_opened(),
            ),
        )
        .build();
        assert_eq!(
            evaluate(&a).unwrap().required_process(),
            LegalProcess::CourtOrder
        );
    }
}
