//! The three statutory regimes the paper is organized around (§II-B-2):
//! the Wiretap Act (Title III), the Pen/Trap statute, and the Stored
//! Communications Act. Each evaluator inspects an [`InvestigativeAction`]
//! and, when its statute governs, returns a [`StatuteRuling`] stating the
//! process the statute demands (possibly [`LegalProcess::None`] when an
//! intra-statutory exception applies).
//!
//! [`InvestigativeAction`]: crate::action::InvestigativeAction

pub mod pen_trap;
pub mod sca;
pub mod wiretap;

use crate::casebook::CitationId;
use crate::process::LegalProcess;
use crate::rationale::Rationale;
use std::fmt;

/// The outcome of evaluating one statute against an action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatuteRuling {
    statute: CitationId,
    required_process: LegalProcess,
    rationale: Rationale,
}

impl StatuteRuling {
    /// Creates a ruling under `statute` demanding `required_process`.
    pub fn new(statute: CitationId, required_process: LegalProcess, rationale: Rationale) -> Self {
        StatuteRuling {
            statute,
            required_process,
            rationale,
        }
    }

    /// The statute that produced this ruling.
    pub fn statute(&self) -> CitationId {
        self.statute
    }

    /// The process the statute requires ([`LegalProcess::None`] when an
    /// intra-statutory exception excuses process).
    pub fn required_process(&self) -> LegalProcess {
        self.required_process
    }

    /// The reasoning.
    pub fn rationale(&self) -> &Rationale {
        &self.rationale
    }
}

impl fmt::Display for StatuteRuling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} requires {}", self.statute, self.required_process)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ruling_accessors() {
        let r = StatuteRuling::new(
            CitationId::WiretapAct,
            LegalProcess::WiretapOrder,
            Rationale::new(),
        );
        assert_eq!(r.statute(), CitationId::WiretapAct);
        assert_eq!(r.required_process(), LegalProcess::WiretapOrder);
        assert!(r.rationale().is_empty());
        assert!(r.to_string().contains("wiretap order"));
    }
}
