//! The Wiretap Act (Title III), 18 U.S.C. §§ 2510–2522.
//!
//! "Roughly speaking, it prohibits unauthorized government access to
//! private electronic communications in real time" (§II-B-2-a) — and in
//! fact restrains *any person*, not just the government. The "intercept"
//! element carries a contemporaneity requirement (§III-A-3): acquisition
//! must be contemporaneous with transmission, else the SCA governs.

use crate::action::InvestigativeAction;
use crate::actor::ActorKind;
use crate::casebook::CitationId;
use crate::data::{ContentClass, DataLocation, TransmissionMedium};
use crate::exceptions::ConsentAuthority;
use crate::process::LegalProcess;
use crate::rationale::Rationale;
use crate::statutes::StatuteRuling;

/// Evaluates Title III against an action.
///
/// Returns `None` when the statute does not govern (no real-time content
/// acquisition). Returns a ruling with [`LegalProcess::None`] when an
/// intra-statutory exception authorizes the interception.
pub fn evaluate(action: &InvestigativeAction) -> Option<StatuteRuling> {
    let data = action.data();
    let method = action.method();
    let mut r = Rationale::new();

    // Threshold: is there an "interception" — real-time acquisition of
    // communication *content*?
    let acquires_content = data.category == ContentClass::Content && !method.rate_observation_only;
    let contemporaneous = data.temporality.is_real_time();
    let in_transit = data.location.is_in_transit() || method.operates_intercepting_infrastructure;

    if !acquires_content {
        return None;
    }
    if !contemporaneous {
        r.add(
            "acquisition from storage is not contemporaneous with transmission; Title III does not apply",
            [
                CitationId::SteveJacksonGames,
                CitationId::KonopVHawaiianAirlines,
                CitationId::UnitedStatesVSteiger,
            ],
        );
        return None;
    }
    if !in_transit {
        return None;
    }

    r.add(
        "real-time acquisition of communication content is an interception governed by Title III",
        [CitationId::WiretapAct],
    );

    // § 2511(2)(g)(i): communications readily accessible to the general
    // public. The paper applies it to public chat rooms, bulletin boards,
    // newsgroups — i.e. where the investigator is a legitimate protocol
    // participant.
    if method.joins_public_protocol || data.location == DataLocation::PublicForum {
        r.add(
            "the communication is configured to be readily accessible to the general public; any person may intercept it",
            [CitationId::Section2511PublicAccessException, CitationId::SenateReport99_541],
        );
        return Some(StatuteRuling::new(
            CitationId::WiretapAct,
            LegalProcess::None,
            r,
        ));
    }

    // One-party consent, § 2511(2)(c)-(d).
    if let Some(consent) = action.consent() {
        if matches!(
            consent.authority(),
            ConsentAuthority::OnePartyToCommunication { .. }
        ) {
            r.push(consent.rationale());
            if consent.is_effective() {
                return Some(StatuteRuling::new(
                    CitationId::WiretapAct,
                    LegalProcess::None,
                    r,
                ));
            }
        }
    }

    // Computer-trespasser exception, § 2511(2)(i): the victim of an attack
    // may authorize persons acting under color of law to monitor the
    // trespasser on the victim's system.
    if action
        .circumstances()
        .victim_authorized_trespasser_monitoring
        && data.location == DataLocation::InTransit(TransmissionMedium::OwnNetwork)
    {
        r.add(
            "the intrusion victim authorized monitoring of the trespasser's communications on the victim's own system",
            [
                CitationId::Section2511TrespasserException,
                CitationId::UnitedStatesVVillanueva,
            ],
        );
        return Some(StatuteRuling::new(
            CitationId::WiretapAct,
            LegalProcess::None,
            r,
        ));
    }

    // Provider exception, § 2511(2)(a)(i): operators may intercept on
    // their own networks in the normal course of protecting their rights
    // and property — the campus-IT scenes (Table 1 rows 1–2) and the
    // two-administrators private search of §IV-B.
    let is_own_network_operator = matches!(
        action.actor().kind(),
        ActorKind::SystemAdministrator | ActorKind::ServiceProvider
    ) && !action.actor().is_government_directed()
        && data.location == DataLocation::InTransit(TransmissionMedium::OwnNetwork);
    if is_own_network_operator {
        r.add(
            "a provider may monitor its own network in the normal course of protecting its rights and property",
            [CitationId::WiretapAct, CitationId::Section2702],
        );
        return Some(StatuteRuling::new(
            CitationId::WiretapAct,
            LegalProcess::None,
            r,
        ));
    }

    r.add(
        "no Title III exception applies; a wiretap order is required to intercept content",
        [CitationId::WiretapAct],
    );
    Some(StatuteRuling::new(
        CitationId::WiretapAct,
        LegalProcess::WiretapOrder,
        r,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Actor;
    use crate::data::{DataSpec, Temporality};
    use crate::exceptions::Consent;

    fn content_in_transit(medium: TransmissionMedium) -> DataSpec {
        DataSpec::new(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::InTransit(medium),
        )
    }

    #[test]
    fn interception_requires_wiretap_order() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            content_in_transit(TransmissionMedium::PublicWiredInternet),
        )
        .build();
        let ruling = evaluate(&a).expect("Title III governs");
        assert_eq!(ruling.required_process(), LegalProcess::WiretapOrder);
    }

    #[test]
    fn headers_are_outside_title_iii() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::NonContentAddressing,
                Temporality::RealTime,
                DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
            ),
        )
        .build();
        assert!(evaluate(&a).is_none());
    }

    #[test]
    fn stored_acquisition_is_outside_title_iii() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_unopened(),
                DataLocation::ProviderStorage,
            ),
        )
        .build();
        assert!(evaluate(&a).is_none());
    }

    #[test]
    fn rate_observation_is_not_content_acquisition() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            content_in_transit(TransmissionMedium::PublicWiredInternet),
        )
        .rate_observation_only()
        .build();
        assert!(evaluate(&a).is_none());
    }

    #[test]
    fn public_protocol_participation_is_excepted() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            content_in_transit(TransmissionMedium::PublicWiredInternet),
        )
        .joining_public_protocol()
        .build();
        let ruling = evaluate(&a).unwrap();
        assert_eq!(ruling.required_process(), LegalProcess::None);
        assert!(ruling
            .rationale()
            .cited_authorities()
            .contains(&CitationId::Section2511PublicAccessException));
    }

    #[test]
    fn one_party_consent_waives() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            content_in_transit(TransmissionMedium::PublicWiredInternet),
        )
        .with_consent(Consent::by(ConsentAuthority::OnePartyToCommunication {
            all_party_state: false,
        }))
        .build();
        assert_eq!(evaluate(&a).unwrap().required_process(), LegalProcess::None);
    }

    #[test]
    fn all_party_state_defeats_one_party_consent() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            content_in_transit(TransmissionMedium::PublicWiredInternet),
        )
        .with_consent(Consent::by(ConsentAuthority::OnePartyToCommunication {
            all_party_state: true,
        }))
        .build();
        assert_eq!(
            evaluate(&a).unwrap().required_process(),
            LegalProcess::WiretapOrder
        );
    }

    #[test]
    fn trespasser_exception_waives_on_victim_system() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            content_in_transit(TransmissionMedium::OwnNetwork),
        )
        .victim_authorized_trespasser_monitoring()
        .build();
        assert_eq!(evaluate(&a).unwrap().required_process(), LegalProcess::None);
    }

    #[test]
    fn trespasser_exception_does_not_reach_other_networks() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            content_in_transit(TransmissionMedium::PublicWiredInternet),
        )
        .victim_authorized_trespasser_monitoring()
        .build();
        assert_eq!(
            evaluate(&a).unwrap().required_process(),
            LegalProcess::WiretapOrder
        );
    }

    #[test]
    fn provider_exception_for_sysadmin_on_own_network() {
        let a = InvestigativeAction::builder(
            Actor::system_administrator(),
            content_in_transit(TransmissionMedium::OwnNetwork),
        )
        .build();
        assert_eq!(evaluate(&a).unwrap().required_process(), LegalProcess::None);
    }

    #[test]
    fn government_directed_admin_loses_provider_exception() {
        let a = InvestigativeAction::builder(
            Actor::system_administrator().directed_by_government(),
            content_in_transit(TransmissionMedium::OwnNetwork),
        )
        .build();
        assert_eq!(
            evaluate(&a).unwrap().required_process(),
            LegalProcess::WiretapOrder
        );
    }

    #[test]
    fn running_a_tor_relay_is_interception() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            content_in_transit(TransmissionMedium::PublicWiredInternet),
        )
        .operating_intercepting_infrastructure()
        .build();
        assert_eq!(
            evaluate(&a).unwrap().required_process(),
            LegalProcess::WiretapOrder
        );
    }
}
