//! Textual scenario specifications for batch assessment and the wire
//! protocol.
//!
//! The `lexforensica assess-batch` subcommand — and the `wire` crate's
//! request payload — read one JSON object per line (JSONL). Each object
//! describes an investigative action with the same vocabulary the
//! `assess` subcommand's flags use:
//!
//! ```json
//! {"actor": "leo", "data": "headers", "when": "realtime", "where": "isp"}
//! {"actor": "leo", "data": "content", "when": "stored-unopened", "where": "provider", "flags": ["as-provider"]}
//! ```
//!
//! Recognized keys (all optional; defaults mirror `assess`):
//!
//! | key        | values                                                                        | default    |
//! |------------|-------------------------------------------------------------------------------|------------|
//! | `actor`    | `leo`, `admin`, `private`, `provider`, `employer`                             | `leo`      |
//! | `directed` | `true`/`false` — actor acts at government direction                            | `false`    |
//! | `data`     | `content`, `headers`, `subscriber`, `records`                                  | `content`  |
//! | `when`     | `realtime`, `stored`, `stored-unopened`                                        | `realtime` |
//! | `where`    | `isp`, `own-network`, `wireless`, `wireless-enc`, `device`, `provider`, `public`, `media`, `remote` | `isp` |
//! | `flags`    | array drawn from `public-protocol`, `rate-only`, `hash-search`, `consent`, `exigent`, `probation`, `plain-view`, `as-provider` | `[]` |
//! | `describe` | free text, echoed in the output line                                           | derived    |
//!
//! Unknown keys and unknown values are errors — a batch run reports them
//! with the offending line number and continues with the remaining lines.
//!
//! The parser is a deliberately small, std-only JSON subset reader
//! (objects, arrays, strings, booleans, numbers, null); the workspace
//! builds offline with no serialization dependency.

use crate::prelude::*;

/// Why a specification line was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

impl SpecError {
    /// A rejection with the given reason. Public so downstream parsers
    /// built on [`json`] (the planner's problem files) report their own
    /// defects in the same error shape.
    pub fn new(msg: impl Into<String>) -> Self {
        SpecError(msg.into())
    }
}

/// One scenario line, as written: raw vocabulary strings plus flags.
///
/// Build the corresponding engine input with [`ActionSpec::to_action`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionSpec {
    /// Who acts (`leo`, `admin`, `private`, `provider`, `employer`).
    pub actor: String,
    /// Whether the actor acts at government direction.
    pub directed: bool,
    /// What is collected (`content`, `headers`, `subscriber`, `records`).
    pub data: String,
    /// When (`realtime`, `stored`, `stored-unopened`).
    pub when: String,
    /// Where (`isp`, `device`, `provider`, …).
    pub location: String,
    /// Method/circumstance flags (`public-protocol`, `rate-only`, …).
    pub flags: Vec<String>,
    /// Optional free-text description.
    pub describe: Option<String>,
}

impl Default for ActionSpec {
    fn default() -> Self {
        ActionSpec {
            actor: "leo".into(),
            directed: false,
            data: "content".into(),
            when: "realtime".into(),
            location: "isp".into(),
            flags: Vec::new(),
            describe: None,
        }
    }
}

impl ActionSpec {
    /// Parses one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for syntactically invalid JSON, a non-object
    /// top level, unknown keys, or wrongly typed values. Vocabulary
    /// validity (e.g. an unknown actor name) is checked later, by
    /// [`ActionSpec::to_action`].
    pub fn from_json_line(line: &str) -> Result<Self, SpecError> {
        Self::from_json_value(json::parse(line)?)
    }

    /// Parses an already-decoded JSON value — the entry point for
    /// callers (like the planner's problem files) that embed a spec
    /// object *inside* a larger JSON document rather than one per line.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for a non-object value, unknown keys, or
    /// wrongly typed values, exactly as [`ActionSpec::from_json_line`].
    pub fn from_json_value(value: json::Value) -> Result<Self, SpecError> {
        let json::Value::Object(pairs) = value else {
            return Err(SpecError::new("expected a JSON object"));
        };
        let mut spec = ActionSpec::default();
        for (key, value) in pairs {
            match key.as_str() {
                "actor" => spec.actor = expect_string(&key, value)?,
                "directed" => spec.directed = expect_bool(&key, value)?,
                "data" => spec.data = expect_string(&key, value)?,
                "when" => spec.when = expect_string(&key, value)?,
                "where" => spec.location = expect_string(&key, value)?,
                "describe" => spec.describe = Some(expect_string(&key, value)?),
                "flags" => {
                    let json::Value::Array(items) = value else {
                        return Err(SpecError::new("\"flags\" must be an array of strings"));
                    };
                    for item in items {
                        spec.flags.push(expect_string("flags", item)?);
                    }
                }
                other => return Err(SpecError::new(format!("unknown key \"{other}\""))),
            }
        }
        Ok(spec)
    }

    /// A one-line human summary, used to label batch output.
    pub fn summary(&self) -> String {
        if let Some(text) = &self.describe {
            return text.clone();
        }
        let mut s = format!(
            "{} collects {} {} at {}",
            self.actor, self.data, self.when, self.location
        );
        if !self.flags.is_empty() {
            s.push_str(&format!(" [{}]", self.flags.join(", ")));
        }
        s
    }

    /// Builds the engine input this specification describes.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] naming the field when any vocabulary word is
    /// unrecognized.
    pub fn to_action(&self) -> Result<InvestigativeAction, SpecError> {
        let actor = parse_actor(&self.actor, self.directed)
            .ok_or_else(|| SpecError::new(format!("unknown actor \"{}\"", self.actor)))?;
        let category = parse_category(&self.data)
            .ok_or_else(|| SpecError::new(format!("unknown data class \"{}\"", self.data)))?;
        let temporality = parse_temporality(&self.when)
            .ok_or_else(|| SpecError::new(format!("unknown temporality \"{}\"", self.when)))?;
        let location = parse_location(&self.location)
            .ok_or_else(|| SpecError::new(format!("unknown location \"{}\"", self.location)))?;

        let mut builder =
            InvestigativeAction::builder(actor, DataSpec::new(category, temporality, location));
        builder.describe(self.summary());
        for flag in &self.flags {
            match flag.as_str() {
                "public-protocol" => builder.joining_public_protocol(),
                "rate-only" => builder.rate_observation_only(),
                "hash-search" => builder.exhaustive_forensic_search(),
                "consent" => builder.with_consent(Consent::by(ConsentAuthority::TargetSelf)),
                "exigent" => builder.with_exigency(Exigency::ImminentEvidenceDestruction),
                "probation" => builder.target_on_probation(),
                "plain-view" => builder.plain_view(),
                "as-provider" => builder.target_operates_as_provider(),
                other => return Err(SpecError::new(format!("unknown flag \"{other}\""))),
            };
        }
        Ok(builder.build())
    }
}

/// One well-formed JSONL scenario line, ready to assess.
#[derive(Debug, Clone)]
pub struct SpecLine {
    /// 1-based input line number.
    pub line: usize,
    /// The human-readable summary ([`ActionSpec::summary`]).
    pub summary: String,
    /// The engine input the line describes.
    pub action: InvestigativeAction,
}

/// One rejected JSONL line, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineError {
    /// 1-based input line number.
    pub line: usize,
    /// Why the line was rejected.
    pub error: SpecError,
}

impl LineError {
    /// This rejection in the shared located-error shape.
    pub fn located(&self) -> LocatedError {
        LocatedError::at_line(self.line, &self.error)
    }
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.located().fmt(f)
    }
}

impl std::error::Error for LineError {}

/// A defect at a known position in a structured input, in the one
/// report shape every batch surface uses: `"<place>: <reason>"`.
///
/// `assess-batch` reports malformed JSONL lines as `line 7: …`; the
/// `replay` subcommand reports journal defects as `record 1042: …` or
/// `seg-….lxj offset 4242: …`. Sharing the constructor (rather than
/// each command formatting its own) is what keeps the two surfaces
/// diffable and greppable the same way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocatedError {
    /// Where the defect is — `line 7`, `record 1042`,
    /// `seg-….lxj offset 4242`.
    pub place: String,
    /// What is wrong there.
    pub reason: String,
}

impl LocatedError {
    /// A defect at an arbitrary place (`record 1042`, `… offset 17`).
    pub fn new(place: impl std::fmt::Display, reason: impl std::fmt::Display) -> LocatedError {
        LocatedError {
            place: place.to_string(),
            reason: reason.to_string(),
        }
    }

    /// A defect on a 1-based input line.
    pub fn at_line(line: usize, reason: impl std::fmt::Display) -> LocatedError {
        LocatedError::new(format_args!("line {line}"), reason)
    }
}

impl std::fmt::Display for LocatedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.place, self.reason)
    }
}

impl std::error::Error for LocatedError {}

/// The result of parsing a whole JSONL document: the well-formed lines
/// plus every rejection, each tagged with its line number.
#[derive(Debug, Clone, Default)]
pub struct JsonlBatch {
    /// Well-formed lines, in input order.
    pub lines: Vec<SpecLine>,
    /// Malformed lines, in input order.
    pub errors: Vec<LineError>,
}

impl JsonlBatch {
    /// Whether every non-blank line parsed.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Parses a JSONL document from raw bytes, reporting every malformed
/// line (bad UTF-8, truncated JSON, unknown keys or vocabulary) with its
/// 1-based line number instead of stopping at the first failure. Blank
/// lines are skipped; a trailing `\r` (CRLF input) is tolerated.
///
/// Taking bytes rather than `&str` is deliberate: a single bad-UTF-8
/// line in a large batch file must cost one [`LineError`], not the whole
/// document.
pub fn parse_jsonl(input: &[u8]) -> JsonlBatch {
    let mut batch = JsonlBatch::default();
    for (idx, raw) in input.split(|b| *b == b'\n').enumerate() {
        let line = idx + 1;
        let raw = raw.strip_suffix(b"\r").unwrap_or(raw);
        if raw.iter().all(|b| b.is_ascii_whitespace()) {
            continue;
        }
        let result = std::str::from_utf8(raw)
            .map_err(|e| SpecError::new(format!("invalid UTF-8: {e}")))
            .and_then(ActionSpec::from_json_line)
            .and_then(|spec| {
                let action = spec.to_action()?;
                Ok((spec, action))
            });
        match result {
            Ok((spec, action)) => batch.lines.push(SpecLine {
                line,
                summary: spec.summary(),
                action,
            }),
            Err(error) => batch.errors.push(LineError { line, error }),
        }
    }
    batch
}

fn expect_string(key: &str, value: json::Value) -> Result<String, SpecError> {
    match value {
        json::Value::String(s) => Ok(s),
        _ => Err(SpecError::new(format!("\"{key}\" must be a string"))),
    }
}

fn expect_bool(key: &str, value: json::Value) -> Result<bool, SpecError> {
    match value {
        json::Value::Bool(b) => Ok(b),
        _ => Err(SpecError::new(format!("\"{key}\" must be a boolean"))),
    }
}

/// Parses an actor word from the shared CLI/JSONL vocabulary.
pub fn parse_actor(value: &str, directed: bool) -> Option<Actor> {
    let base = match value {
        "leo" => Actor::law_enforcement(),
        "admin" => Actor::system_administrator(),
        "private" => Actor::private_individual(),
        "provider" => Actor::new(ActorKind::ServiceProvider),
        "employer" => Actor::new(ActorKind::GovernmentEmployer),
        _ => return None,
    };
    Some(if directed {
        base.directed_by_government()
    } else {
        base
    })
}

/// Parses a data-class word from the shared CLI/JSONL vocabulary.
pub fn parse_category(value: &str) -> Option<ContentClass> {
    Some(match value {
        "content" => ContentClass::Content,
        "headers" => ContentClass::NonContentAddressing,
        "subscriber" => ContentClass::SubscriberRecords,
        "records" => ContentClass::TransactionalRecords,
        _ => return None,
    })
}

/// Parses a temporality word from the shared CLI/JSONL vocabulary.
pub fn parse_temporality(value: &str) -> Option<Temporality> {
    Some(match value {
        "realtime" => Temporality::RealTime,
        "stored" => Temporality::stored_opened(),
        "stored-unopened" => Temporality::stored_unopened(),
        _ => return None,
    })
}

/// Parses a location word from the shared CLI/JSONL vocabulary.
pub fn parse_location(value: &str) -> Option<DataLocation> {
    Some(match value {
        "isp" => DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
        "own-network" => DataLocation::InTransit(TransmissionMedium::OwnNetwork),
        "wireless" => DataLocation::InTransit(TransmissionMedium::WirelessUnencrypted),
        "wireless-enc" => DataLocation::InTransit(TransmissionMedium::WirelessEncrypted),
        "device" => DataLocation::SuspectDevice,
        "provider" => DataLocation::ProviderStorage,
        "public" => DataLocation::PublicForum,
        "media" => DataLocation::LawfullyObtainedMedia,
        "remote" => DataLocation::RemoteComputer,
        _ => return None,
    })
}

/// A minimal JSON reader: just enough for one flat spec object per
/// line, exposed so callers with richer documents (the planner's
/// problem files nest a spec object under a `"goal"` key) can decode
/// once and hand sub-values to [`ActionSpec::from_json_value`].
pub mod json {
    use super::SpecError;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number.
        Number(f64),
        /// A string, with escapes resolved.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, in source order.
        Object(Vec<(String, Value)>),
    }

    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Value, SpecError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(SpecError::new(format!(
                "unexpected trailing input at byte {pos}"
            )));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, SpecError> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(SpecError::new("unexpected end of input")),
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
            Some(c) => Err(SpecError::new(format!(
                "unexpected character '{}' at byte {pos}",
                *c as char
            ))),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        word: &str,
        value: Value,
    ) -> Result<Value, SpecError> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(SpecError::new(format!("invalid literal at byte {pos}")))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, SpecError> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < bytes.len()
            && (bytes[*pos].is_ascii_digit()
                || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| SpecError::new(format!("invalid number at byte {start}")))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, SpecError> {
        debug_assert_eq!(bytes[*pos], b'"');
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(SpecError::new("unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| SpecError::new("invalid \\u escape"))?;
                            out.push(hex);
                            *pos += 4;
                        }
                        _ => return Err(SpecError::new("invalid escape")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| SpecError::new("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    *pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, SpecError> {
        *pos += 1; // consume '['
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(SpecError::new("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, SpecError> {
        *pos += 1; // consume '{'
        let mut pairs = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b'"') {
                return Err(SpecError::new("expected a string key"));
            }
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b':') {
                return Err(SpecError::new("expected ':' after key"));
            }
            *pos += 1;
            let value = parse_value(bytes, pos)?;
            pairs.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(SpecError::new("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_assess_subcommand() {
        let spec = ActionSpec::from_json_line("{}").unwrap();
        assert_eq!(spec, ActionSpec::default());
        let action = spec.to_action().unwrap();
        assert_eq!(action.data().category, ContentClass::Content);
        assert_eq!(action.data().temporality, Temporality::RealTime);
    }

    #[test]
    fn full_line_round_trips() {
        let spec = ActionSpec::from_json_line(
            r#"{"actor": "admin", "data": "headers", "when": "stored", "where": "own-network",
                "flags": ["rate-only", "probation"], "describe": "ops review"}"#,
        )
        .unwrap();
        assert_eq!(spec.actor, "admin");
        assert_eq!(spec.flags, vec!["rate-only", "probation"]);
        assert_eq!(spec.summary(), "ops review");
        let action = spec.to_action().unwrap();
        assert!(action.method().rate_observation_only);
        assert!(action.circumstances().target_on_probation);
    }

    #[test]
    fn unknown_key_is_an_error() {
        let err = ActionSpec::from_json_line(r#"{"acter": "leo"}"#).unwrap_err();
        assert!(err.to_string().contains("acter"));
    }

    #[test]
    fn unknown_vocabulary_is_an_error_at_build_time() {
        let spec = ActionSpec::from_json_line(r#"{"actor": "martian"}"#).unwrap();
        let err = spec.to_action().unwrap_err();
        assert!(err.to_string().contains("martian"));
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(ActionSpec::from_json_line("{not json").is_err());
        assert!(ActionSpec::from_json_line(r#"["array"]"#).is_err());
        assert!(ActionSpec::from_json_line(r#"{"actor": "leo"} extra"#).is_err());
    }

    #[test]
    fn directed_modifier_applies() {
        let spec = ActionSpec::from_json_line(r#"{"actor": "private", "directed": true}"#).unwrap();
        let action = spec.to_action().unwrap();
        assert!(action.actor().is_government_actor());
    }

    #[test]
    fn string_escapes_resolve() {
        let spec = ActionSpec::from_json_line(r#"{"describe": "tab\there \"quoted\" A"}"#).unwrap();
        assert_eq!(spec.describe.as_deref(), Some("tab\there \"quoted\" A"));
    }

    #[test]
    fn jsonl_reports_line_numbers_for_every_failure_kind() {
        let mut input = Vec::new();
        input.extend_from_slice(b"{\"actor\": \"leo\", \"data\": \"headers\"}\n"); // 1: ok
        input.extend_from_slice(b"\n"); // 2: blank, skipped
        input.extend_from_slice(b"{\"actor\": \"leo\"\n"); // 3: truncated JSON
        input.extend_from_slice(b"{\"actor\": \"l\xff\xfeo\"}\n"); // 4: bad UTF-8
        input.extend_from_slice(b"{\"acter\": \"leo\"}\n"); // 5: unknown field
        input.extend_from_slice(b"{\"where\": \"device\"}\r\n"); // 6: ok, CRLF
        let batch = parse_jsonl(&input);
        assert!(!batch.is_clean());
        assert_eq!(
            batch.lines.iter().map(|l| l.line).collect::<Vec<_>>(),
            vec![1, 6]
        );
        let errors: Vec<(usize, String)> = batch
            .errors
            .iter()
            .map(|e| (e.line, e.to_string()))
            .collect();
        assert_eq!(errors.len(), 3);
        assert!(errors[0].1.starts_with("line 3:"), "{errors:?}");
        assert!(errors[1].1.starts_with("line 4:"), "{errors:?}");
        assert!(errors[1].1.contains("invalid UTF-8"), "{errors:?}");
        assert!(errors[2].1.starts_with("line 5:"), "{errors:?}");
        assert!(errors[2].1.contains("acter"), "{errors:?}");
    }

    #[test]
    fn jsonl_truncated_string_is_rejected_with_its_line() {
        let batch = parse_jsonl(b"{\"describe\": \"cut off");
        assert!(batch.lines.is_empty());
        assert_eq!(batch.errors.len(), 1);
        assert_eq!(batch.errors[0].line, 1);
        assert!(
            batch.errors[0].error.to_string().contains("unterminated"),
            "{}",
            batch.errors[0]
        );
    }

    #[test]
    fn jsonl_unknown_vocabulary_is_a_line_error_not_a_panic() {
        let batch = parse_jsonl(b"{\"where\": \"narnia\"}\n{}\n");
        assert_eq!(batch.lines.len(), 1);
        assert_eq!(batch.errors.len(), 1);
        assert!(batch.errors[0].to_string().contains("narnia"));
    }

    #[test]
    fn jsonl_of_blank_lines_is_clean_and_empty() {
        let batch = parse_jsonl(b"\n  \n\r\n");
        assert!(batch.is_clean());
        assert!(batch.lines.is_empty());
    }

    #[test]
    fn plain_view_flag_marks_the_discovery() {
        let spec = ActionSpec::from_json_line(
            r#"{"actor": "leo", "data": "content", "when": "stored", "where": "device",
                "flags": ["plain-view"]}"#,
        )
        .unwrap();
        let action = spec.to_action().unwrap();
        assert!(action.circumstances().plain_view_during_lawful_presence);
    }

    #[test]
    fn from_json_value_accepts_a_nested_object() {
        let doc = json::parse(r#"{"goal": {"actor": "leo", "data": "subscriber"}}"#).unwrap();
        let json::Value::Object(pairs) = doc else {
            panic!("expected object");
        };
        let (_, inner) = pairs.into_iter().next().unwrap();
        let spec = ActionSpec::from_json_value(inner).unwrap();
        assert_eq!(spec.data, "subscriber");
        assert!(ActionSpec::from_json_value(json::Value::Null).is_err());
    }

    #[test]
    fn summary_without_description_lists_fields_and_flags() {
        let spec = ActionSpec::from_json_line(r#"{"flags": ["rate-only"]}"#).unwrap();
        assert_eq!(
            spec.summary(),
            "leo collects content realtime at isp [rate-only]"
        );
    }
}
