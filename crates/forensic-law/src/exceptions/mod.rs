//! Exceptions that make an otherwise process-requiring investigation lawful
//! without a warrant/court order/subpoena (§III-B of the paper).
//!
//! Each exception is modelled as data on the [`InvestigativeAction`] plus a
//! rule in the engine that, when the exception's conditions are met, waives
//! one or more governing authorities and records a rationale step.
//!
//! [`InvestigativeAction`]: crate::action::InvestigativeAction

pub mod consent;

pub use consent::{Consent, ConsentAuthority};

use crate::casebook::CitationId;
use crate::rationale::RationaleStep;
use std::fmt;

/// Exigent circumstances permitting immediate warrantless action
/// (§III-B-b, *Mincey v. Arizona*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exigency {
    /// Evidence may be destroyed immediately or in a very short time —
    /// remote wipe, auto-delete, dying batteries (§III-B-b item i).
    ImminentEvidenceDestruction,
    /// The police or the public is in danger (item ii).
    DangerToSafety,
    /// Hot pursuit of a suspect (item iii).
    HotPursuit,
    /// The suspect may escape before a warrant can be secured (item iv).
    SuspectEscape,
}

impl Exigency {
    /// Rationale step for invoking this exigency.
    pub fn rationale(self) -> RationaleStep {
        let (text, extra) = match self {
            Exigency::ImminentEvidenceDestruction => (
                "imminent destruction of digital evidence excuses the warrant requirement",
                vec![
                    CitationId::UnitedStatesVRomeroGarcia,
                    CitationId::UnitedStatesVYoung2006,
                ],
            ),
            Exigency::DangerToSafety => (
                "danger to the police or public excuses the warrant requirement",
                vec![],
            ),
            Exigency::HotPursuit => (
                "hot pursuit of the suspect excuses the warrant requirement",
                vec![],
            ),
            Exigency::SuspectEscape => (
                "risk the suspect escapes before a warrant issues excuses the warrant requirement",
                vec![],
            ),
        };
        let mut cites = vec![CitationId::MinceyVArizona];
        cites.extend(extra);
        RationaleStep::new(text, cites)
    }
}

impl fmt::Display for Exigency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Exigency::ImminentEvidenceDestruction => "imminent evidence destruction",
            Exigency::DangerToSafety => "danger to safety",
            Exigency::HotPursuit => "hot pursuit",
            Exigency::SuspectEscape => "suspect escape risk",
        };
        f.write_str(s)
    }
}

/// Grounds for an *emergency pen/trap* without a court order
/// (18 U.S.C. § 3125(a)(1); §III-B-d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmergencyPenTrapGround {
    /// Immediate danger of death or serious bodily injury.
    DangerOfDeathOrInjury,
    /// Conspiratorial activities characteristic of organized crime.
    OrganizedCrime,
    /// An immediate threat to a national security interest.
    NationalSecurityThreat,
    /// An ongoing attack on a protected computer punishable by more than a
    /// year of imprisonment.
    OngoingProtectedComputerAttack,
}

impl fmt::Display for EmergencyPenTrapGround {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EmergencyPenTrapGround::DangerOfDeathOrInjury => "danger of death or serious injury",
            EmergencyPenTrapGround::OrganizedCrime => "organized-crime activity",
            EmergencyPenTrapGround::NationalSecurityThreat => "national-security threat",
            EmergencyPenTrapGround::OngoingProtectedComputerAttack => {
                "ongoing attack on a protected computer"
            }
        };
        f.write_str(s)
    }
}

/// An emergency pen/trap authorization, which requires approval "at least
/// at the Deputy Assistant Attorney General level" (§III-B-d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EmergencyPenTrap {
    ground: EmergencyPenTrapGround,
    high_level_approval: bool,
}

impl EmergencyPenTrap {
    /// Creates an emergency pen/trap claim on the given ground.
    pub fn new(ground: EmergencyPenTrapGround, high_level_approval: bool) -> Self {
        EmergencyPenTrap {
            ground,
            high_level_approval,
        }
    }

    /// The statutory ground claimed.
    pub fn ground(self) -> EmergencyPenTrapGround {
        self.ground
    }

    /// Whether the claim is statutorily valid (ground + approval level).
    pub fn is_valid(self) -> bool {
        self.high_level_approval
    }

    /// Rationale step for this authorization.
    pub fn rationale(self) -> RationaleStep {
        let text = if self.is_valid() {
            format!(
                "emergency pen/trap installation justified by {} with required high-level approval",
                self.ground
            )
        } else {
            format!(
                "emergency pen/trap claim ({}) fails for lack of required high-level approval",
                self.ground
            )
        };
        RationaleStep::new(text, [CitationId::Section3125Emergency])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exigency_rationales_cite_mincey() {
        for e in [
            Exigency::ImminentEvidenceDestruction,
            Exigency::DangerToSafety,
            Exigency::HotPursuit,
            Exigency::SuspectEscape,
        ] {
            assert!(e
                .rationale()
                .citations()
                .contains(&CitationId::MinceyVArizona));
        }
    }

    #[test]
    fn destruction_exigency_cites_digital_cases() {
        let r = Exigency::ImminentEvidenceDestruction.rationale();
        assert!(r
            .citations()
            .contains(&CitationId::UnitedStatesVRomeroGarcia));
    }

    #[test]
    fn emergency_pen_trap_needs_approval() {
        let ok =
            EmergencyPenTrap::new(EmergencyPenTrapGround::OngoingProtectedComputerAttack, true);
        assert!(ok.is_valid());
        let no = EmergencyPenTrap::new(EmergencyPenTrapGround::OrganizedCrime, false);
        assert!(!no.is_valid());
        assert!(no.rationale().proposition().contains("fails"));
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!Exigency::HotPursuit.to_string().is_empty());
        assert!(!EmergencyPenTrapGround::NationalSecurityThreat
            .to_string()
            .is_empty());
    }
}
