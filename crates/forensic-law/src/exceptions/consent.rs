//! The consent exception — "a powerful exception to both constitutional
//! and statutory laws" (§III-B-c).
//!
//! Consent validity turns on *who* consents (common authority), *scope*
//! (the search must not exceed the consent), and *revocation* (the search
//! must cease when consent is revoked — though a mirror image made before
//! revocation survives, *United States v. Megahed*).

use crate::casebook::CitationId;
use crate::rationale::RationaleStep;
use std::fmt;

/// Who granted consent, capturing the paper's enumerated consent kinds
/// (§III-B-c items i–vi).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsentAuthority {
    /// The target of the search consented themselves.
    TargetSelf,
    /// A co-user of shared equipment with common authority; the flag
    /// records whether the searched area is within the space the consenter
    /// controls (item i; *Matlock*, *Trulock v. Freeh*).
    CoUserCommonAuthority {
        /// Whether the searched space is one the consenter controls (not,
        /// e.g., another user's password-protected files).
        covers_searched_space: bool,
    },
    /// Either spouse for the couple's shared property (item ii).
    Spouse,
    /// Parent of a child under 18 (item iii).
    ParentOfMinor,
    /// Parent of an adult child — "may or may not", fact-dependent
    /// (item iii; *Durham*).
    ParentOfAdult {
        /// Whether the facts (control of the premises/equipment) support
        /// the parent's authority.
        facts_support_authority: bool,
    },
    /// A private employer or owner over workplace computers (item iv;
    /// *Ziegler*).
    PrivateEmployer,
    /// A government employer, valid only for work-related searches that
    /// are justified at inception and permissible in scope (item iv;
    /// *O'Connor v. Ortega*).
    GovernmentEmployer {
        /// Whether the search is work-related, justified at inception, and
        /// permissible in scope.
        work_related_and_reasonable: bool,
    },
    /// A network owner/operator/sysadmin with authority over the account,
    /// possibly confirmed by terms of service (item v).
    NetworkOwnerOrAdmin,
    /// One party to the communication consents to interception (item vi;
    /// § 2511(2)(c)-(d); *Cassiere*). The flag records an all-party-consent
    /// state statute making one-party consent insufficient.
    OnePartyToCommunication {
        /// Whether state law requires all parties to consent.
        all_party_state: bool,
    },
}

impl fmt::Display for ConsentAuthority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConsentAuthority::TargetSelf => "the target personally",
            ConsentAuthority::CoUserCommonAuthority { .. } => "a co-user with common authority",
            ConsentAuthority::Spouse => "a spouse",
            ConsentAuthority::ParentOfMinor => "a parent of a minor",
            ConsentAuthority::ParentOfAdult { .. } => "a parent of an adult child",
            ConsentAuthority::PrivateEmployer => "a private employer",
            ConsentAuthority::GovernmentEmployer { .. } => "a government employer",
            ConsentAuthority::NetworkOwnerOrAdmin => "the network owner or administrator",
            ConsentAuthority::OnePartyToCommunication { .. } => "one party to the communication",
        };
        f.write_str(s)
    }
}

/// A concrete grant of consent with scope and revocation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Consent {
    authority: ConsentAuthority,
    scope_exceeded: bool,
    revoked: bool,
}

impl Consent {
    /// A valid-looking grant of consent by `authority`, within scope and
    /// unrevoked.
    pub fn by(authority: ConsentAuthority) -> Self {
        Consent {
            authority,
            scope_exceeded: false,
            revoked: false,
        }
    }

    /// Marks the search as having exceeded the consented scope.
    #[must_use]
    pub fn with_scope_exceeded(mut self) -> Self {
        self.scope_exceeded = true;
        self
    }

    /// Marks the consent as revoked before or during the search.
    #[must_use]
    pub fn revoked(mut self) -> Self {
        self.revoked = true;
        self
    }

    /// Who consented.
    pub fn authority(self) -> ConsentAuthority {
        self.authority
    }

    /// Whether the search exceeded the consented scope.
    pub fn scope_was_exceeded(self) -> bool {
        self.scope_exceeded
    }

    /// Whether the consent was revoked before or during the search.
    pub fn is_revoked(self) -> bool {
        self.revoked
    }

    /// Whether the grantor actually had authority to consent to *this*
    /// search.
    pub fn grantor_has_authority(self) -> bool {
        match self.authority {
            ConsentAuthority::TargetSelf
            | ConsentAuthority::Spouse
            | ConsentAuthority::ParentOfMinor
            | ConsentAuthority::PrivateEmployer
            | ConsentAuthority::NetworkOwnerOrAdmin => true,
            ConsentAuthority::CoUserCommonAuthority {
                covers_searched_space,
            } => covers_searched_space,
            ConsentAuthority::ParentOfAdult {
                facts_support_authority,
            } => facts_support_authority,
            ConsentAuthority::GovernmentEmployer {
                work_related_and_reasonable,
            } => work_related_and_reasonable,
            ConsentAuthority::OnePartyToCommunication { all_party_state } => !all_party_state,
        }
    }

    /// Whether the consent validates the search: authorized grantor,
    /// within scope, and not revoked.
    pub fn is_effective(self) -> bool {
        self.grantor_has_authority() && !self.scope_exceeded && !self.revoked
    }

    /// Rationale step explaining the consent determination.
    pub fn rationale(self) -> RationaleStep {
        let cites = self.supporting_citations();
        let text = if self.is_effective() {
            format!(
                "voluntary consent by {} with authority validates the warrantless search",
                self.authority
            )
        } else if !self.grantor_has_authority() {
            format!(
                "{} lacked authority to consent to this search",
                self.authority
            )
        } else if self.scope_exceeded {
            "the search exceeded the scope of the consent".to_string()
        } else {
            "consent was revoked; the search had to cease".to_string()
        };
        RationaleStep::new(text, cites)
    }

    fn supporting_citations(self) -> Vec<CitationId> {
        match self.authority {
            ConsentAuthority::TargetSelf => vec![CitationId::DojSearchSeizureManual],
            ConsentAuthority::CoUserCommonAuthority { .. } => vec![
                CitationId::UnitedStatesVMatlock,
                CitationId::UnitedStatesVSmith,
                CitationId::TrulockVFreeh,
            ],
            ConsentAuthority::Spouse => vec![CitationId::TrulockVFreeh],
            ConsentAuthority::ParentOfMinor => vec![CitationId::UnitedStatesVLavin],
            ConsentAuthority::ParentOfAdult { .. } => vec![CitationId::UnitedStatesVDurham],
            ConsentAuthority::PrivateEmployer => vec![CitationId::UnitedStatesVZiegler],
            ConsentAuthority::GovernmentEmployer { .. } => vec![CitationId::OConnorVOrtega],
            ConsentAuthority::NetworkOwnerOrAdmin => {
                vec![CitationId::UnitedStatesVYoung2003, CitationId::Section2702]
            }
            ConsentAuthority::OnePartyToCommunication { .. } => {
                vec![CitationId::UnitedStatesVCassiere]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_self_consent_is_effective() {
        assert!(Consent::by(ConsentAuthority::TargetSelf).is_effective());
    }

    #[test]
    fn revocation_defeats_consent() {
        let c = Consent::by(ConsentAuthority::TargetSelf).revoked();
        assert!(!c.is_effective());
        assert!(c.rationale().proposition().contains("revoked"));
    }

    #[test]
    fn scope_excess_defeats_consent() {
        let c = Consent::by(ConsentAuthority::Spouse).with_scope_exceeded();
        assert!(!c.is_effective());
        assert!(c.rationale().proposition().contains("scope"));
    }

    #[test]
    fn co_user_limited_to_controlled_space() {
        let within = Consent::by(ConsentAuthority::CoUserCommonAuthority {
            covers_searched_space: true,
        });
        assert!(within.is_effective());
        let outside = Consent::by(ConsentAuthority::CoUserCommonAuthority {
            covers_searched_space: false,
        });
        assert!(!outside.is_effective());
    }

    #[test]
    fn parent_of_adult_is_fact_dependent() {
        assert!(Consent::by(ConsentAuthority::ParentOfAdult {
            facts_support_authority: true
        })
        .is_effective());
        assert!(!Consent::by(ConsentAuthority::ParentOfAdult {
            facts_support_authority: false
        })
        .is_effective());
    }

    #[test]
    fn government_employer_needs_work_related_search() {
        assert!(Consent::by(ConsentAuthority::GovernmentEmployer {
            work_related_and_reasonable: true
        })
        .is_effective());
        assert!(!Consent::by(ConsentAuthority::GovernmentEmployer {
            work_related_and_reasonable: false
        })
        .is_effective());
    }

    #[test]
    fn one_party_consent_defeated_by_all_party_state() {
        assert!(Consent::by(ConsentAuthority::OnePartyToCommunication {
            all_party_state: false
        })
        .is_effective());
        assert!(!Consent::by(ConsentAuthority::OnePartyToCommunication {
            all_party_state: true
        })
        .is_effective());
    }

    #[test]
    fn rationale_cites_matlock_for_co_user() {
        let c = Consent::by(ConsentAuthority::CoUserCommonAuthority {
            covers_searched_space: true,
        });
        assert!(c
            .rationale()
            .citations()
            .contains(&CitationId::UnitedStatesVMatlock));
    }

    #[test]
    fn minor_parent_consent_effective() {
        assert!(Consent::by(ConsentAuthority::ParentOfMinor).is_effective());
    }
}
