//! # forensic-law
//!
//! An executable model of the U.S. legal constraints on digital forensic
//! investigations, reproducing the framework of *"When Digital Forensic
//! Research Meets Laws"* (ICDCS 2012 workshops).
//!
//! The crate answers the paper's central question for a machine-readable
//! description of an investigative action: **does law enforcement need a
//! warrant, court order, or subpoena to do this — and which one?** Every
//! answer carries a rationale chain citing the constitutional provisions,
//! statutes, and cases the paper relies on.
//!
//! ## Architecture
//!
//! * [`action`] — [`InvestigativeAction`](action::InvestigativeAction):
//!   who collects what, where, how, with what consent/exigency in play.
//! * [`privacy`] — the reasonable-expectation-of-privacy calculus
//!   (*Katz*, exposure, third-party doctrine, *Kyllo*).
//! * [`statutes`] — the Wiretap Act, Pen/Trap statute, and Stored
//!   Communications Act evaluators.
//! * [`exceptions`] — consent, exigent circumstances, emergency pen/trap.
//! * [`engine`] — [`ComplianceEngine`](engine::ComplianceEngine), folding
//!   all of the above into a [`Verdict`](assessment::Verdict).
//! * [`factkey`] — [`FactKey`](factkey::FactKey), the canonical hashable
//!   projection of an action onto exactly the facts the engine reads.
//! * [`batch`] — [`VerdictCache`](batch::VerdictCache) and
//!   [`BatchAssessor`](batch::BatchAssessor): memoized, multi-threaded
//!   assessment for high-volume workloads.
//! * [`process`] — the subpoena < court order < search warrant < wiretap
//!   order ladder and its factual standards.
//! * [`provenance`] — [`Provenance`](provenance::Provenance): the ordered
//!   rule firings behind each verdict, the machine-readable audit trail
//!   serialized by `--explain` and the wire protocol's explain field.
//! * [`probable_cause`] — the §III-A-1 probable-cause establishment paths.
//! * [`suppression`] — the exclusionary rule over an evidence-derivation
//!   DAG ([`Docket`](suppression::Docket)).
//! * [`scenarios`] — the paper's Table 1 as twenty ready-made scenarios.
//! * [`casebook`] — the ~90 authorities the paper cites, as typed data.
//!
//! ## Quick start
//!
//! ```
//! use forensic_law::prelude::*;
//!
//! let engine = ComplianceEngine::new();
//!
//! // May an officer log full packets at an ISP without process?
//! let action = InvestigativeAction::builder(
//!     Actor::law_enforcement(),
//!     DataSpec::new(
//!         ContentClass::Content,
//!         Temporality::RealTime,
//!         DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
//!     ),
//! )
//! .describe("full packet capture at an ISP")
//! .build();
//!
//! let assessment = engine.assess(&action);
//! assert_eq!(
//!     assessment.verdict(),
//!     Verdict::ProcessRequired(LegalProcess::WiretapOrder),
//! );
//! println!("{assessment}");
//! ```
//!
//! ## Reproducing Table 1
//!
//! ```
//! use forensic_law::prelude::*;
//! use forensic_law::scenarios::table1;
//!
//! let engine = ComplianceEngine::new();
//! for row in table1() {
//!     let verdict = engine.assess(row.action()).verdict();
//!     assert_eq!(verdict.needs_process(), row.paper_verdict().needs_process);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod action;
pub mod actor;
pub mod analysis;
pub mod assessment;
pub mod attribution;
pub mod batch;
pub mod casebook;
pub mod data;
pub mod disclosure;
pub mod engine;
pub mod exceptions;
pub mod factkey;
pub mod privacy;
pub mod probable_cause;
pub mod process;
pub mod provenance;
pub mod provider;
pub mod rationale;
pub mod scenarios;
pub mod spec;
pub mod statutes;
pub mod suppression;
pub mod warrant;

/// Commonly used items, importable with `use forensic_law::prelude::*`.
pub mod prelude {
    pub use crate::action::{InvestigativeAction, ProviderCompulsion};
    pub use crate::actor::{Actor, ActorKind};
    pub use crate::assessment::{Confidence, LegalAssessment, Verdict};
    pub use crate::batch::{BatchAssessor, BatchReport, CacheStats, VerdictCache};
    pub use crate::data::{ContentClass, DataLocation, DataSpec, Temporality, TransmissionMedium};
    pub use crate::engine::ComplianceEngine;
    pub use crate::exceptions::{Consent, ConsentAuthority, Exigency};
    pub use crate::factkey::FactKey;
    pub use crate::process::{FactualStandard, LegalProcess};
    pub use crate::provenance::{Provenance, RuleFiring};
    pub use crate::provider::{CompelledInfo, MessageLifecycle, ProviderPublicity, ScaRole};
    pub use crate::suppression::{Admissibility, Docket};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let _ = ComplianceEngine::new();
        let _ = LegalProcess::Subpoena;
        let _ = Docket::new();
    }
}
