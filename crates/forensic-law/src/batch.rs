//! Batch assessment: a sharded verdict cache and a multi-threaded
//! assessor for high-volume workloads.
//!
//! The paper's framework is consulted once per investigative action, but
//! realistic workloads (sweeping a capture archive, replaying an evidence
//! docket, regression-testing a policy change) ask the same legal question
//! many thousands of times with only a handful of distinct fact patterns.
//! Because [`ComplianceEngine::assess`] is a pure function of the
//! [`FactKey`] projection, its output can be memoized and the workload
//! fanned across threads without any change in answers:
//!
//! * [`VerdictCache`] — a sharded, thread-safe map from [`FactKey`] to
//!   `Arc<LegalAssessment>` with hit/miss counters ([`CacheStats`]).
//! * [`BatchAssessor`] — fans a slice of actions across a scoped
//!   `std::thread` pool, routing every assessment through a shared cache
//!   and returning results in input order with a [`BatchReport`].
//!
//! Both are std-only; the cache uses `RwLock`-guarded `HashMap` shards so
//! concurrent hits never contend on a single lock.
//!
//! # Examples
//!
//! ```
//! use forensic_law::batch::BatchAssessor;
//! use forensic_law::scenarios::table1;
//!
//! let actions: Vec<_> = table1().iter().map(|s| s.action().clone()).collect();
//! let assessor = BatchAssessor::new();
//! let (verdicts, report) = assessor.assess_all_with_report(&actions);
//! assert_eq!(verdicts.len(), actions.len());
//! assert_eq!(report.actions, 20);
//! ```

use crate::action::InvestigativeAction;
use crate::assessment::LegalAssessment;
use crate::engine::ComplianceEngine;
use crate::factkey::FactKey;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Default number of shards in a [`VerdictCache`].
const DEFAULT_SHARDS: usize = 16;

/// Fibonacci-style multiplier for mixing packed key bits.
const KEY_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// A single-multiply hasher for [`FactKey`]s.
///
/// The key is already one packed `u64` with every fact at a fixed offset,
/// so a Fibonacci multiply diffuses it plenty for table indexing; the
/// general SipHash default would dominate the cache's hit path.
#[derive(Debug, Default)]
pub struct FactKeyHasher(u64);

impl Hasher for FactKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Only reached for non-FactKey keys; fold bytes in u64 chunks.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(29) ^ n).wrapping_mul(KEY_MIX);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type Shard = HashMap<FactKey, Arc<LegalAssessment>, BuildHasherDefault<FactKeyHasher>>;

/// Snapshot of a [`VerdictCache`]'s observability counters.
///
/// `hits + misses` equals the number of lookups served. A *miss* is a
/// lookup that had to run the engine; concurrent threads racing on the
/// same fresh key may each record a miss (last insert wins, and all
/// results are identical by [`FactKey`] soundness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the engine.
    pub misses: u64,
    /// Distinct fact keys currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache, in `0.0..=1.0`
    /// (`0.0` when no lookups have happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} entries ({:.1}% hit rate)",
            self.hits,
            self.misses,
            self.entries,
            self.hit_rate() * 100.0
        )
    }
}

/// A sharded, thread-safe memo table from [`FactKey`] to
/// [`LegalAssessment`].
///
/// Safe to share across threads behind an `Arc`; reads on distinct shards
/// never contend, and repeated hits on one shard share a read lock.
/// Soundness rests on the engine being a pure function of the fact key —
/// see the [`factkey`](crate::factkey) module docs.
pub struct VerdictCache {
    shards: Box<[RwLock<Shard>]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl fmt::Debug for VerdictCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerdictCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for VerdictCache {
    fn default() -> Self {
        VerdictCache::new()
    }
}

impl VerdictCache {
    /// Creates a cache with the default shard count.
    pub fn new() -> Self {
        VerdictCache::with_shards(DEFAULT_SHARDS)
    }

    /// Creates a cache with `shards` shards (clamped to at least one).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        VerdictCache {
            shards: (0..shards)
                .map(|_| RwLock::new(Shard::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &FactKey) -> &RwLock<Shard> {
        // Route on the *top* bits of the mixed key so shard choice stays
        // independent of the table index bits HashMap takes from the low
        // end of the same multiply.
        let mixed = key.bits().wrapping_mul(KEY_MIX);
        &self.shards[(mixed >> 32) as usize % self.shards.len()]
    }

    /// Folds externally served (worker-local) hits into the counters so
    /// [`CacheStats`] reflects every engine run avoided.
    pub(crate) fn add_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Looks up `key` without running the engine.
    pub fn get(&self, key: &FactKey) -> Option<Arc<LegalAssessment>> {
        let found = self
            .shard(key)
            .read()
            .expect("cache lock")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Assesses `action` through the cache: returns the memoized
    /// assessment for its fact key, running `engine` only on a miss.
    ///
    /// The engine runs *outside* any lock, so a slow assessment never
    /// blocks hits on the same shard.
    pub fn assess(
        &self,
        engine: &ComplianceEngine,
        action: &InvestigativeAction,
    ) -> Arc<LegalAssessment> {
        let key = FactKey::of(action);
        if let Some(found) = self.get(&key) {
            return found;
        }
        let fresh = Arc::new(engine.assess(action));
        let mut shard = self.shard(&key).write().expect("cache lock");
        // A racing thread may have inserted first; keep whichever entry
        // landed (both are identical by FactKey soundness).
        shard.entry(key).or_insert_with(|| Arc::clone(&fresh));
        fresh
    }

    /// Number of distinct fact keys resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache lock").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries; counters are preserved.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.write().expect("cache lock").clear();
        }
    }

    /// Snapshots the observability counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

/// What a [`BatchAssessor`] run observed.
#[derive(Debug, Clone, Copy)]
pub struct BatchReport {
    /// Actions assessed.
    pub actions: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time for the batch.
    pub elapsed: Duration,
    /// Cache activity attributable to this batch (delta of the shared
    /// cache's counters across the run).
    pub cache: CacheStats,
}

impl BatchReport {
    /// Batch throughput in actions per wall-clock second
    /// (`f64::INFINITY` for a zero-duration batch).
    pub fn actions_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.actions as f64 / secs
        }
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} actions on {} threads in {:.1?} ({:.0} actions/s); cache: {}",
            self.actions,
            self.threads,
            self.elapsed,
            self.actions_per_second(),
            self.cache
        )
    }
}

/// Fans batches of actions across a scoped thread pool, memoizing through
/// a shared [`VerdictCache`].
///
/// Results are returned in input order. Every answer is identical to a
/// fresh [`ComplianceEngine::assess`] call on the same action — the pool
/// and cache change only the cost, never the verdict.
#[derive(Debug)]
pub struct BatchAssessor {
    engine: ComplianceEngine,
    cache: Arc<VerdictCache>,
    threads: usize,
}

impl Default for BatchAssessor {
    fn default() -> Self {
        BatchAssessor::new()
    }
}

impl BatchAssessor {
    /// Creates an assessor with a fresh cache and one worker per
    /// available core.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchAssessor {
            engine: ComplianceEngine::new(),
            cache: Arc::new(VerdictCache::new()),
            threads,
        }
    }

    /// Uses exactly `threads` workers (clamped to at least one).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Routes assessments through `cache` instead of a private one, so
    /// several assessors (or an investigation workflow) can share warmed
    /// entries.
    pub fn sharing_cache(mut self, cache: Arc<VerdictCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The cache this assessor routes through.
    pub fn cache(&self) -> &Arc<VerdictCache> {
        &self.cache
    }

    /// Assesses every action, in input order.
    pub fn assess_all(&self, actions: &[InvestigativeAction]) -> Vec<Arc<LegalAssessment>> {
        self.assess_all_with_report(actions).0
    }

    /// Assesses every action, in input order, and reports batch metrics.
    pub fn assess_all_with_report(
        &self,
        actions: &[InvestigativeAction],
    ) -> (Vec<Arc<LegalAssessment>>, BatchReport) {
        let start = Instant::now();
        let before = self.cache.stats();
        let n = actions.len();
        let threads = self.threads.min(n.max(1));
        let mut results: Vec<Option<Arc<LegalAssessment>>> = vec![None; n];

        if n > 0 {
            // Split input and output into matching contiguous chunks; each
            // worker owns a disjoint `&mut` window, so order is preserved
            // without any post-hoc sorting. Each worker keeps a local memo
            // in front of the shared cache: local hits touch no lock or
            // atomic at all, and the counts are folded into the shared
            // stats when the chunk finishes.
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (acts, outs) in actions.chunks(chunk).zip(results.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        let mut local: Shard = Shard::default();
                        let mut local_hits = 0u64;
                        for (action, out) in acts.iter().zip(outs.iter_mut()) {
                            let key = FactKey::of(action);
                            let verdict = match local.get(&key) {
                                Some(found) => {
                                    local_hits += 1;
                                    Arc::clone(found)
                                }
                                None => {
                                    let fetched = self.cache.assess(&self.engine, action);
                                    local.insert(key, Arc::clone(&fetched));
                                    fetched
                                }
                            };
                            *out = Some(verdict);
                        }
                        self.cache.add_hits(local_hits);
                    });
                }
            });
        }

        let after = self.cache.stats();
        let report = BatchReport {
            actions: n as u64,
            threads,
            elapsed: start.elapsed(),
            cache: CacheStats {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
                entries: after.entries,
            },
        };
        let results = results
            .into_iter()
            .map(|slot| slot.expect("every chunk filled its window"))
            .collect();
        (results, report)
    }

    /// Convenience: drains an iterator of actions through
    /// [`assess_all`](Self::assess_all).
    pub fn assess_iter<I>(&self, actions: I) -> Vec<Arc<LegalAssessment>>
    where
        I: IntoIterator<Item = InvestigativeAction>,
    {
        let collected: Vec<_> = actions.into_iter().collect();
        self.assess_all(&collected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::table1;

    fn table1_actions() -> Vec<InvestigativeAction> {
        table1().iter().map(|s| s.action().clone()).collect()
    }

    /// Number of distinct fact keys among the Table 1 actions. A few rows
    /// differ only in description (e.g. the same pattern argued under two
    /// headings), so this is less than twenty.
    fn distinct_keys(actions: &[InvestigativeAction]) -> u64 {
        use std::collections::HashSet;
        actions
            .iter()
            .map(crate::factkey::FactKey::of)
            .collect::<HashSet<_>>()
            .len() as u64
    }

    #[test]
    fn cache_hits_after_first_assessment() {
        let cache = VerdictCache::new();
        let engine = ComplianceEngine::new();
        let actions = table1_actions();
        let distinct = distinct_keys(&actions);
        for a in &actions {
            cache.assess(&engine, a);
        }
        let warm = cache.stats();
        assert_eq!(warm.misses, distinct);
        assert_eq!(warm.hits, actions.len() as u64 - distinct);
        assert_eq!(warm.entries, distinct);
        for a in &actions {
            cache.assess(&engine, a);
        }
        let after = cache.stats();
        assert_eq!(after.hits, warm.hits + actions.len() as u64);
        assert_eq!(after.misses, warm.misses);
        assert_eq!(after.entries as usize, cache.len());
    }

    #[test]
    fn cached_assessments_match_fresh_ones() {
        let cache = VerdictCache::new();
        let engine = ComplianceEngine::new();
        for a in &table1_actions() {
            let fresh = engine.assess(a);
            let cached = cache.assess(&engine, a);
            let cached_again = cache.assess(&engine, a);
            assert_eq!(cached.verdict(), fresh.verdict());
            assert_eq!(cached.rationale(), fresh.rationale());
            assert_eq!(cached_again.verdict(), fresh.verdict());
        }
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = VerdictCache::new();
        let engine = ComplianceEngine::new();
        let actions = table1_actions();
        cache.assess(&engine, &actions[0]);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn single_shard_cache_still_works() {
        let cache = VerdictCache::with_shards(1);
        let engine = ComplianceEngine::new();
        let actions = table1_actions();
        for a in &actions {
            cache.assess(&engine, a);
            cache.assess(&engine, a);
        }
        // Every second lookup hits, plus first-lookup hits for the rows
        // whose fact pattern repeats an earlier row.
        let expected_hits = 2 * actions.len() as u64 - distinct_keys(&actions);
        assert_eq!(cache.stats().hits, expected_hits);
        assert_eq!(cache.stats().entries, distinct_keys(&actions));
    }

    #[test]
    fn batch_preserves_input_order() {
        let actions = table1_actions();
        let engine = ComplianceEngine::new();
        let assessor = BatchAssessor::new().with_threads(4);
        let out = assessor.assess_all(&actions);
        assert_eq!(out.len(), actions.len());
        for (action, got) in actions.iter().zip(&out) {
            assert_eq!(got.verdict(), engine.assess(action).verdict());
        }
    }

    #[test]
    fn batch_handles_empty_and_tiny_inputs() {
        let assessor = BatchAssessor::new().with_threads(8);
        assert!(assessor.assess_all(&[]).is_empty());
        let one = table1_actions().remove(0);
        let out = assessor.assess_all(std::slice::from_ref(&one));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn report_counts_batch_delta_only() {
        let actions = table1_actions();
        let assessor = BatchAssessor::new().with_threads(2);
        let (_, first) = assessor.assess_all_with_report(&actions);
        assert_eq!(first.actions, actions.len() as u64);
        // Duplicated input: second run is all hits.
        let doubled: Vec<_> = actions.iter().chain(actions.iter()).cloned().collect();
        let (_, second) = assessor.assess_all_with_report(&doubled);
        assert_eq!(second.cache.hits, doubled.len() as u64);
        assert_eq!(second.cache.misses, 0);
        assert!(second.cache.hit_rate() > 0.99);
    }

    #[test]
    fn shared_cache_is_warm_across_assessors() {
        let cache = Arc::new(VerdictCache::new());
        let actions = table1_actions();
        let first = BatchAssessor::new().sharing_cache(Arc::clone(&cache));
        first.assess_all(&actions);
        let second = BatchAssessor::new().sharing_cache(Arc::clone(&cache));
        let (_, report) = second.assess_all_with_report(&actions);
        assert_eq!(report.cache.misses, 0);
    }

    #[test]
    fn assess_iter_matches_assess_all() {
        let actions = table1_actions();
        let assessor = BatchAssessor::new();
        let by_iter = assessor.assess_iter(actions.clone());
        let by_slice = assessor.assess_all(&actions);
        assert_eq!(by_iter.len(), by_slice.len());
        for (a, b) in by_iter.iter().zip(&by_slice) {
            assert_eq!(a.verdict(), b.verdict());
        }
    }

    #[test]
    fn stats_display_is_readable() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
        };
        let text = s.to_string();
        assert!(text.contains("3 hits"));
        assert!(text.contains("75.0% hit rate"));
    }

    /// The batch report surfaces cache effectiveness (hit-rate percent
    /// next to the raw counters) and throughput, so `assess-batch` and
    /// `serve` summaries read the same way.
    #[test]
    fn report_display_surfaces_throughput_and_hit_rate() {
        let report = BatchReport {
            actions: 100,
            threads: 4,
            elapsed: Duration::from_millis(50),
            cache: CacheStats {
                hits: 80,
                misses: 20,
                entries: 20,
            },
        };
        assert!((report.actions_per_second() - 2000.0).abs() < 1e-6);
        let text = report.to_string();
        assert!(text.contains("100 actions on 4 threads"), "{text}");
        assert!(text.contains("2000 actions/s"), "{text}");
        assert!(text.contains("80 hits, 20 misses"), "{text}");
        assert!(text.contains("80.0% hit rate"), "{text}");
    }
}
