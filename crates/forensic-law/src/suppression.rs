//! The exclusionary rule and the fruit-of-the-poisonous-tree doctrine.
//!
//! The paper's opening warning (§I): "incorrect use of new techniques may
//! result in suppression of the gathered evidence in court. For example,
//! using specialized technology to obtain information without warrants may
//! violate the Fourth Amendment, and the evidence gathered may be
//! suppressed." This module models a docket of collected evidence as a
//! derivation DAG and computes admissibility: evidence collected with
//! insufficient process is suppressed directly, and evidence *derived*
//! from suppressed evidence is suppressed as fruit of the poisonous tree
//! unless an independent source exists.

use crate::process::LegalProcess;
use std::collections::HashMap;
use std::fmt;

/// Opaque identifier for a piece of evidence in a [`Docket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EvidenceId(usize);

impl EvidenceId {
    /// Reconstructs an id from its raw index (e.g. when bridging to
    /// another evidence store). An id only has meaning relative to the
    /// docket that issued it.
    pub fn from_raw(raw: usize) -> Self {
        EvidenceId(raw)
    }

    /// The raw index.
    pub fn raw(self) -> usize {
        self.0
    }
}

impl fmt::Display for EvidenceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// The admissibility determination for one piece of evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Admissibility {
    /// Lawfully collected and untainted.
    Admissible,
    /// Collected with less process than the law required.
    SuppressedDirect,
    /// Derived from suppressed evidence (fruit of the poisonous tree);
    /// carries the nearest poisoned ancestor.
    SuppressedDerivative(EvidenceId),
}

impl Admissibility {
    /// Whether the evidence may be introduced.
    pub fn is_admissible(self) -> bool {
        matches!(self, Admissibility::Admissible)
    }
}

impl fmt::Display for Admissibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Admissibility::Admissible => f.write_str("admissible"),
            Admissibility::SuppressedDirect => f.write_str("suppressed (unlawful collection)"),
            Admissibility::SuppressedDerivative(src) => {
                write!(f, "suppressed (fruit of poisonous tree via {src})")
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    label: String,
    required: LegalProcess,
    held: LegalProcess,
    derived_from: Vec<EvidenceId>,
    independent_source: bool,
}

/// A docket of collected evidence with derivation links.
///
/// # Examples
///
/// ```
/// use forensic_law::process::LegalProcess;
/// use forensic_law::suppression::{Admissibility, Docket};
///
/// let mut docket = Docket::new();
/// // A warrantless full-content capture where a wiretap order was required:
/// let capture = docket.add_root("packet capture", LegalProcess::WiretapOrder, LegalProcess::None);
/// // A suspect identification derived from it:
/// let ident = docket.add_derived("suspect identity", LegalProcess::None, LegalProcess::None, [capture]);
///
/// assert_eq!(docket.admissibility(capture), Admissibility::SuppressedDirect);
/// assert_eq!(docket.admissibility(ident), Admissibility::SuppressedDerivative(capture));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Docket {
    entries: Vec<Entry>,
}

impl Docket {
    /// Creates an empty docket.
    pub fn new() -> Self {
        Docket::default()
    }

    /// Number of evidence items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the docket is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds evidence collected directly (no derivation parents).
    ///
    /// `required` is the process the law demanded for the collecting
    /// action; `held` is the process the investigator actually had.
    pub fn add_root(
        &mut self,
        label: impl Into<String>,
        required: LegalProcess,
        held: LegalProcess,
    ) -> EvidenceId {
        self.push(label.into(), required, held, Vec::new(), false)
    }

    /// Adds evidence derived from earlier evidence.
    ///
    /// # Panics
    ///
    /// Panics if any parent id does not exist (parents must be added
    /// first, which also guarantees the docket stays acyclic).
    pub fn add_derived(
        &mut self,
        label: impl Into<String>,
        required: LegalProcess,
        held: LegalProcess,
        derived_from: impl IntoIterator<Item = EvidenceId>,
    ) -> EvidenceId {
        let parents: Vec<EvidenceId> = derived_from.into_iter().collect();
        for p in &parents {
            assert!(p.0 < self.entries.len(), "unknown parent {p}");
        }
        self.push(label.into(), required, held, parents, false)
    }

    /// Marks evidence as also supported by an independent untainted
    /// source, defeating derivative suppression.
    pub fn set_independent_source(&mut self, id: EvidenceId) {
        self.entries[id.0].independent_source = true;
    }

    fn push(
        &mut self,
        label: String,
        required: LegalProcess,
        held: LegalProcess,
        derived_from: Vec<EvidenceId>,
        independent_source: bool,
    ) -> EvidenceId {
        self.entries.push(Entry {
            label,
            required,
            held,
            derived_from,
            independent_source,
        });
        EvidenceId(self.entries.len() - 1)
    }

    /// The label given at insertion.
    pub fn label(&self, id: EvidenceId) -> &str {
        &self.entries[id.0].label
    }

    /// Computes admissibility of one item (memoized internally per call
    /// via the DAG's topological order — parents always precede children).
    pub fn admissibility(&self, id: EvidenceId) -> Admissibility {
        let all = self.assess_all();
        all[&id]
    }

    /// Computes admissibility for every item in the docket.
    pub fn assess_all(&self) -> HashMap<EvidenceId, Admissibility> {
        let mut out: HashMap<EvidenceId, Admissibility> = HashMap::new();
        for (i, e) in self.entries.iter().enumerate() {
            let id = EvidenceId(i);
            let verdict = if !e.held.satisfies(e.required) {
                Admissibility::SuppressedDirect
            } else if e.independent_source {
                Admissibility::Admissible
            } else {
                // Fruit of the poisonous tree: any suppressed parent
                // poisons the child.
                let poisoned_parent = e
                    .derived_from
                    .iter()
                    .copied()
                    .find(|p| !matches!(out.get(p), Some(Admissibility::Admissible)));
                match poisoned_parent {
                    Some(p) => {
                        // Report the *root* poison if the parent itself is
                        // derivative.
                        let root = match out[&p] {
                            Admissibility::SuppressedDerivative(r) => r,
                            _ => p,
                        };
                        Admissibility::SuppressedDerivative(root)
                    }
                    None => Admissibility::Admissible,
                }
            };
            out.insert(id, verdict);
        }
        out
    }

    /// Items that survive suppression, in insertion order.
    pub fn admissible_items(&self) -> Vec<EvidenceId> {
        let all = self.assess_all();
        (0..self.entries.len())
            .map(EvidenceId)
            .filter(|id| all[id].is_admissible())
            .collect()
    }
}

impl fmt::Display for Docket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let all = self.assess_all();
        for i in 0..self.entries.len() {
            let id = EvidenceId(i);
            writeln!(
                f,
                "{id}: {} — required {}, held {} → {}",
                self.entries[i].label, self.entries[i].required, self.entries[i].held, all[&id]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lawful_collection_is_admissible() {
        let mut d = Docket::new();
        let id = d.add_root(
            "drive image",
            LegalProcess::SearchWarrant,
            LegalProcess::SearchWarrant,
        );
        assert!(d.admissibility(id).is_admissible());
    }

    #[test]
    fn stronger_process_than_required_is_fine() {
        let mut d = Docket::new();
        let id = d.add_root(
            "subscriber info",
            LegalProcess::Subpoena,
            LegalProcess::SearchWarrant,
        );
        assert!(d.admissibility(id).is_admissible());
    }

    #[test]
    fn insufficient_process_is_suppressed() {
        let mut d = Docket::new();
        let id = d.add_root(
            "wiretap",
            LegalProcess::WiretapOrder,
            LegalProcess::CourtOrder,
        );
        assert_eq!(d.admissibility(id), Admissibility::SuppressedDirect);
    }

    #[test]
    fn fruit_of_poisonous_tree_propagates() {
        let mut d = Docket::new();
        let bad = d.add_root(
            "warrantless device search",
            LegalProcess::SearchWarrant,
            LegalProcess::None,
        );
        let child = d.add_derived(
            "address found on device",
            LegalProcess::None,
            LegalProcess::None,
            [bad],
        );
        let grandchild = d.add_derived(
            "stash located at address",
            LegalProcess::None,
            LegalProcess::None,
            [child],
        );
        assert_eq!(
            d.admissibility(child),
            Admissibility::SuppressedDerivative(bad)
        );
        // Grandchild reports the *root* poison.
        assert_eq!(
            d.admissibility(grandchild),
            Admissibility::SuppressedDerivative(bad)
        );
    }

    #[test]
    fn independent_source_cures_taint() {
        let mut d = Docket::new();
        let bad = d.add_root(
            "illegal capture",
            LegalProcess::WiretapOrder,
            LegalProcess::None,
        );
        let cured = d.add_derived("identity", LegalProcess::None, LegalProcess::None, [bad]);
        d.set_independent_source(cured);
        assert!(d.admissibility(cured).is_admissible());
    }

    #[test]
    fn independent_source_does_not_cure_direct_illegality() {
        let mut d = Docket::new();
        let bad = d.add_root(
            "illegal capture",
            LegalProcess::WiretapOrder,
            LegalProcess::None,
        );
        d.set_independent_source(bad);
        assert_eq!(d.admissibility(bad), Admissibility::SuppressedDirect);
    }

    #[test]
    fn mixed_parents_one_clean_one_poisoned() {
        let mut d = Docket::new();
        let clean = d.add_root(
            "subpoenaed logs",
            LegalProcess::Subpoena,
            LegalProcess::Subpoena,
        );
        let bad = d.add_root(
            "warrantless search",
            LegalProcess::SearchWarrant,
            LegalProcess::None,
        );
        let child = d.add_derived(
            "conclusion",
            LegalProcess::None,
            LegalProcess::None,
            [clean, bad],
        );
        assert_eq!(
            d.admissibility(child),
            Admissibility::SuppressedDerivative(bad)
        );
    }

    #[test]
    fn admissible_items_filters() {
        let mut d = Docket::new();
        let a = d.add_root("a", LegalProcess::None, LegalProcess::None);
        let _b = d.add_root("b", LegalProcess::SearchWarrant, LegalProcess::None);
        let items = d.admissible_items();
        assert_eq!(items, vec![a]);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn unknown_parent_panics() {
        let mut d = Docket::new();
        d.add_derived(
            "orphan",
            LegalProcess::None,
            LegalProcess::None,
            [EvidenceId(7)],
        );
    }

    #[test]
    fn display_includes_labels_and_verdicts() {
        let mut d = Docket::new();
        d.add_root("capture", LegalProcess::WiretapOrder, LegalProcess::None);
        let s = d.to_string();
        assert!(s.contains("capture"));
        assert!(s.contains("suppressed"));
    }
}
