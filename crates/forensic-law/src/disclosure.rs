//! Voluntary disclosure by providers under 18 U.S.C. § 2702
//! (§III-A-3 of the paper).
//!
//! § 2702 "regulates voluntary disclosure by providers of RCS and ECS.
//! But any public providers can disclose non-content information to non
//! government entities. Providers not available 'to the public' may
//! freely disclose both contents and non-content records." Public
//! providers may still disclose under enumerated exceptions — user
//! consent, protection of the provider's rights and property, or an
//! emergency — "which often track Fourth Amendment exceptions"
//! (§III-B-c-v).

use crate::casebook::CitationId;
use crate::data::ContentClass;
use crate::provider::ProviderPublicity;
use crate::rationale::Rationale;
use std::fmt;

/// Who the provider wants to disclose to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Recipient {
    /// A government entity.
    Government,
    /// Anyone else (a private party, a researcher, the press).
    NonGovernment,
}

impl fmt::Display for Recipient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Recipient::Government => f.write_str("the government"),
            Recipient::NonGovernment => f.write_str("a non-government entity"),
        }
    }
}

/// The § 2702(b)-(c) exception the provider invokes, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DisclosureBasis {
    /// No exception claimed.
    #[default]
    None,
    /// The originator/addressee consented (§ 2702(b)(3)).
    UserConsent,
    /// Necessary to protect the provider's rights and property
    /// (§ 2702(b)(5)) — the hacker-monitoring scene.
    ProviderSelfProtection,
    /// A good-faith emergency involving danger of death or serious
    /// physical injury (§ 2702(b)(8)).
    Emergency,
}

impl fmt::Display for DisclosureBasis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DisclosureBasis::None => "no exception",
            DisclosureBasis::UserConsent => "user consent",
            DisclosureBasis::ProviderSelfProtection => {
                "protection of the provider's rights and property"
            }
            DisclosureBasis::Emergency => "emergency involving danger of death or serious injury",
        };
        f.write_str(s)
    }
}

/// The determination for one proposed voluntary disclosure.
#[derive(Debug, Clone)]
pub struct DisclosureRuling {
    permitted: bool,
    rationale: Rationale,
}

impl DisclosureRuling {
    /// Whether § 2702 permits the disclosure.
    pub fn is_permitted(&self) -> bool {
        self.permitted
    }

    /// The reasoning.
    pub fn rationale(&self) -> &Rationale {
        &self.rationale
    }
}

/// Decides whether a provider may voluntarily disclose.
///
/// # Examples
///
/// ```
/// use forensic_law::data::ContentClass;
/// use forensic_law::disclosure::{may_disclose, DisclosureBasis, Recipient};
/// use forensic_law::provider::ProviderPublicity;
///
/// // Gmail may not hand content to the government unbidden...
/// let ruling = may_disclose(
///     ProviderPublicity::Public,
///     ContentClass::Content,
///     Recipient::Government,
///     DisclosureBasis::None,
/// );
/// assert!(!ruling.is_permitted());
///
/// // ...but a university server may disclose freely.
/// let ruling = may_disclose(
///     ProviderPublicity::NonPublic,
///     ContentClass::Content,
///     Recipient::Government,
///     DisclosureBasis::None,
/// );
/// assert!(ruling.is_permitted());
/// ```
pub fn may_disclose(
    publicity: ProviderPublicity,
    category: ContentClass,
    recipient: Recipient,
    basis: DisclosureBasis,
) -> DisclosureRuling {
    let mut r = Rationale::new();

    // Non-public providers are outside § 2702 entirely.
    if publicity == ProviderPublicity::NonPublic {
        r.add(
            "providers not available to the public may freely disclose both contents and non-content records",
            [CitationId::Section2702, CitationId::AndersenConsultingVUop],
        );
        return DisclosureRuling {
            permitted: true,
            rationale: r,
        };
    }

    // Public provider, non-content, to a non-government entity: allowed.
    if !category.is_content() && recipient == Recipient::NonGovernment {
        r.add(
            "a public provider may disclose non-content records to non-government entities",
            [CitationId::Section2702],
        );
        return DisclosureRuling {
            permitted: true,
            rationale: r,
        };
    }

    // Otherwise an exception is required.
    match basis {
        DisclosureBasis::UserConsent => {
            r.add(
                "disclosure with the consent of the user is excepted under § 2702(b)(3)",
                [CitationId::Section2702],
            );
            DisclosureRuling {
                permitted: true,
                rationale: r,
            }
        }
        DisclosureBasis::ProviderSelfProtection => {
            r.add(
                "a provider may disclose as necessary to protect its rights and property — e.g. the fruits of monitoring an intruder",
                [CitationId::Section2702, CitationId::UnitedStatesVVillanueva],
            );
            DisclosureRuling {
                permitted: true,
                rationale: r,
            }
        }
        DisclosureBasis::Emergency => {
            r.add(
                "a good-faith emergency involving danger of death or serious physical injury permits disclosure",
                [CitationId::Section2702],
            );
            DisclosureRuling {
                permitted: true,
                rationale: r,
            }
        }
        DisclosureBasis::None => {
            r.add(
                format!(
                    "§ 2702 prohibits a public provider from voluntarily disclosing {category} to {recipient} absent an exception"
                ),
                [CitationId::Section2702, CitationId::StoredCommunicationsAct],
            );
            DisclosureRuling {
                permitted: false,
                rationale: r,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_provider_content_to_government_blocked() {
        let ruling = may_disclose(
            ProviderPublicity::Public,
            ContentClass::Content,
            Recipient::Government,
            DisclosureBasis::None,
        );
        assert!(!ruling.is_permitted());
        assert!(!ruling.rationale().is_empty());
    }

    #[test]
    fn public_provider_content_to_private_blocked_too() {
        // Content disclosure by a public provider is restricted to
        // everyone absent an exception.
        let ruling = may_disclose(
            ProviderPublicity::Public,
            ContentClass::Content,
            Recipient::NonGovernment,
            DisclosureBasis::None,
        );
        assert!(!ruling.is_permitted());
    }

    #[test]
    fn public_provider_records_to_private_allowed() {
        let ruling = may_disclose(
            ProviderPublicity::Public,
            ContentClass::SubscriberRecords,
            Recipient::NonGovernment,
            DisclosureBasis::None,
        );
        assert!(ruling.is_permitted());
    }

    #[test]
    fn public_provider_records_to_government_needs_exception() {
        let blocked = may_disclose(
            ProviderPublicity::Public,
            ContentClass::SubscriberRecords,
            Recipient::Government,
            DisclosureBasis::None,
        );
        assert!(!blocked.is_permitted());
        let consented = may_disclose(
            ProviderPublicity::Public,
            ContentClass::SubscriberRecords,
            Recipient::Government,
            DisclosureBasis::UserConsent,
        );
        assert!(consented.is_permitted());
    }

    #[test]
    fn all_exceptions_unlock_disclosure() {
        for basis in [
            DisclosureBasis::UserConsent,
            DisclosureBasis::ProviderSelfProtection,
            DisclosureBasis::Emergency,
        ] {
            let ruling = may_disclose(
                ProviderPublicity::Public,
                ContentClass::Content,
                Recipient::Government,
                basis,
            );
            assert!(ruling.is_permitted(), "{basis}");
        }
    }

    #[test]
    fn non_public_provider_free() {
        for category in [
            ContentClass::Content,
            ContentClass::SubscriberRecords,
            ContentClass::TransactionalRecords,
        ] {
            for recipient in [Recipient::Government, Recipient::NonGovernment] {
                let ruling = may_disclose(
                    ProviderPublicity::NonPublic,
                    category,
                    recipient,
                    DisclosureBasis::None,
                );
                assert!(ruling.is_permitted(), "{category} to {recipient}");
            }
        }
    }

    #[test]
    fn self_protection_cites_villanueva() {
        let ruling = may_disclose(
            ProviderPublicity::Public,
            ContentClass::Content,
            Recipient::Government,
            DisclosureBasis::ProviderSelfProtection,
        );
        assert!(ruling
            .rationale()
            .cited_authorities()
            .contains(&CitationId::UnitedStatesVVillanueva));
    }

    #[test]
    fn displays() {
        assert!(Recipient::Government.to_string().contains("government"));
        assert!(DisclosureBasis::Emergency.to_string().contains("emergency"));
    }
}
