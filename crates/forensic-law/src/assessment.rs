//! The output of the compliance engine: a verdict, its confidence, and the
//! full rationale chain.

use crate::casebook::CitationId;
use crate::privacy::PrivacyFinding;
use crate::process::LegalProcess;
use crate::provenance::Provenance;
use crate::rationale::Rationale;
use std::fmt;

/// How settled a conclusion is.
///
/// The paper marks some Table 1 answers with `(*)`: "we make judgments
/// based on our own knowledge".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Confidence {
    /// Grounded in holdings or statutory text the paper cites.
    #[default]
    Settled,
    /// The paper's own judgment where authority is unsettled (the `(*)`
    /// rows).
    AuthorsJudgment,
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Confidence::Settled => f.write_str("settled"),
            Confidence::AuthorsJudgment => f.write_str("authors' judgment (*)"),
        }
    }
}

/// The engine's bottom-line answer to "does this action need
/// warrant/court order/subpoena?" — the right-hand column of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Lawful without any compulsory process.
    NoProcessNeeded,
    /// Requires at least the given process.
    ProcessRequired(LegalProcess),
    /// A private actor may not perform this action at all (process is a
    /// government instrument; a private interception is simply a crime).
    UnlawfulForPrivateActor,
}

impl Verdict {
    /// Whether process is needed — the binary answer Table 1 records.
    pub fn needs_process(self) -> bool {
        !matches!(self, Verdict::NoProcessNeeded)
    }

    /// The minimum process that authorizes the action, when it is a
    /// process question.
    pub fn required_process(self) -> Option<LegalProcess> {
        match self {
            Verdict::ProcessRequired(p) => Some(p),
            Verdict::NoProcessNeeded => Some(LegalProcess::None),
            Verdict::UnlawfulForPrivateActor => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::NoProcessNeeded => f.write_str("no need"),
            Verdict::ProcessRequired(p) => write!(f, "need ({p})"),
            Verdict::UnlawfulForPrivateActor => f.write_str("unlawful for a private actor"),
        }
    }
}

/// A complete legal assessment of one investigative action.
#[derive(Debug, Clone)]
pub struct LegalAssessment {
    verdict: Verdict,
    confidence: Confidence,
    privacy: PrivacyFinding,
    governing: Vec<CitationId>,
    rationale: Rationale,
    provenance: Provenance,
}

impl LegalAssessment {
    pub(crate) fn new(
        verdict: Verdict,
        confidence: Confidence,
        privacy: PrivacyFinding,
        governing: Vec<CitationId>,
        rationale: Rationale,
        provenance: Provenance,
    ) -> Self {
        LegalAssessment {
            verdict,
            confidence,
            privacy,
            governing,
            rationale,
            provenance,
        }
    }

    /// The bottom-line verdict.
    pub fn verdict(&self) -> Verdict {
        self.verdict
    }

    /// The confidence in the verdict.
    pub fn confidence(&self) -> Confidence {
        self.confidence
    }

    /// The canonical one-line rendering — `{verdict} [{confidence}]` —
    /// shared by every surface that prints or stores a verdict:
    /// `assess-batch` rows, wire response payloads, and journal
    /// records. Keeping a single producer is what lets the replay
    /// oracle diff journaled verdicts byte-for-byte against live ones.
    pub fn verdict_line(&self) -> String {
        format!("{} [{}]", self.verdict, self.confidence)
    }

    /// The underlying reasonable-expectation-of-privacy finding.
    pub fn privacy(&self) -> &PrivacyFinding {
        &self.privacy
    }

    /// The authorities (constitution/statutes) that govern the action.
    pub fn governing_authorities(&self) -> &[CitationId] {
        &self.governing
    }

    /// The full rationale chain.
    pub fn rationale(&self) -> &Rationale {
        &self.rationale
    }

    /// The ordered rule firings that produced the verdict — the
    /// machine-readable audit trail behind [`rationale`](Self::rationale).
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// Whether the action, performed with `held` process in hand, is
    /// lawful.
    ///
    /// # Examples
    ///
    /// ```
    /// # use forensic_law::prelude::*;
    /// let engine = ComplianceEngine::new();
    /// let action = InvestigativeAction::builder(
    ///     Actor::law_enforcement(),
    ///     DataSpec::new(
    ///         ContentClass::Content,
    ///         Temporality::RealTime,
    ///         DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
    ///     ),
    /// )
    /// .build();
    /// let assessment = engine.assess(&action);
    /// assert!(!assessment.is_lawful_with(LegalProcess::Subpoena));
    /// assert!(assessment.is_lawful_with(LegalProcess::WiretapOrder));
    /// ```
    pub fn is_lawful_with(&self, held: LegalProcess) -> bool {
        match self.verdict {
            Verdict::NoProcessNeeded => true,
            Verdict::ProcessRequired(required) => held.satisfies(required),
            Verdict::UnlawfulForPrivateActor => false,
        }
    }
}

impl fmt::Display for LegalAssessment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "verdict: {} [{}]", self.verdict, self.confidence)?;
        writeln!(f, "privacy: {}", self.privacy)?;
        writeln!(f, "rationale:")?;
        write!(f, "{}", self.rationale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_binary_mapping() {
        assert!(!Verdict::NoProcessNeeded.needs_process());
        assert!(Verdict::ProcessRequired(LegalProcess::Subpoena).needs_process());
        assert!(Verdict::UnlawfulForPrivateActor.needs_process());
    }

    #[test]
    fn verdict_required_process() {
        assert_eq!(
            Verdict::ProcessRequired(LegalProcess::CourtOrder).required_process(),
            Some(LegalProcess::CourtOrder)
        );
        assert_eq!(
            Verdict::NoProcessNeeded.required_process(),
            Some(LegalProcess::None)
        );
        assert_eq!(Verdict::UnlawfulForPrivateActor.required_process(), None);
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::NoProcessNeeded.to_string(), "no need");
        assert_eq!(
            Verdict::ProcessRequired(LegalProcess::SearchWarrant).to_string(),
            "need (search warrant)"
        );
    }

    #[test]
    fn confidence_ordering_and_display() {
        assert!(Confidence::Settled < Confidence::AuthorsJudgment);
        assert!(Confidence::AuthorsJudgment.to_string().contains("(*)"));
    }
}
