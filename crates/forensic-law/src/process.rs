//! The ladder of compulsory legal process and the factual standards each
//! rung requires.
//!
//! The paper (§II-A) orders the three classical instruments by difficulty:
//! *subpoena* < *court order* < *search warrant*, and notes that "merely a
//! suspicion is enough to apply for a subpoena", "specific and articulable
//! facts" are needed for a court order, and "probable cause" for a search
//! warrant. We extend the ladder with [`LegalProcess::WiretapOrder`]
//! (a Title III "super-warrant", which in practice demands probable cause
//! plus necessity and minimization showings) and with
//! [`LegalProcess::None`] as the bottom element so the ladder forms a total
//! order usable as a lattice join.

use std::fmt;

/// A compulsory-process instrument a government investigator may need
/// before an investigative action is lawful.
///
/// Ordered from least to most demanding; the derived [`Ord`] implements the
/// paper's "degree of difficulty ... in the ascending order" (§II-A).
///
/// # Examples
///
/// ```
/// use forensic_law::process::LegalProcess;
///
/// assert!(LegalProcess::Subpoena < LegalProcess::SearchWarrant);
/// assert_eq!(
///     LegalProcess::CourtOrder.max(LegalProcess::Subpoena),
///     LegalProcess::CourtOrder,
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum LegalProcess {
    /// No compulsory process is required.
    #[default]
    None,
    /// A subpoena: compels a witness (e.g. an ISP) to produce evidence or
    /// testimony. Obtainable on mere suspicion (§II-A).
    Subpoena,
    /// A court order — in the digital context usually an
    /// 18 U.S.C. § 2703(d) order or a pen/trap order under § 3123.
    /// Requires "specific and articulable facts" (§II-A).
    CourtOrder,
    /// A search warrant under the Fourth Amendment: requires probable
    /// cause, supported by oath, particularly describing the place and
    /// things (§II-B-1).
    SearchWarrant,
    /// A Title III interception order ("super-warrant") authorizing
    /// real-time acquisition of communication *content*
    /// (18 U.S.C. §§ 2516–2518).
    WiretapOrder,
}

impl LegalProcess {
    /// All process levels, in ascending order of difficulty.
    pub const ALL: [LegalProcess; 5] = [
        LegalProcess::None,
        LegalProcess::Subpoena,
        LegalProcess::CourtOrder,
        LegalProcess::SearchWarrant,
        LegalProcess::WiretapOrder,
    ];

    /// The factual showing an applicant must make to obtain this process.
    ///
    /// # Examples
    ///
    /// ```
    /// use forensic_law::process::{FactualStandard, LegalProcess};
    ///
    /// assert_eq!(
    ///     LegalProcess::SearchWarrant.required_standard(),
    ///     FactualStandard::ProbableCause,
    /// );
    /// ```
    pub fn required_standard(self) -> FactualStandard {
        match self {
            LegalProcess::None => FactualStandard::None,
            LegalProcess::Subpoena => FactualStandard::MereSuspicion,
            LegalProcess::CourtOrder => FactualStandard::SpecificArticulableFacts,
            LegalProcess::SearchWarrant => FactualStandard::ProbableCause,
            LegalProcess::WiretapOrder => FactualStandard::ProbableCausePlus,
        }
    }

    /// Whether any court involvement is required at all.
    pub fn requires_court(self) -> bool {
        self != LegalProcess::None
    }

    /// Whether holding `self` satisfies a requirement of `required`.
    ///
    /// A more demanding instrument always satisfies a less demanding
    /// requirement (a search warrant "can disclose everything", §III-A-3),
    /// with one modelled exception: nothing below a wiretap order satisfies
    /// a wiretap requirement, and a wiretap order satisfies everything.
    pub fn satisfies(self, required: LegalProcess) -> bool {
        self >= required
    }

    /// Short display label used in regenerated tables.
    pub fn label(self) -> &'static str {
        match self {
            LegalProcess::None => "none",
            LegalProcess::Subpoena => "subpoena",
            LegalProcess::CourtOrder => "court order",
            LegalProcess::SearchWarrant => "search warrant",
            LegalProcess::WiretapOrder => "wiretap order",
        }
    }
}

impl fmt::Display for LegalProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The quantum of factual support an investigator has (or needs).
///
/// Ordered from weakest to strongest. [`FactualStandard::ProbableCausePlus`]
/// models Title III's probable-cause-plus-necessity showing.
///
/// # Examples
///
/// ```
/// use forensic_law::process::FactualStandard;
///
/// assert!(FactualStandard::MereSuspicion < FactualStandard::ProbableCause);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum FactualStandard {
    /// No factual support at all.
    #[default]
    None,
    /// A bare hunch; enough for a subpoena (§II-A).
    MereSuspicion,
    /// Reasonable suspicion — the *Terry* standard; relevant to
    /// probation/parole searches (§III-B-f).
    ReasonableSuspicion,
    /// "Specific and articulable facts showing ... reasonable grounds to
    /// believe" the information is "relevant and material to an ongoing
    /// criminal investigation" — the § 2703(d) standard.
    SpecificArticulableFacts,
    /// "A fair probability that contraband or evidence of a crime will be
    /// found in a particular place" (Illinois v. Gates).
    ProbableCause,
    /// Probable cause plus Title III's necessity/exhaustion showing.
    ProbableCausePlus,
}

impl FactualStandard {
    /// All standards, weakest first.
    pub const ALL: [FactualStandard; 6] = [
        FactualStandard::None,
        FactualStandard::MereSuspicion,
        FactualStandard::ReasonableSuspicion,
        FactualStandard::SpecificArticulableFacts,
        FactualStandard::ProbableCause,
        FactualStandard::ProbableCausePlus,
    ];

    /// Whether evidence at this standard suffices to apply for `process`.
    ///
    /// # Examples
    ///
    /// ```
    /// use forensic_law::process::{FactualStandard, LegalProcess};
    ///
    /// assert!(FactualStandard::ProbableCause.suffices_for(LegalProcess::CourtOrder));
    /// assert!(!FactualStandard::MereSuspicion.suffices_for(LegalProcess::SearchWarrant));
    /// ```
    pub fn suffices_for(self, process: LegalProcess) -> bool {
        self >= process.required_standard()
    }

    /// The most demanding process obtainable at this standard.
    pub fn strongest_obtainable(self) -> LegalProcess {
        LegalProcess::ALL
            .iter()
            .copied()
            .rev()
            .find(|p| self.suffices_for(*p))
            .unwrap_or(LegalProcess::None)
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            FactualStandard::None => "no facts",
            FactualStandard::MereSuspicion => "mere suspicion",
            FactualStandard::ReasonableSuspicion => "reasonable suspicion",
            FactualStandard::SpecificArticulableFacts => "specific and articulable facts",
            FactualStandard::ProbableCause => "probable cause",
            FactualStandard::ProbableCausePlus => "probable cause plus necessity",
        }
    }
}

impl fmt::Display for FactualStandard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_ladder_is_strictly_ascending() {
        for pair in LegalProcess::ALL.windows(2) {
            assert!(pair[0] < pair[1], "{:?} should be < {:?}", pair[0], pair[1]);
        }
    }

    #[test]
    fn standard_ladder_is_strictly_ascending() {
        for pair in FactualStandard::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn required_standards_monotone_in_process() {
        let mut prev = FactualStandard::None;
        for p in LegalProcess::ALL {
            assert!(p.required_standard() >= prev);
            prev = p.required_standard();
        }
    }

    #[test]
    fn subpoena_needs_only_suspicion() {
        assert_eq!(
            LegalProcess::Subpoena.required_standard(),
            FactualStandard::MereSuspicion
        );
    }

    #[test]
    fn court_order_needs_articulable_facts() {
        assert_eq!(
            LegalProcess::CourtOrder.required_standard(),
            FactualStandard::SpecificArticulableFacts
        );
    }

    #[test]
    fn warrant_needs_probable_cause() {
        assert_eq!(
            LegalProcess::SearchWarrant.required_standard(),
            FactualStandard::ProbableCause
        );
    }

    #[test]
    fn stronger_process_satisfies_weaker_requirement() {
        assert!(LegalProcess::SearchWarrant.satisfies(LegalProcess::Subpoena));
        assert!(LegalProcess::WiretapOrder.satisfies(LegalProcess::SearchWarrant));
        assert!(!LegalProcess::Subpoena.satisfies(LegalProcess::CourtOrder));
    }

    #[test]
    fn every_process_satisfies_itself_and_none() {
        for p in LegalProcess::ALL {
            assert!(p.satisfies(p));
            assert!(p.satisfies(LegalProcess::None));
        }
    }

    #[test]
    fn probable_cause_obtains_warrant_but_not_wiretap() {
        assert_eq!(
            FactualStandard::ProbableCause.strongest_obtainable(),
            LegalProcess::SearchWarrant
        );
        assert_eq!(
            FactualStandard::ProbableCausePlus.strongest_obtainable(),
            LegalProcess::WiretapOrder
        );
    }

    #[test]
    fn no_facts_obtains_nothing() {
        assert_eq!(
            FactualStandard::None.strongest_obtainable(),
            LegalProcess::None
        );
    }

    #[test]
    fn display_labels_are_nonempty_and_lowercase() {
        for p in LegalProcess::ALL {
            assert!(!p.to_string().is_empty());
            assert_eq!(p.to_string(), p.to_string().to_lowercase());
        }
        for s in FactualStandard::ALL {
            assert!(!s.to_string().is_empty());
        }
    }

    #[test]
    fn requires_court_only_for_real_process() {
        assert!(!LegalProcess::None.requires_court());
        for p in &LegalProcess::ALL[1..] {
            assert!(p.requires_court());
        }
    }
}
