//! The reasonable-expectation-of-privacy (REP) calculus (§II-C).
//!
//! A person deserves reasonable privacy if (1) they actually expect
//! privacy and (2) the expectation is "one that society is prepared to
//! recognize as 'reasonable'" (*Katz*). This module folds the paper's
//! catalogue of REP-creating and REP-destroying circumstances into a
//! single analysis over an [`InvestigativeAction`].

use crate::action::InvestigativeAction;
use crate::assessment::Confidence;
use crate::casebook::CitationId;
use crate::data::{ContentClass, DataLocation, Temporality, TransmissionMedium};
use crate::rationale::Rationale;
use std::fmt;

/// The outcome of the REP analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivacyFinding {
    has_rep: bool,
    confidence: Confidence,
    rationale: Rationale,
}

impl PrivacyFinding {
    /// Whether the action invades a reasonable expectation of privacy —
    /// i.e. whether it is a Fourth Amendment "search".
    pub fn has_reasonable_expectation(&self) -> bool {
        self.has_rep
    }

    /// How settled the conclusion is; the paper marks four Table 1 rows
    /// with `(*)` as "judgments based on our own knowledge".
    pub fn confidence(&self) -> Confidence {
        self.confidence
    }

    /// The doctrinal steps that led here.
    pub fn rationale(&self) -> &Rationale {
        &self.rationale
    }
}

impl fmt::Display for PrivacyFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdict = if self.has_rep {
            "reasonable expectation of privacy"
        } else {
            "no reasonable expectation of privacy"
        };
        write!(f, "{verdict} ({})", self.confidence)
    }
}

/// Runs the REP analysis for an action.
///
/// # Examples
///
/// ```
/// use forensic_law::action::InvestigativeAction;
/// use forensic_law::actor::Actor;
/// use forensic_law::data::{ContentClass, DataLocation, DataSpec, Temporality};
/// use forensic_law::privacy::assess_privacy;
///
/// // Files shared on a public forum carry no privacy expectation.
/// let action = InvestigativeAction::builder(
///     Actor::law_enforcement(),
///     DataSpec::new(
///         ContentClass::Content,
///         Temporality::stored_opened(),
///         DataLocation::PublicForum,
///     ),
/// )
/// .joining_public_protocol()
/// .build();
/// assert!(!assess_privacy(&action).has_reasonable_expectation());
/// ```
pub fn assess_privacy(action: &InvestigativeAction) -> PrivacyFinding {
    let mut r = Rationale::new();
    let data = action.data();
    let method = action.method();
    let circ = action.circumstances();

    // Kyllo rule dominates: sense-enhancing technology not in general
    // public use revealing home-interior details is a search regardless of
    // the data category (§III-B-a).
    if method.specialized_tech_not_public && method.reveals_home_interior {
        r.add(
            "sense-enhancing technology not in general public use disclosed details of the home interior; the surveillance is a search",
            [CitationId::KylloVUnitedStates],
        );
        return PrivacyFinding {
            has_rep: true,
            confidence: Confidence::Settled,
            rationale: r,
        };
    }

    // A binding policy can eliminate the expectation wholesale
    // (Table 1 row 2: "the campus policies eliminate a user's expectation
    // of privacy").
    if circ.policy_eliminates_privacy {
        r.add(
            "a binding network-use policy eliminated any subjective and objective expectation of privacy",
            [CitationId::UnitedStatesVYoung2003, CitationId::DojSearchSeizureManual],
        );
        return PrivacyFinding {
            has_rep: false,
            confidence: Confidence::Settled,
            rationale: r,
        };
    }

    // Knowing exposure via participation in a public protocol (§IV-A) or
    // public-forum placement (§II-C-2).
    if method.joins_public_protocol || data.location == DataLocation::PublicForum {
        r.add(
            "information knowingly exposed to the public or to other protocol participants carries no reasonable expectation of privacy",
            [
                CitationId::HoffaVUnitedStates,
                CitationId::UnitedStatesVGinesPerez,
                CitationId::UnitedStatesVStults,
                CitationId::GuestVLeis,
            ],
        );
        return PrivacyFinding {
            has_rep: false,
            confidence: Confidence::Settled,
            rationale: r,
        };
    }

    // Mining a dataset already lawfully held uncovers no new protected
    // sphere (Table 1 row 19, State v. Sloane).
    if method.derives_from_lawfully_held_dataset {
        r.add(
            "mining a lawfully obtained dataset for latent information is not a fresh search",
            [CitationId::StateVSloane],
        );
        return PrivacyFinding {
            has_rep: false,
            confidence: Confidence::Settled,
            rationale: r,
        };
    }

    // Using an arrestee's credentials to fetch their remote data
    // (Table 1 row 20 — the paper answers "No need" without reservation).
    if method.uses_credentials_of_arrestee {
        r.add(
            "after arrest, use of the defendant's own credentials to retrieve account data requires no fresh process",
            [CitationId::DojSearchSeizureManual],
        );
        return PrivacyFinding {
            has_rep: false,
            confidence: Confidence::Settled,
            rationale: r,
        };
    }

    match data.location {
        DataLocation::SuspectDevice => {
            r.add(
                "electronic storage devices are analogous to closed containers; their owners retain a reasonable expectation of privacy in the contents",
                [CitationId::KatzVUnitedStates, CitationId::UnitedStatesVRunyan],
            );
            PrivacyFinding {
                has_rep: true,
                confidence: Confidence::Settled,
                rationale: r,
            }
        }
        DataLocation::RemoteComputer => {
            r.add(
                "reaching into a remote computer invades its owner's reasonable expectation of privacy even when the owner is a wrongdoer",
                [CitationId::KatzVUnitedStates],
            );
            PrivacyFinding {
                has_rep: true,
                confidence: Confidence::Settled,
                rationale: r,
            }
        }
        DataLocation::LawfullyObtainedMedia => {
            if method.exhaustive_forensic_search {
                r.add(
                    "hashing or exhaustively examining every file on lawfully obtained media is itself a search of each closed container",
                    [CitationId::UnitedStatesVCrist, CitationId::UnitedStatesVWalser],
                );
                PrivacyFinding {
                    has_rep: true,
                    confidence: Confidence::Settled,
                    rationale: r,
                }
            } else {
                r.add(
                    "examination of lawfully obtained media within the authorizing scope invades no further expectation of privacy",
                    [CitationId::UnitedStatesVLong],
                );
                PrivacyFinding {
                    has_rep: false,
                    confidence: Confidence::Settled,
                    rationale: r,
                }
            }
        }
        DataLocation::ProviderStorage => {
            r.add(
                "information relinquished to a third-party provider loses the owner's constitutional privacy expectation, though statutes still protect it",
                [
                    CitationId::SmithVMaryland,
                    CitationId::CouchVUnitedStates,
                    CitationId::UnitedStatesVHorowitz,
                ],
            );
            PrivacyFinding {
                has_rep: false,
                confidence: Confidence::Settled,
                rationale: r,
            }
        }
        DataLocation::InTransit(medium) => {
            // Observing only rates/volumes acquires non-content
            // signalling information regardless of what the underlying
            // flow carries (§IV-B; Forrester).
            let effective_category = if method.rate_observation_only {
                ContentClass::NonContentAddressing
            } else {
                data.category
            };
            assess_in_transit(effective_category, data.temporality, medium, r)
        }
        DataLocation::PublicForum => unreachable!("handled above"),
    }
}

fn assess_in_transit(
    category: ContentClass,
    temporality: Temporality,
    medium: TransmissionMedium,
    mut r: Rationale,
) -> PrivacyFinding {
    // Addressing information is conveyed to the carrier to route the
    // communication: no REP (Smith v. Maryland; Forrester).
    if category != ContentClass::Content {
        let mut confidence = Confidence::Settled;
        r.add(
            "dialing, routing, and addressing information is knowingly conveyed to the carrier and carries no reasonable expectation of privacy",
            [CitationId::SmithVMaryland, CitationId::UnitedStatesVForrester],
        );
        if matches!(
            medium,
            TransmissionMedium::WirelessUnencrypted | TransmissionMedium::WirelessEncrypted
        ) {
            // Table 1 rows 3 and 5 carry the authors' (*) marker.
            confidence = Confidence::AuthorsJudgment;
            r.add(
                "radio-broadcast frame headers are exposed to anyone within range (the WarDriving scene)",
                [CitationId::Section2511PublicAccessException],
            );
        }
        return PrivacyFinding {
            has_rep: false,
            confidence,
            rationale: r,
        };
    }

    // Content in transit: both sender and recipient retain expectations
    // until delivery (Villarreal); delivery terminates the sender's
    // (King).
    if !temporality.is_real_time() {
        r.add(
            "after delivery the sender's expectation of privacy terminates",
            [
                CitationId::UnitedStatesVKing1995,
                CitationId::UnitedStatesVMeriwether,
            ],
        );
        return PrivacyFinding {
            has_rep: false,
            confidence: Confidence::Settled,
            rationale: r,
        };
    }

    match medium {
        TransmissionMedium::WirelessUnencrypted => {
            // Table 1 row 4: Need (*) — the Google Street View scene.
            r.add(
                "capturing the payload of even unencrypted wireless communications invades the parties' expectation of privacy (the Google Street View controversy)",
                [CitationId::UnitedStatesVVillarreal, CitationId::WiretapAct],
            );
            PrivacyFinding {
                has_rep: true,
                confidence: Confidence::AuthorsJudgment,
                rationale: r,
            }
        }
        TransmissionMedium::WirelessEncrypted => {
            // Table 1 row 6: Need (*).
            r.add(
                "encrypting the channel manifests a subjective expectation of privacy society accepts as reasonable",
                [CitationId::KatzVUnitedStates, CitationId::UnitedStatesVVillarreal],
            );
            PrivacyFinding {
                has_rep: true,
                confidence: Confidence::AuthorsJudgment,
                rationale: r,
            }
        }
        TransmissionMedium::PublicWiredInternet | TransmissionMedium::OwnNetwork => {
            r.add(
                "the contents of communications in transit retain both parties' reasonable expectation of privacy",
                [CitationId::KatzVUnitedStates, CitationId::UnitedStatesVVillarreal],
            );
            PrivacyFinding {
                has_rep: true,
                confidence: Confidence::Settled,
                rationale: r,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Actor;
    use crate::data::DataSpec;

    fn action(spec: DataSpec) -> InvestigativeAction {
        InvestigativeAction::builder(Actor::law_enforcement(), spec).build()
    }

    fn spec(c: ContentClass, t: Temporality, l: DataLocation) -> DataSpec {
        DataSpec::new(c, t, l)
    }

    #[test]
    fn suspect_device_has_rep() {
        let f = assess_privacy(&action(spec(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::SuspectDevice,
        )));
        assert!(f.has_reasonable_expectation());
        assert_eq!(f.confidence(), Confidence::Settled);
    }

    #[test]
    fn public_forum_has_no_rep() {
        let f = assess_privacy(&action(spec(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::PublicForum,
        )));
        assert!(!f.has_reasonable_expectation());
    }

    #[test]
    fn kyllo_tech_is_search_even_for_non_content() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            spec(
                ContentClass::NonContentAddressing,
                Temporality::RealTime,
                DataLocation::SuspectDevice,
            ),
        )
        .with_specialized_tech(true)
        .build();
        let f = assess_privacy(&a);
        assert!(f.has_reasonable_expectation());
        assert!(f
            .rationale()
            .cited_authorities()
            .contains(&CitationId::KylloVUnitedStates));
    }

    #[test]
    fn specialized_tech_without_home_interior_is_not_kyllo() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            spec(
                ContentClass::NonContentAddressing,
                Temporality::RealTime,
                DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
            ),
        )
        .with_specialized_tech(false)
        .build();
        let f = assess_privacy(&a);
        assert!(!f.has_reasonable_expectation());
    }

    #[test]
    fn policy_eliminates_rep() {
        let a = InvestigativeAction::builder(
            Actor::system_administrator(),
            spec(
                ContentClass::Content,
                Temporality::RealTime,
                DataLocation::InTransit(TransmissionMedium::OwnNetwork),
            ),
        )
        .policy_eliminates_privacy()
        .build();
        assert!(!assess_privacy(&a).has_reasonable_expectation());
    }

    #[test]
    fn wired_content_interception_has_rep() {
        let f = assess_privacy(&action(spec(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
        )));
        assert!(f.has_reasonable_expectation());
    }

    #[test]
    fn wired_headers_have_no_rep() {
        let f = assess_privacy(&action(spec(
            ContentClass::NonContentAddressing,
            Temporality::RealTime,
            DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
        )));
        assert!(!f.has_reasonable_expectation());
        assert!(f
            .rationale()
            .cited_authorities()
            .contains(&CitationId::SmithVMaryland));
    }

    #[test]
    fn wireless_headers_no_rep_but_authors_judgment() {
        for m in [
            TransmissionMedium::WirelessUnencrypted,
            TransmissionMedium::WirelessEncrypted,
        ] {
            let f = assess_privacy(&action(spec(
                ContentClass::NonContentAddressing,
                Temporality::RealTime,
                DataLocation::InTransit(m),
            )));
            assert!(!f.has_reasonable_expectation(), "{m:?}");
            assert_eq!(f.confidence(), Confidence::AuthorsJudgment, "{m:?}");
        }
    }

    #[test]
    fn wireless_content_has_rep_with_authors_judgment() {
        for m in [
            TransmissionMedium::WirelessUnencrypted,
            TransmissionMedium::WirelessEncrypted,
        ] {
            let f = assess_privacy(&action(spec(
                ContentClass::Content,
                Temporality::RealTime,
                DataLocation::InTransit(m),
            )));
            assert!(f.has_reasonable_expectation(), "{m:?}");
            assert_eq!(f.confidence(), Confidence::AuthorsJudgment, "{m:?}");
        }
    }

    #[test]
    fn delivered_content_loses_sender_rep() {
        let f = assess_privacy(&action(spec(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
        )));
        assert!(!f.has_reasonable_expectation());
        assert!(f
            .rationale()
            .cited_authorities()
            .contains(&CitationId::UnitedStatesVKing1995));
    }

    #[test]
    fn provider_storage_has_no_constitutional_rep() {
        let f = assess_privacy(&action(spec(
            ContentClass::SubscriberRecords,
            Temporality::stored_opened(),
            DataLocation::ProviderStorage,
        )));
        assert!(!f.has_reasonable_expectation());
    }

    #[test]
    fn drive_hashing_is_a_search() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            spec(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::LawfullyObtainedMedia,
            ),
        )
        .exhaustive_forensic_search()
        .build();
        let f = assess_privacy(&a);
        assert!(f.has_reasonable_expectation());
        assert!(f
            .rationale()
            .cited_authorities()
            .contains(&CitationId::UnitedStatesVCrist));
    }

    #[test]
    fn scoped_exam_of_lawful_media_is_not_a_search() {
        let f = assess_privacy(&action(spec(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::LawfullyObtainedMedia,
        )));
        assert!(!f.has_reasonable_expectation());
    }

    #[test]
    fn dataset_mining_is_not_a_search() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            spec(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::LawfullyObtainedMedia,
            ),
        )
        .mining_lawfully_held_dataset()
        .build();
        assert!(!assess_privacy(&a).has_reasonable_expectation());
    }

    #[test]
    fn arrestee_credentials_defeat_rep() {
        let a = InvestigativeAction::builder(
            Actor::law_enforcement(),
            spec(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::RemoteComputer,
            ),
        )
        .using_arrestee_credentials()
        .build();
        assert!(!assess_privacy(&a).has_reasonable_expectation());
    }

    #[test]
    fn remote_computer_has_rep() {
        let f = assess_privacy(&action(spec(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::RemoteComputer,
        )));
        assert!(f.has_reasonable_expectation());
    }

    #[test]
    fn every_finding_has_rationale() {
        let f = assess_privacy(&action(spec(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::InTransit(TransmissionMedium::OwnNetwork),
        )));
        assert!(!f.rationale().is_empty());
        assert!(!f.to_string().is_empty());
    }
}
