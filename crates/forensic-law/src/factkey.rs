//! A canonical, hashable projection of an [`InvestigativeAction`] onto
//! exactly the facts the compliance engine reads.
//!
//! [`ComplianceEngine::assess`](crate::engine::ComplianceEngine::assess)
//! is a pure function of the action's *legal* facts — actor, data
//! specification, method flags, circumstances, and the four optional
//! exception/compulsion records. The free-text description is display-only
//! and never consulted by the privacy calculus or any statute evaluator.
//! [`FactKey`] captures precisely that read set, so two actions with equal
//! keys are guaranteed to receive identical assessments, and the key can
//! serve as a cache index (see [`VerdictCache`](crate::batch::VerdictCache)).
//!
//! ## Representation
//!
//! The whole fact space is small: every field is a low-cardinality enum or
//! a flag, 41 bits in total. The key packs them into one `u64`, field by
//! field at fixed offsets, so equality is a single integer compare and
//! hashing is a single `write_u64` — which is what makes the verdict
//! cache's hit path dramatically cheaper than re-running the engine.
//! Injectivity is by construction (every field owns a disjoint bit range,
//! and each range round-trips its field exactly); the
//! `batch_differential` integration suite additionally sweeps the
//! cartesian fact space to pin equal-key soundness behaviorally.

use crate::action::{Circumstances, InvestigativeAction, Method, ProviderCompulsion};
use crate::actor::{Actor, ActorKind};
use crate::data::{ContentClass, DataLocation, DataSpec, Temporality, TransmissionMedium};
use crate::exceptions::{
    Consent, ConsentAuthority, EmergencyPenTrap, EmergencyPenTrapGround, Exigency,
};
use crate::provider::{CompelledInfo, MessageStage, ProviderPublicity};

/// The engine-visible facts of an [`InvestigativeAction`], as one packed
/// `u64`.
///
/// Equal keys imply identical
/// [`LegalAssessment`](crate::assessment::LegalAssessment)s: the engine is
/// deterministic and reads nothing an action carries beyond these facts
/// (the description string is presentation-only). The converse does not
/// hold — distinct keys may still map to the same verdict.
///
/// # Examples
///
/// ```
/// use forensic_law::factkey::FactKey;
/// use forensic_law::prelude::*;
///
/// let spec = DataSpec::new(
///     ContentClass::Content,
///     Temporality::RealTime,
///     DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
/// );
/// let a = InvestigativeAction::builder(Actor::law_enforcement(), spec)
///     .describe("wiretap at the ISP")
///     .build();
/// let b = InvestigativeAction::builder(Actor::law_enforcement(), spec)
///     .describe("full packet capture upstream")
///     .build();
/// // Different prose, same legal facts: one cache entry.
/// assert_eq!(FactKey::of(&a), FactKey::of(&b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactKey {
    bits: u64,
}

/// Appends fixed-width fields into a `u64`, low bits first.
struct Packer {
    bits: u64,
    cursor: u32,
}

impl Packer {
    fn new() -> Self {
        Packer { bits: 0, cursor: 0 }
    }

    fn push(&mut self, value: u64, width: u32) {
        debug_assert!(
            width < 64 && value < (1 << width),
            "field overflows its bit range"
        );
        debug_assert!(self.cursor + width <= 64, "key exceeds 64 bits");
        self.bits |= value << self.cursor;
        self.cursor += width;
    }

    fn flag(&mut self, value: bool) {
        self.push(u64::from(value), 1);
    }
}

fn actor_bits(p: &mut Packer, actor: Actor) {
    let kind = match actor.kind() {
        ActorKind::LawEnforcement => 0u64,
        ActorKind::GovernmentEmployer => 1,
        ActorKind::PrivateIndividual => 2,
        ActorKind::SystemAdministrator => 3,
        ActorKind::ServiceProvider => 4,
        ActorKind::Victim => 5,
    };
    p.push(kind, 3);
    p.flag(actor.is_government_directed());
}

fn data_bits(p: &mut Packer, data: DataSpec) {
    let category = match data.category {
        ContentClass::Content => 0u64,
        ContentClass::NonContentAddressing => 1,
        ContentClass::SubscriberRecords => 2,
        ContentClass::TransactionalRecords => 3,
    };
    p.push(category, 2);
    let temporality = match data.temporality {
        Temporality::RealTime => 0u64,
        Temporality::Stored { opened: false } => 1,
        Temporality::Stored { opened: true } => 2,
    };
    p.push(temporality, 2);
    let location = match data.location {
        DataLocation::SuspectDevice => 0u64,
        DataLocation::InTransit(TransmissionMedium::OwnNetwork) => 1,
        DataLocation::InTransit(TransmissionMedium::PublicWiredInternet) => 2,
        DataLocation::InTransit(TransmissionMedium::WirelessUnencrypted) => 3,
        DataLocation::InTransit(TransmissionMedium::WirelessEncrypted) => 4,
        DataLocation::ProviderStorage => 5,
        DataLocation::PublicForum => 6,
        DataLocation::LawfullyObtainedMedia => 7,
        DataLocation::RemoteComputer => 8,
    };
    p.push(location, 4);
}

fn method_bits(p: &mut Packer, m: Method) {
    p.flag(m.joins_public_protocol);
    p.flag(m.specialized_tech_not_public);
    p.flag(m.reveals_home_interior);
    p.flag(m.exhaustive_forensic_search);
    p.flag(m.derives_from_lawfully_held_dataset);
    p.flag(m.uses_credentials_of_arrestee);
    p.flag(m.rate_observation_only);
    p.flag(m.operates_intercepting_infrastructure);
}

fn circumstance_bits(p: &mut Packer, c: Circumstances) {
    p.flag(c.policy_eliminates_privacy);
    p.flag(c.victim_authorized_trespasser_monitoring);
    p.flag(c.target_on_probation);
    p.flag(c.plain_view_during_lawful_presence);
    p.flag(c.repeats_prior_private_search);
    p.flag(c.target_operates_as_provider);
}

fn consent_bits(p: &mut Packer, consent: Option<Consent>) {
    p.flag(consent.is_some());
    let (authority, scope_exceeded, revoked) = match consent {
        None => (0u64, false, false),
        Some(c) => {
            let authority = match c.authority() {
                ConsentAuthority::TargetSelf => 0u64,
                ConsentAuthority::CoUserCommonAuthority {
                    covers_searched_space: false,
                } => 1,
                ConsentAuthority::CoUserCommonAuthority {
                    covers_searched_space: true,
                } => 2,
                ConsentAuthority::Spouse => 3,
                ConsentAuthority::ParentOfMinor => 4,
                ConsentAuthority::ParentOfAdult {
                    facts_support_authority: false,
                } => 5,
                ConsentAuthority::ParentOfAdult {
                    facts_support_authority: true,
                } => 6,
                ConsentAuthority::PrivateEmployer => 7,
                ConsentAuthority::GovernmentEmployer {
                    work_related_and_reasonable: false,
                } => 8,
                ConsentAuthority::GovernmentEmployer {
                    work_related_and_reasonable: true,
                } => 9,
                ConsentAuthority::NetworkOwnerOrAdmin => 10,
                ConsentAuthority::OnePartyToCommunication {
                    all_party_state: false,
                } => 11,
                ConsentAuthority::OnePartyToCommunication {
                    all_party_state: true,
                } => 12,
            };
            (authority, c.scope_was_exceeded(), c.is_revoked())
        }
    };
    p.push(authority, 4);
    p.flag(scope_exceeded);
    p.flag(revoked);
}

fn exigency_bits(p: &mut Packer, exigency: Option<Exigency>) {
    p.flag(exigency.is_some());
    let code = match exigency {
        None => 0u64,
        Some(Exigency::ImminentEvidenceDestruction) => 0,
        Some(Exigency::DangerToSafety) => 1,
        Some(Exigency::HotPursuit) => 2,
        Some(Exigency::SuspectEscape) => 3,
    };
    p.push(code, 2);
}

fn pen_trap_bits(p: &mut Packer, pen: Option<EmergencyPenTrap>) {
    p.flag(pen.is_some());
    let (ground, valid) = match pen {
        None => (0u64, false),
        Some(pen) => {
            let ground = match pen.ground() {
                EmergencyPenTrapGround::DangerOfDeathOrInjury => 0u64,
                EmergencyPenTrapGround::OrganizedCrime => 1,
                EmergencyPenTrapGround::NationalSecurityThreat => 2,
                EmergencyPenTrapGround::OngoingProtectedComputerAttack => 3,
            };
            (ground, pen.is_valid())
        }
    };
    p.push(ground, 2);
    p.flag(valid);
}

fn compulsion_bits(p: &mut Packer, compulsion: Option<ProviderCompulsion>) {
    p.flag(compulsion.is_some());
    let (publicity, stage, info) = match compulsion {
        None => (false, false, 0u64),
        Some(c) => {
            let info = match c.info {
                CompelledInfo::BasicSubscriberInfo => 0u64,
                CompelledInfo::TransactionalRecords => 1,
                CompelledInfo::UnopenedContent => 2,
                CompelledInfo::OpenedContent => 3,
            };
            (
                c.lifecycle.publicity() == ProviderPublicity::Public,
                c.lifecycle.stage() == MessageStage::OpenedInStorage,
                info,
            )
        }
    };
    p.flag(publicity);
    p.flag(stage);
    p.push(info, 2);
}

impl FactKey {
    /// Projects `action` onto its engine-visible facts.
    pub fn of(action: &InvestigativeAction) -> Self {
        let mut p = Packer::new();
        actor_bits(&mut p, action.actor());
        data_bits(&mut p, action.data());
        method_bits(&mut p, action.method());
        circumstance_bits(&mut p, action.circumstances());
        consent_bits(&mut p, action.consent());
        exigency_bits(&mut p, action.exigency());
        pen_trap_bits(&mut p, action.emergency_pen_trap());
        compulsion_bits(&mut p, action.compulsion());
        FactKey { bits: p.bits }
    }

    /// The packed representation, for diagnostics and shard routing.
    pub fn bits(self) -> u64 {
        self.bits
    }
}

impl From<&InvestigativeAction> for FactKey {
    fn from(action: &InvestigativeAction) -> Self {
        FactKey::of(action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DataSpec {
        DataSpec::new(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
        )
    }

    #[test]
    fn description_is_not_part_of_the_key() {
        let a = InvestigativeAction::builder(Actor::law_enforcement(), spec())
            .describe("one")
            .build();
        let b = InvestigativeAction::builder(Actor::law_enforcement(), spec())
            .describe("two")
            .build();
        assert_ne!(a, b);
        assert_eq!(FactKey::of(&a), FactKey::of(&b));
    }

    #[test]
    fn every_legal_fact_is_part_of_the_key() {
        let base = InvestigativeAction::builder(Actor::law_enforcement(), spec()).build();
        let k = FactKey::of(&base);

        let other_actor = InvestigativeAction::builder(Actor::private_individual(), spec()).build();
        assert_ne!(k, FactKey::of(&other_actor));

        let other_data = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::NonContentAddressing,
                Temporality::RealTime,
                DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
            ),
        )
        .build();
        assert_ne!(k, FactKey::of(&other_data));

        let other_method = InvestigativeAction::builder(Actor::law_enforcement(), spec())
            .rate_observation_only()
            .build();
        assert_ne!(k, FactKey::of(&other_method));

        let other_circ = InvestigativeAction::builder(Actor::law_enforcement(), spec())
            .target_on_probation()
            .build();
        assert_ne!(k, FactKey::of(&other_circ));

        let with_consent = InvestigativeAction::builder(Actor::law_enforcement(), spec())
            .with_consent(Consent::by(ConsentAuthority::TargetSelf))
            .build();
        assert_ne!(k, FactKey::of(&with_consent));

        let with_exigency = InvestigativeAction::builder(Actor::law_enforcement(), spec())
            .with_exigency(Exigency::HotPursuit)
            .build();
        assert_ne!(k, FactKey::of(&with_exigency));
    }

    #[test]
    fn consent_variants_do_not_collide() {
        use ConsentAuthority as A;
        let authorities = [
            A::TargetSelf,
            A::CoUserCommonAuthority {
                covers_searched_space: false,
            },
            A::CoUserCommonAuthority {
                covers_searched_space: true,
            },
            A::Spouse,
            A::ParentOfMinor,
            A::ParentOfAdult {
                facts_support_authority: false,
            },
            A::ParentOfAdult {
                facts_support_authority: true,
            },
            A::PrivateEmployer,
            A::GovernmentEmployer {
                work_related_and_reasonable: false,
            },
            A::GovernmentEmployer {
                work_related_and_reasonable: true,
            },
            A::NetworkOwnerOrAdmin,
            A::OnePartyToCommunication {
                all_party_state: false,
            },
            A::OnePartyToCommunication {
                all_party_state: true,
            },
        ];
        let mut keys = std::collections::HashSet::new();
        keys.insert(FactKey::of(
            &InvestigativeAction::builder(Actor::law_enforcement(), spec()).build(),
        ));
        for authority in authorities {
            for consent in [
                Consent::by(authority),
                Consent::by(authority).revoked(),
                Consent::by(authority).with_scope_exceeded(),
            ] {
                let action = InvestigativeAction::builder(Actor::law_enforcement(), spec())
                    .with_consent(consent)
                    .build();
                assert!(
                    keys.insert(FactKey::of(&action)),
                    "collision at {consent:?}"
                );
            }
        }
    }

    #[test]
    fn exigency_none_differs_from_every_some() {
        let none =
            FactKey::of(&InvestigativeAction::builder(Actor::law_enforcement(), spec()).build());
        for e in [
            Exigency::ImminentEvidenceDestruction,
            Exigency::DangerToSafety,
            Exigency::HotPursuit,
            Exigency::SuspectEscape,
        ] {
            let some = FactKey::of(
                &InvestigativeAction::builder(Actor::law_enforcement(), spec())
                    .with_exigency(e)
                    .build(),
            );
            assert_ne!(none, some);
        }
    }

    #[test]
    fn from_ref_matches_of() {
        let a = InvestigativeAction::builder(Actor::law_enforcement(), spec()).build();
        assert_eq!(FactKey::from(&a), FactKey::of(&a));
    }

    #[test]
    fn key_fits_in_the_packed_budget() {
        // The highest-offset field must still land inside the u64.
        let a = InvestigativeAction::builder(Actor::law_enforcement(), spec()).build();
        let _ = FactKey::of(&a).bits(); // Packer debug_asserts enforce the budget
    }
}
