//! Who is performing the investigative action, and whether the
//! constitutional and statutory restraints attach to them.
//!
//! The Fourth Amendment and the compelled-process provisions restrain
//! *government* actors and those acting as their agents or at their
//! instigation (§III-B-i of the paper: "The Fourth Amendment has
//! restrictions on government and the ones who act as agents of the
//! government or are instigated by government"). A purely private search —
//! a repairman stumbling on contraband, a campus administrator monitoring
//! the network they run — is outside the Fourth Amendment entirely.

use std::fmt;

/// The institutional role of the person performing an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActorKind {
    /// Sworn law-enforcement officer or federal agent.
    LawEnforcement,
    /// A government entity acting as an *employer* (O'Connor v. Ortega
    /// workplace searches).
    GovernmentEmployer,
    /// A private individual with no government connection.
    PrivateIndividual,
    /// A system or network administrator operating their own network
    /// (e.g. campus IT, a corporate NOC).
    SystemAdministrator,
    /// A communications service provider (ISP, mail provider) acting on
    /// its own systems.
    ServiceProvider,
    /// The victim of an ongoing computer attack.
    Victim,
}

impl ActorKind {
    /// Whether this role is inherently governmental.
    pub fn is_inherently_governmental(self) -> bool {
        matches!(
            self,
            ActorKind::LawEnforcement | ActorKind::GovernmentEmployer
        )
    }
}

impl fmt::Display for ActorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActorKind::LawEnforcement => "law enforcement",
            ActorKind::GovernmentEmployer => "government employer",
            ActorKind::PrivateIndividual => "private individual",
            ActorKind::SystemAdministrator => "system administrator",
            ActorKind::ServiceProvider => "service provider",
            ActorKind::Victim => "attack victim",
        };
        f.write_str(s)
    }
}

/// An actor together with the agency-doctrine facts that determine whether
/// the Fourth Amendment restrains them.
///
/// # Examples
///
/// ```
/// use forensic_law::actor::{Actor, ActorKind};
///
/// let officer = Actor::law_enforcement();
/// assert!(officer.is_government_actor());
///
/// let admin = Actor::new(ActorKind::SystemAdministrator);
/// assert!(!admin.is_government_actor());
///
/// // A private actor *instigated by* the government is treated as a
/// // government agent (agency doctrine).
/// let deputized = Actor::new(ActorKind::PrivateIndividual).directed_by_government();
/// assert!(deputized.is_government_actor());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Actor {
    kind: ActorKind,
    government_directed: bool,
}

impl Actor {
    /// Creates an actor of the given kind with no government direction.
    pub fn new(kind: ActorKind) -> Self {
        Actor {
            kind,
            government_directed: false,
        }
    }

    /// Convenience constructor for a law-enforcement officer.
    pub fn law_enforcement() -> Self {
        Actor::new(ActorKind::LawEnforcement)
    }

    /// Convenience constructor for a private individual.
    pub fn private_individual() -> Self {
        Actor::new(ActorKind::PrivateIndividual)
    }

    /// Convenience constructor for a network/system administrator.
    pub fn system_administrator() -> Self {
        Actor::new(ActorKind::SystemAdministrator)
    }

    /// Marks the actor as acting at the government's direction or
    /// instigation, which brings a nominally private actor within the
    /// Fourth Amendment under the agency doctrine.
    #[must_use]
    pub fn directed_by_government(mut self) -> Self {
        self.government_directed = true;
        self
    }

    /// The actor's institutional role.
    pub fn kind(self) -> ActorKind {
        self.kind
    }

    /// Whether the actor was directed or instigated by the government.
    pub fn is_government_directed(self) -> bool {
        self.government_directed
    }

    /// Whether constitutional restraints attach: true for inherently
    /// governmental roles and for private actors acting as government
    /// agents.
    pub fn is_government_actor(self) -> bool {
        self.kind.is_inherently_governmental() || self.government_directed
    }

    /// Whether a search by this actor qualifies as a *private search*
    /// (outside the Fourth Amendment, §III-B-i).
    pub fn qualifies_as_private_search(self) -> bool {
        !self.is_government_actor()
    }
}

impl Default for Actor {
    fn default() -> Self {
        Actor::law_enforcement()
    }
}

impl fmt::Display for Actor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.government_directed && !self.kind.is_inherently_governmental() {
            write!(f, "{} (acting as government agent)", self.kind)
        } else {
            write!(f, "{}", self.kind)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn law_enforcement_is_government() {
        assert!(Actor::law_enforcement().is_government_actor());
    }

    #[test]
    fn government_employer_is_government() {
        assert!(Actor::new(ActorKind::GovernmentEmployer).is_government_actor());
    }

    #[test]
    fn private_roles_are_not_government_by_default() {
        for kind in [
            ActorKind::PrivateIndividual,
            ActorKind::SystemAdministrator,
            ActorKind::ServiceProvider,
            ActorKind::Victim,
        ] {
            assert!(!Actor::new(kind).is_government_actor(), "{kind:?}");
            assert!(Actor::new(kind).qualifies_as_private_search());
        }
    }

    #[test]
    fn agency_doctrine_converts_private_to_government() {
        let agent = Actor::private_individual().directed_by_government();
        assert!(agent.is_government_actor());
        assert!(!agent.qualifies_as_private_search());
    }

    #[test]
    fn directed_government_actor_is_still_government() {
        let a = Actor::law_enforcement().directed_by_government();
        assert!(a.is_government_actor());
    }

    #[test]
    fn display_mentions_agency_for_directed_private_actor() {
        let agent = Actor::private_individual().directed_by_government();
        assert!(agent.to_string().contains("government agent"));
        assert!(!Actor::law_enforcement().to_string().contains("agent"));
    }

    #[test]
    fn private_search_excluded_for_government() {
        assert!(!Actor::law_enforcement().qualifies_as_private_search());
    }
}
