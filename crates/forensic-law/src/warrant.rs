//! Warrant scope and execution doctrine — the paper's §III-A-2
//! "purposes and attentions during investigation".
//!
//! A warrant must particularly describe the place and the things to be
//! seized; execution must stay within that scope (*Kow*, *Adjani*),
//! network searches spanning multiple locations need multiple warrants
//! (*Walser*), off-site imaging of whole systems needs an explanation of
//! necessity (*Hill*, *Tamura*, *Hay*), evidence of a *different* crime
//! found mid-search requires stopping for a fresh warrant (*Walser*),
//! while the Fourth Amendment imposes no limit on the examiner's
//! *technique* over responsive data (*Long*) nor a specific time limit on
//! the forensic examination (*Burns*, *Mutschelknaus*).

use crate::casebook::CitationId;
use crate::rationale::{Rationale, RationaleStep};
use std::fmt;

/// A warrant as issued: what it particularly describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarrantSpec {
    crime: String,
    record_categories: Vec<String>,
    locations: Vec<String>,
    /// Days until the execution window closes.
    execution_window_days: u32,
}

impl WarrantSpec {
    /// Starts building a warrant for evidence of a named crime.
    pub fn for_crime(crime: impl Into<String>) -> WarrantSpecBuilder {
        WarrantSpecBuilder {
            spec: WarrantSpec {
                crime: crime.into(),
                record_categories: Vec::new(),
                locations: Vec::new(),
                execution_window_days: 14,
            },
        }
    }

    /// The crime under investigation.
    pub fn crime(&self) -> &str {
        &self.crime
    }

    /// The categories of records the warrant particularly describes.
    pub fn record_categories(&self) -> &[String] {
        &self.record_categories
    }

    /// The authorized locations.
    pub fn locations(&self) -> &[String] {
        &self.locations
    }

    /// The execution window in days.
    pub fn execution_window_days(&self) -> u32 {
        self.execution_window_days
    }

    /// Particularity check: a warrant naming no record categories is the
    /// "generic" warrant *Kow* condemns.
    pub fn is_sufficiently_particular(&self) -> bool {
        !self.record_categories.is_empty() && !self.locations.is_empty()
    }

    /// Whether a seizure of the named category at the named location is
    /// within scope.
    pub fn covers(&self, category: &str, location: &str) -> bool {
        self.record_categories.iter().any(|c| c == category)
            && self.locations.iter().any(|l| l == location)
    }
}

impl fmt::Display for WarrantSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "warrant re {}: {} at {}",
            self.crime,
            self.record_categories.join(", "),
            self.locations.join(", ")
        )
    }
}

/// Builder for [`WarrantSpec`].
#[derive(Debug, Clone)]
pub struct WarrantSpecBuilder {
    spec: WarrantSpec,
}

impl WarrantSpecBuilder {
    /// Adds a particularly described record category.
    pub fn records(&mut self, category: impl Into<String>) -> &mut Self {
        self.spec.record_categories.push(category.into());
        self
    }

    /// Adds an authorized location.
    pub fn location(&mut self, location: impl Into<String>) -> &mut Self {
        self.spec.locations.push(location.into());
        self
    }

    /// Sets the execution window.
    pub fn execution_window_days(&mut self, days: u32) -> &mut Self {
        self.spec.execution_window_days = days;
        self
    }

    /// Finishes the build.
    pub fn build(&self) -> WarrantSpec {
        self.spec.clone()
    }
}

/// An event during warrant execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutionEvent {
    /// Seizing records of a category at a location, on a given day.
    Seize {
        /// Record category seized.
        category: String,
        /// Where.
        location: String,
        /// Days since issuance.
        day: u32,
    },
    /// Imaging an entire system for off-site examination.
    ImageEntireSystem {
        /// Whether the agents documented why on-site search was
        /// impracticable (*Hill*: "agents need to explain the necessity
        /// for seizure of the entire computer system").
        necessity_explained: bool,
        /// Days since issuance.
        day: u32,
    },
    /// During the search, evidence of a *different* crime comes into
    /// view.
    DiscoverDifferentCrime {
        /// The new crime.
        crime: String,
        /// Whether agents stopped and obtained a fresh warrant before
        /// pursuing it (*Walser*).
        stopped_for_new_warrant: bool,
        /// Days since issuance.
        day: u32,
    },
    /// Forensic examination of already-seized media, possibly long after
    /// the execution window (*Burns*, *Mutschelknaus*).
    ForensicExamination {
        /// Technique description (any technique is fine — *Long*).
        technique: String,
        /// Days since issuance.
        day: u32,
    },
}

/// A problem found when reviewing an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutionDefect {
    /// The warrant itself lacks particularity.
    GenericWarrant,
    /// A seizure outside the warrant's categories or locations.
    OutsideScope {
        /// What was seized.
        category: String,
        /// Where.
        location: String,
    },
    /// Seizure after the execution window closed.
    WindowExpired {
        /// The offending day.
        day: u32,
    },
    /// Whole-system imaging without explaining necessity.
    UnjustifiedWholeSystemSeizure,
    /// Pursued a different crime without stopping for a fresh warrant.
    PursuedDifferentCrimeWithoutWarrant {
        /// The crime pursued.
        crime: String,
    },
}

impl fmt::Display for ExecutionDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionDefect::GenericWarrant => {
                f.write_str("warrant lacks particularity (generic warrant)")
            }
            ExecutionDefect::OutsideScope { category, location } => {
                write!(
                    f,
                    "seizure of {category} at {location} exceeds the warrant's scope"
                )
            }
            ExecutionDefect::WindowExpired { day } => {
                write!(f, "execution on day {day} after the window closed")
            }
            ExecutionDefect::UnjustifiedWholeSystemSeizure => {
                f.write_str("entire system imaged without explaining necessity")
            }
            ExecutionDefect::PursuedDifferentCrimeWithoutWarrant { crime } => {
                write!(
                    f,
                    "pursued evidence of {crime} without obtaining a fresh warrant"
                )
            }
        }
    }
}

/// The review of one execution: defects plus the doctrinal notes that
/// *clear* the permissive aspects (technique, exam timing).
#[derive(Debug, Clone)]
pub struct ExecutionReview {
    defects: Vec<ExecutionDefect>,
    rationale: Rationale,
}

impl ExecutionReview {
    /// Defects found.
    pub fn defects(&self) -> &[ExecutionDefect] {
        &self.defects
    }

    /// Whether execution was clean.
    pub fn is_clean(&self) -> bool {
        self.defects.is_empty()
    }

    /// The doctrinal notes.
    pub fn rationale(&self) -> &Rationale {
        &self.rationale
    }
}

/// Reviews a warrant execution against the §III-A-2 doctrine.
///
/// # Examples
///
/// ```
/// use forensic_law::warrant::{review_execution, ExecutionEvent, WarrantSpec};
///
/// let warrant = WarrantSpec::for_crime("wire fraud")
///     .records("accounting records")
///     .location("the office")
///     .build();
/// let review = review_execution(
///     &warrant,
///     &[ExecutionEvent::Seize {
///         category: "accounting records".into(),
///         location: "the office".into(),
///         day: 3,
///     }],
/// );
/// assert!(review.is_clean());
/// ```
pub fn review_execution(warrant: &WarrantSpec, events: &[ExecutionEvent]) -> ExecutionReview {
    let mut defects = Vec::new();
    let mut rationale = Rationale::new();

    if !warrant.is_sufficiently_particular() {
        defects.push(ExecutionDefect::GenericWarrant);
        rationale.push(RationaleStep::new(
            "a warrant must identify the crime-related records with specific categories",
            [
                CitationId::UnitedStatesVKow,
                CitationId::UnitedStatesVAdjani,
            ],
        ));
    }

    for event in events {
        match event {
            ExecutionEvent::Seize {
                category,
                location,
                day,
            } => {
                if *day > warrant.execution_window_days {
                    defects.push(ExecutionDefect::WindowExpired { day: *day });
                    rationale.push(RationaleStep::new(
                        "a search warrant may expire and revoke after a specific time period",
                        [CitationId::UnitedStatesVHill],
                    ));
                }
                if !warrant.covers(category, location) {
                    defects.push(ExecutionDefect::OutsideScope {
                        category: category.clone(),
                        location: location.clone(),
                    });
                    rationale.push(RationaleStep::new(
                        "agents may not seize information when the search exceeds the warrant's scope",
                        [CitationId::UnitedStatesVKow, CitationId::UnitedStatesVWalser],
                    ));
                }
            }
            ExecutionEvent::ImageEntireSystem {
                necessity_explained,
                day,
            } => {
                if *day > warrant.execution_window_days {
                    defects.push(ExecutionDefect::WindowExpired { day: *day });
                }
                if *necessity_explained {
                    rationale.push(RationaleStep::new(
                        "imaging the target system for off-site examination is permitted where its necessity is explained",
                        [
                            CitationId::UnitedStatesVHill,
                            CitationId::UnitedStatesVTamura,
                            CitationId::UnitedStatesVHay,
                            CitationId::UnitedStatesVHargus,
                        ],
                    ));
                } else {
                    defects.push(ExecutionDefect::UnjustifiedWholeSystemSeizure);
                    rationale.push(RationaleStep::new(
                        "agents must explain the necessity for seizure of the entire computer system for off-site examination",
                        [CitationId::UnitedStatesVHill],
                    ));
                }
            }
            ExecutionEvent::DiscoverDifferentCrime {
                crime,
                stopped_for_new_warrant,
                ..
            } => {
                if *stopped_for_new_warrant {
                    rationale.push(RationaleStep::new(
                        "on discovering evidence of a different crime, agents stopped and obtained a fresh warrant",
                        [CitationId::UnitedStatesVWalser],
                    ));
                } else {
                    defects.push(ExecutionDefect::PursuedDifferentCrimeWithoutWarrant {
                        crime: crime.clone(),
                    });
                    rationale.push(RationaleStep::new(
                        "agents must stop and obtain a new warrant before pursuing evidence of a different crime",
                        [CitationId::UnitedStatesVWalser],
                    ));
                }
            }
            ExecutionEvent::ForensicExamination { .. } => {
                // Technique and timing are unrestricted over responsive
                // data (§III-A-2-c "Restriction-less").
                rationale.push(RationaleStep::new(
                    "the Fourth Amendment limits neither the examiner's technique over responsive data nor the examination's duration",
                    [
                        CitationId::UnitedStatesVLong,
                        CitationId::UnitedStatesVBurns,
                        CitationId::UnitedStatesVMutschelknaus,
                    ],
                ));
            }
        }
    }

    ExecutionReview { defects, rationale }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warrant() -> WarrantSpec {
        WarrantSpec::for_crime("distribution of contraband images")
            .records("image files")
            .records("browser history")
            .location("the residence")
            .execution_window_days(14)
            .build()
    }

    #[test]
    fn clean_execution() {
        let review = review_execution(
            &warrant(),
            &[
                ExecutionEvent::Seize {
                    category: "image files".into(),
                    location: "the residence".into(),
                    day: 2,
                },
                ExecutionEvent::ForensicExamination {
                    technique: "drive-wide hash comparison".into(),
                    day: 90, // long after the window — fine for examination
                },
            ],
        );
        assert!(review.is_clean(), "defects: {:?}", review.defects());
        assert!(!review.rationale().is_empty());
    }

    #[test]
    fn generic_warrant_flagged() {
        let generic = WarrantSpec::for_crime("fraud").build();
        assert!(!generic.is_sufficiently_particular());
        let review = review_execution(&generic, &[]);
        assert_eq!(review.defects(), &[ExecutionDefect::GenericWarrant]);
    }

    #[test]
    fn out_of_scope_seizure_flagged() {
        let review = review_execution(
            &warrant(),
            &[ExecutionEvent::Seize {
                category: "tax returns".into(),
                location: "the residence".into(),
                day: 1,
            }],
        );
        assert!(matches!(
            review.defects()[0],
            ExecutionDefect::OutsideScope { .. }
        ));
    }

    #[test]
    fn wrong_location_flagged() {
        let review = review_execution(
            &warrant(),
            &[ExecutionEvent::Seize {
                category: "image files".into(),
                location: "the office across town".into(),
                day: 1,
            }],
        );
        assert_eq!(review.defects().len(), 1);
        assert!(review.defects()[0]
            .to_string()
            .contains("exceeds the warrant's scope"));
    }

    #[test]
    fn expired_window_flagged() {
        let review = review_execution(
            &warrant(),
            &[ExecutionEvent::Seize {
                category: "image files".into(),
                location: "the residence".into(),
                day: 30,
            }],
        );
        assert!(review
            .defects()
            .contains(&ExecutionDefect::WindowExpired { day: 30 }));
    }

    #[test]
    fn whole_system_imaging_needs_necessity() {
        let ok = review_execution(
            &warrant(),
            &[ExecutionEvent::ImageEntireSystem {
                necessity_explained: true,
                day: 1,
            }],
        );
        assert!(ok.is_clean());
        let bad = review_execution(
            &warrant(),
            &[ExecutionEvent::ImageEntireSystem {
                necessity_explained: false,
                day: 1,
            }],
        );
        assert_eq!(
            bad.defects(),
            &[ExecutionDefect::UnjustifiedWholeSystemSeizure]
        );
    }

    #[test]
    fn different_crime_requires_fresh_warrant() {
        let stopped = review_execution(
            &warrant(),
            &[ExecutionEvent::DiscoverDifferentCrime {
                crime: "drug ledger".into(),
                stopped_for_new_warrant: true,
                day: 1,
            }],
        );
        assert!(stopped.is_clean());
        let pursued = review_execution(
            &warrant(),
            &[ExecutionEvent::DiscoverDifferentCrime {
                crime: "drug ledger".into(),
                stopped_for_new_warrant: false,
                day: 1,
            }],
        );
        assert!(matches!(
            pursued.defects()[0],
            ExecutionDefect::PursuedDifferentCrimeWithoutWarrant { .. }
        ));
    }

    #[test]
    fn examination_technique_is_unrestricted() {
        let review = review_execution(
            &warrant(),
            &[ExecutionEvent::ForensicExamination {
                technique: "novel carving tool".into(),
                day: 400,
            }],
        );
        assert!(review.is_clean());
        let cites = review.rationale().cited_authorities();
        assert!(cites.contains(&CitationId::UnitedStatesVLong));
        assert!(cites.contains(&CitationId::UnitedStatesVBurns));
    }

    #[test]
    fn multiple_defects_accumulate() {
        let review = review_execution(
            &warrant(),
            &[
                ExecutionEvent::Seize {
                    category: "tax returns".into(),
                    location: "elsewhere".into(),
                    day: 40,
                },
                ExecutionEvent::ImageEntireSystem {
                    necessity_explained: false,
                    day: 41,
                },
            ],
        );
        assert_eq!(review.defects().len(), 4); // window ×2 + scope + imaging
    }

    #[test]
    fn builder_and_display() {
        let w = warrant();
        assert_eq!(w.crime(), "distribution of contraband images");
        assert_eq!(w.record_categories().len(), 2);
        assert_eq!(w.locations().len(), 1);
        assert_eq!(w.execution_window_days(), 14);
        assert!(w.to_string().contains("image files"));
        assert!(w.covers("browser history", "the residence"));
        assert!(!w.covers("browser history", "elsewhere"));
    }
}
