//! # investigation
//!
//! The integration layer of the `lexforensica` workspace: investigation
//! workflows in which every collection step is gated by the
//! [`forensic-law`] compliance engine, evidence lands in a
//! tamper-evident [`evidence`] locker, a [`magistrate`] enforces the
//! factual-standards ladder, and a [`court`] rules on admissibility —
//! the paper's §III process, executable end to end.
//!
//! [`storyline`] wires the workflow to the simulated techniques: the
//! §IV-B seized-server watermark traceback (lawful and rogue variants)
//! and the two-campus private-search check.
//!
//! ```
//! use forensic_law::process::{FactualStandard, LegalProcess};
//! use investigation::workflow::Investigation;
//!
//! let mut inv = Investigation::open("demo");
//! inv.add_fact("ISP identified the subscriber", FactualStandard::ProbableCause);
//! assert!(inv.apply_for(LegalProcess::SearchWarrant, "the residence").is_ok());
//! assert_eq!(inv.strongest_held(), LegalProcess::SearchWarrant);
//! ```
//!
//! [`forensic-law`]: forensic_law

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod case;
pub mod court;
pub mod execution;
pub mod magistrate;
pub mod motions;
pub mod prosecutor;
pub mod storyline;
pub mod workflow;

pub use case::CaseFile;
pub use court::{rule_on, CourtReport};
pub use execution::{seize_under_warrant, SeizureOutcome};
pub use magistrate::{ApplicationDenied, Magistrate, ProcessGrant};
pub use motions::{
    draft_defense_motions, rule_on_motions, MotionGround, MotionRuling, SuppressionMotion,
};
pub use prosecutor::{charging_decision, ChargingDecision, ChargingMemo};
pub use storyline::{
    campus_admin_private_search_assessment, run_seized_server_storyline, SeizedServerOutcome,
};
pub use workflow::{ComplianceRefusal, Investigation};
