//! The court phase: rules on every item in the locker and reports what
//! survives.

use crate::workflow::Investigation;
use evidence::item::ItemId;
use std::fmt;

/// The court's per-item ruling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemRuling {
    /// The item ruled on.
    pub item: ItemId,
    /// The item's label.
    pub label: String,
    /// Whether it was admitted.
    pub admitted: bool,
    /// The stated grounds when excluded.
    pub grounds: String,
}

/// The court's report on a whole case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CourtReport {
    rulings: Vec<ItemRuling>,
}

impl CourtReport {
    /// Per-item rulings, in locker order.
    pub fn rulings(&self) -> &[ItemRuling] {
        &self.rulings
    }

    /// Number of admitted items.
    pub fn admitted_count(&self) -> usize {
        self.rulings.iter().filter(|r| r.admitted).count()
    }

    /// Number of excluded items.
    pub fn excluded_count(&self) -> usize {
        self.rulings.len() - self.admitted_count()
    }

    /// Whether the prosecution retains any evidence at all — the
    /// paper's bottom line: an unlawful technique can cost the case.
    pub fn case_survives(&self) -> bool {
        self.admitted_count() > 0
    }
}

impl fmt::Display for CourtReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "court report: {} admitted, {} excluded",
            self.admitted_count(),
            self.excluded_count()
        )?;
        for r in &self.rulings {
            if r.admitted {
                writeln!(f, "  ✓ {} — admitted", r.label)?;
            } else {
                writeln!(f, "  ✗ {} — excluded ({})", r.label, r.grounds)?;
            }
        }
        Ok(())
    }
}

/// Rules on every item the investigation collected.
pub fn rule_on(investigation: &Investigation) -> CourtReport {
    let locker = investigation.locker();
    let rulings = locker
        .iter()
        .map(|item| {
            let report = locker
                .admissibility(item.id())
                .expect("item exists in its own locker");
            let grounds = if report.is_admissible() {
                String::new()
            } else {
                report
                    .grounds()
                    .iter()
                    .map(|g| g.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            };
            ItemRuling {
                item: item.id(),
                label: item.label().to_string(),
                admitted: report.is_admissible(),
                grounds,
            }
        })
        .collect();
    CourtReport { rulings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forensic_law::prelude::*;
    use forensic_law::process::FactualStandard;

    fn warrantable_action() -> InvestigativeAction {
        InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::SuspectDevice,
            ),
        )
        .build()
    }

    #[test]
    fn lawful_case_survives() {
        let mut inv = Investigation::open("op");
        inv.add_fact("id", FactualStandard::ProbableCause);
        inv.apply_for(LegalProcess::SearchWarrant, "laptop")
            .unwrap();
        inv.collect(&warrantable_action(), "image", vec![1], "agent")
            .unwrap();
        let report = rule_on(&inv);
        assert_eq!(report.admitted_count(), 1);
        assert_eq!(report.excluded_count(), 0);
        assert!(report.case_survives());
        assert!(report.to_string().contains("admitted"));
    }

    #[test]
    fn unlawful_case_collapses() {
        let mut inv = Investigation::open("op");
        let bad = inv.collect_anyway(&warrantable_action(), "image", vec![1], "agent");
        let _derived =
            inv.collect_derived_anyway(&warrantable_action(), "follow-up", vec![2], "agent", [bad]);
        let report = rule_on(&inv);
        assert_eq!(report.admitted_count(), 0);
        assert!(!report.case_survives());
        assert!(report.rulings()[0].grounds.contains("suppressed"));
    }

    #[test]
    fn mixed_case_partial_survival() {
        let mut inv = Investigation::open("op");
        let public = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::PublicForum,
            ),
        )
        .joining_public_protocol()
        .build();
        inv.collect(&public, "public posts", vec![1], "agent")
            .unwrap();
        inv.collect_anyway(&warrantable_action(), "warrantless image", vec![2], "agent");
        let report = rule_on(&inv);
        assert_eq!(report.admitted_count(), 1);
        assert_eq!(report.excluded_count(), 1);
        assert!(report.case_survives());
    }
}
