//! End-to-end storylines from the paper's §IV-B, wiring the legal
//! workflow to the simulated techniques.
//!
//! *Situation one*: investigators seize a web server distributing
//! contraband, obtain a court order for rate observation at the suspects'
//! ISP, run the DSSS watermark through the anonymizing proxy, identify
//! the suspect, and then escalate to a search warrant. Every collection
//! step is gated by the compliance engine.
//!
//! *Situation two*: two campus IT administrators run the same technique
//! on their own gateways as a private search and report the result.

use crate::court::{rule_on, CourtReport};
use crate::workflow::Investigation;
use forensic_law::prelude::*;
use forensic_law::probable_cause::{evaluate_basis, ProbableCauseBasis};
use forensic_law::process::FactualStandard;
use watermark::experiment::{run_trial, TrialOutcome, WatermarkExperimentConfig};

/// The outcome of the situation-one storyline.
#[derive(Debug)]
pub struct SeizedServerOutcome {
    /// The watermark trial result.
    pub trial: TrialOutcome,
    /// Whether the watermark identified the true suspect.
    pub suspect_identified: bool,
    /// The court's report on everything collected.
    pub court: CourtReport,
    /// The grants the investigation obtained, in order.
    pub processes_obtained: Vec<LegalProcess>,
}

/// Builds the rate-observation action of §IV-B: collecting traffic
/// *rates* at the suspects' ISP — pen/trap territory, court order
/// sufficient ("they do not need to collect the entire packet, so they do
/// not need a wiretap warrant").
pub fn rate_observation_action() -> InvestigativeAction {
    InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::InTransit(TransmissionMedium::PublicWiredInternet),
        ),
    )
    .describe("observe per-suspect traffic rates at the ISP")
    .rate_observation_only()
    .build()
}

/// Runs situation one lawfully: seize → subpoena → court order →
/// watermark → warrant. Returns the outcome with the court's blessing.
pub fn run_seized_server_storyline(
    config: &WatermarkExperimentConfig,
    lawful: bool,
) -> SeizedServerOutcome {
    let mut inv = Investigation::open("seized contraband server");
    let mut processes = Vec::new();

    // Step 0: the tip and the server.
    inv.add_fact(
        "traditional investigation found a web server hosting contraband",
        FactualStandard::ProbableCause,
    );

    // Step 1: seize the server under a warrant.
    let warrant_action = InvestigativeAction::builder(
        Actor::law_enforcement(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::stored_opened(),
            DataLocation::SuspectDevice,
        ),
    )
    .describe("seize and image the contraband web server")
    .build();
    let server_image = if lawful {
        inv.apply_for(LegalProcess::SearchWarrant, "the web server")
            .expect("probable cause on record");
        processes.push(LegalProcess::SearchWarrant);
        inv.collect(
            &warrant_action,
            "server image",
            b"server-disk".to_vec(),
            "agent",
        )
        .expect("warrant in hand")
    } else {
        inv.collect_anyway(
            &warrant_action,
            "server image",
            b"server-disk".to_vec(),
            "agent",
        )
    };

    // Step 2: the account list on the server gives articulable facts
    // about downloaders (membership alone is not probable cause —
    // Coreas).
    let membership = evaluate_basis(ProbableCauseBasis::OnlineAccountInformation {
        membership_only: true,
        intent_evidence: false,
    });
    inv.add_fact(
        "server account list names candidate downloaders",
        membership.achieved_standard(),
    );

    // Step 3: court order for rate observation at the suspects' ISP.
    let rate_action = rate_observation_action();
    let assessment = inv.assess(&rate_action);
    debug_assert_eq!(
        assessment.verdict(),
        Verdict::ProcessRequired(LegalProcess::CourtOrder),
        "rate observation is pen/trap territory"
    );
    if lawful {
        inv.apply_for(LegalProcess::CourtOrder, "pen/trap at the suspects' ISP")
            .expect("articulable facts on record");
        processes.push(LegalProcess::CourtOrder);
    }

    // Step 4: run the watermark through the anonymizing proxy.
    let trial = run_trial(config, 0);
    let suspect_identified = trial.watermark_correct();
    let rate_evidence = format!(
        "despreading statistics: {:?}",
        trial
            .detections
            .iter()
            .map(|d| (d.statistic * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    let rate_item = if lawful {
        inv.collect_derived(
            &rate_action,
            "ISP rate series + despreading result",
            rate_evidence.into_bytes(),
            "agent",
            [server_image],
        )
        .expect("court order in hand")
    } else {
        inv.collect_derived_anyway(
            &rate_action,
            "ISP rate series + despreading result",
            rate_evidence.into_bytes(),
            "agent",
            [server_image],
        )
    };

    // Step 5: identification upgrades the record to probable cause
    // against that subscriber (the IP-address path).
    if suspect_identified {
        let pc = evaluate_basis(ProbableCauseBasis::IpAddressIdentification {
            subscriber_identified: true,
            open_wifi: false,
        });
        inv.add_fact(
            "watermark identified the downloading subscriber",
            pc.achieved_standard(),
        );
        // Step 6: warrant for the suspect's residence, evidence derived
        // from the rate observation.
        let home_search = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::SuspectDevice,
            ),
        )
        .describe("search the identified suspect's computer")
        .build();
        if lawful {
            inv.apply_for(LegalProcess::SearchWarrant, "the suspect's residence")
                .expect("probable cause from identification");
            processes.push(LegalProcess::SearchWarrant);
            inv.collect_derived(
                &home_search,
                "suspect's computer image",
                b"suspect-disk".to_vec(),
                "agent",
                [rate_item],
            )
            .expect("warrant in hand");
        } else {
            inv.collect_derived_anyway(
                &home_search,
                "suspect's computer image",
                b"suspect-disk".to_vec(),
                "agent",
                [rate_item],
            );
        }
    }

    SeizedServerOutcome {
        trial,
        suspect_identified,
        court: rule_on(&inv),
        processes_obtained: processes,
    }
}

/// The situation-two legality check: two campus administrators monitor
/// rates on their *own* gateways — a lawful private search the engine
/// clears without process.
pub fn campus_admin_private_search_assessment() -> LegalAssessment {
    let action = InvestigativeAction::builder(
        Actor::system_administrator(),
        DataSpec::new(
            ContentClass::Content,
            Temporality::RealTime,
            DataLocation::InTransit(TransmissionMedium::OwnNetwork),
        ),
    )
    .describe("campus admins watermark and observe rates on their own gateways")
    .rate_observation_only()
    .build();
    ComplianceEngine::new().assess(&action)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> WatermarkExperimentConfig {
        WatermarkExperimentConfig {
            suspects: 4,
            code_degree: 7,
            chip_ms: 300,
            ..WatermarkExperimentConfig::default()
        }
    }

    #[test]
    fn lawful_storyline_identifies_and_survives_court() {
        let outcome = run_seized_server_storyline(&quick_config(), true);
        assert!(outcome.suspect_identified);
        assert!(outcome.court.case_survives());
        assert_eq!(outcome.court.excluded_count(), 0);
        assert_eq!(
            outcome.processes_obtained,
            vec![
                LegalProcess::SearchWarrant,
                LegalProcess::CourtOrder,
                LegalProcess::SearchWarrant
            ]
        );
    }

    #[test]
    fn rogue_storyline_collapses_in_court() {
        let outcome = run_seized_server_storyline(&quick_config(), false);
        // The technique still works...
        assert!(outcome.suspect_identified);
        // ...but nothing survives court.
        assert_eq!(outcome.court.admitted_count(), 0);
        assert!(!outcome.court.case_survives());
    }

    #[test]
    fn rate_observation_needs_court_order_not_wiretap() {
        let a = ComplianceEngine::new().assess(&rate_observation_action());
        assert_eq!(
            a.verdict(),
            Verdict::ProcessRequired(LegalProcess::CourtOrder)
        );
    }

    #[test]
    fn campus_admins_need_no_process() {
        let a = campus_admin_private_search_assessment();
        assert_eq!(a.verdict(), Verdict::NoProcessNeeded);
    }
}
