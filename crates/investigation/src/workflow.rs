//! The compliance-gated investigation workflow: the paper's §III process
//! as an executable state machine.
//!
//! An [`Investigation`] owns a case file, the grants obtained so far, and
//! an evidence locker. Every collection action is assessed by the
//! [`ComplianceEngine`] first; if the required process is not in hand the
//! lawful path refuses ([`Investigation::collect`]) — the unlawful path
//! ([`Investigation::collect_anyway`]) proceeds and lets the court sort
//! it out, which is how the suppression experiment is driven.

use crate::case::{CaseFile, FactId};
use crate::magistrate::{ApplicationDenied, Magistrate, ProcessGrant};
use evidence::item::ItemId;
use evidence::locker::EvidenceLocker;
use forensic_law::action::InvestigativeAction;
use forensic_law::assessment::{LegalAssessment, Verdict};
use forensic_law::batch::{CacheStats, VerdictCache};
use forensic_law::engine::ComplianceEngine;
use forensic_law::process::{FactualStandard, LegalProcess};
use std::fmt;
use std::sync::Arc;

/// A refused collection: the engine demanded more process than held.
#[derive(Debug)]
pub struct ComplianceRefusal {
    /// The process the action required.
    pub required: LegalProcess,
    /// The strongest process actually held.
    pub held: LegalProcess,
    /// The engine's full assessment.
    pub assessment: LegalAssessment,
}

impl fmt::Display for ComplianceRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "collection refused: requires {} but only {} held",
            self.required, self.held
        )
    }
}

impl std::error::Error for ComplianceRefusal {}

/// An investigation in progress.
///
/// Assessments are memoized through a [`VerdictCache`] keyed on the
/// action's [`FactKey`](forensic_law::factkey::FactKey): repeated
/// collections under the same fact pattern (the common case when working
/// through a capture archive) consult the engine once. The cache can be
/// shared across investigations with [`Investigation::open_with_cache`].
#[derive(Debug)]
pub struct Investigation {
    engine: ComplianceEngine,
    verdicts: Arc<VerdictCache>,
    magistrate: Magistrate,
    case: CaseFile,
    grants: Vec<ProcessGrant>,
    locker: EvidenceLocker,
    clock: u64,
}

impl Investigation {
    /// Opens an investigation with a private verdict cache.
    pub fn open(name: impl Into<String>) -> Self {
        Investigation::open_with_cache(name, Arc::new(VerdictCache::new()))
    }

    /// Opens an investigation routing assessments through a shared
    /// verdict cache (e.g. one warmed by a
    /// [`BatchAssessor`](forensic_law::batch::BatchAssessor) sweep or by
    /// parallel investigations over the same fact patterns).
    pub fn open_with_cache(name: impl Into<String>, verdicts: Arc<VerdictCache>) -> Self {
        Investigation {
            engine: ComplianceEngine::new(),
            verdicts,
            magistrate: Magistrate::new(),
            case: CaseFile::new(name),
            grants: Vec::new(),
            locker: EvidenceLocker::new(),
            clock: 0,
        }
    }

    /// Hit/miss counters of the verdict cache serving this investigation.
    pub fn cache_stats(&self) -> CacheStats {
        self.verdicts.stats()
    }

    /// The case file.
    pub fn case(&self) -> &CaseFile {
        &self.case
    }

    /// The evidence locker.
    pub fn locker(&self) -> &EvidenceLocker {
        &self.locker
    }

    /// Mutable locker access, for execution helpers and
    /// failure-injection tests.
    pub fn locker_mut(&mut self) -> &mut EvidenceLocker {
        &mut self.locker
    }

    /// The grants obtained.
    pub fn grants(&self) -> &[ProcessGrant] {
        &self.grants
    }

    /// Adds a fact to the record.
    pub fn add_fact(
        &mut self,
        description: impl Into<String>,
        supports: FactualStandard,
    ) -> FactId {
        self.case.add_fact(description, supports)
    }

    /// Advances the investigation clock (timestamps for custody records).
    pub fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Applies to the magistrate for a process instrument.
    ///
    /// # Errors
    ///
    /// Returns [`ApplicationDenied`] when the record does not meet the
    /// standard.
    pub fn apply_for(
        &mut self,
        process: LegalProcess,
        scope: impl Into<String>,
    ) -> Result<&ProcessGrant, ApplicationDenied> {
        let grant = self.magistrate.review(&self.case, process, scope)?;
        self.grants.push(grant);
        Ok(self.grants.last().expect("just pushed"))
    }

    /// The strongest process currently held.
    pub fn strongest_held(&self) -> LegalProcess {
        self.grants
            .iter()
            .map(|g| g.process)
            .max()
            .unwrap_or(LegalProcess::None)
    }

    /// Assesses an action without acting (memoized per fact key).
    pub fn assess(&self, action: &InvestigativeAction) -> Arc<LegalAssessment> {
        self.verdicts.assess(&self.engine, action)
    }

    /// Lawful collection: refuses when required process is not held.
    ///
    /// On success the evidence enters the locker recorded with both the
    /// required and the held process.
    ///
    /// # Errors
    ///
    /// Returns [`ComplianceRefusal`] when more process is required than
    /// held, or the action is outright unlawful.
    pub fn collect(
        &mut self,
        action: &InvestigativeAction,
        label: impl Into<String>,
        content: Vec<u8>,
        examiner: impl Into<String>,
    ) -> Result<ItemId, Box<ComplianceRefusal>> {
        let assessment = self.verdicts.assess(&self.engine, action);
        let held = self.strongest_held();
        let lawful = assessment.is_lawful_with(held);
        let required = match assessment.verdict() {
            Verdict::NoProcessNeeded => LegalProcess::None,
            Verdict::ProcessRequired(p) => p,
            Verdict::UnlawfulForPrivateActor => {
                return Err(Box::new(ComplianceRefusal {
                    required: LegalProcess::WiretapOrder,
                    held,
                    assessment: (*assessment).clone(),
                }))
            }
        };
        if !lawful {
            return Err(Box::new(ComplianceRefusal {
                required,
                held,
                assessment: (*assessment).clone(),
            }));
        }
        let t = self.tick();
        Ok(self
            .locker
            .acquire(label, content, examiner, t, required, held))
    }

    /// Unlawful collection: proceeds **without invoking any process**
    /// (grants in hand do not extend to actions outside their scope),
    /// recording the shortfall so the court will suppress. This models
    /// the §I warning, not a recommendation.
    pub fn collect_anyway(
        &mut self,
        action: &InvestigativeAction,
        label: impl Into<String>,
        content: Vec<u8>,
        examiner: impl Into<String>,
    ) -> ItemId {
        let assessment = self.verdicts.assess(&self.engine, action);
        let required = match assessment.verdict() {
            Verdict::NoProcessNeeded => LegalProcess::None,
            Verdict::ProcessRequired(p) => p,
            // For a private actor the act itself is forbidden; model as
            // requiring the top of the ladder so it always suppresses.
            Verdict::UnlawfulForPrivateActor => LegalProcess::WiretapOrder,
        };
        let t = self.tick();
        self.locker
            .acquire(label, content, examiner, t, required, LegalProcess::None)
    }

    /// Derived collection (fruit links), lawful path.
    ///
    /// # Errors
    ///
    /// Returns [`ComplianceRefusal`] like [`Investigation::collect`].
    pub fn collect_derived(
        &mut self,
        action: &InvestigativeAction,
        label: impl Into<String>,
        content: Vec<u8>,
        examiner: impl Into<String>,
        parents: impl IntoIterator<Item = ItemId>,
    ) -> Result<ItemId, Box<ComplianceRefusal>> {
        let assessment = self.verdicts.assess(&self.engine, action);
        let held = self.strongest_held();
        if !assessment.is_lawful_with(held) {
            let required = assessment
                .verdict()
                .required_process()
                .unwrap_or(LegalProcess::WiretapOrder);
            return Err(Box::new(ComplianceRefusal {
                required,
                held,
                assessment: (*assessment).clone(),
            }));
        }
        let required = assessment
            .verdict()
            .required_process()
            .unwrap_or(LegalProcess::None);
        let t = self.tick();
        Ok(self
            .locker
            .acquire_derived(label, content, examiner, t, required, held, parents))
    }

    /// Unlawful derived collection (no process invoked, like
    /// [`Investigation::collect_anyway`]).
    pub fn collect_derived_anyway(
        &mut self,
        action: &InvestigativeAction,
        label: impl Into<String>,
        content: Vec<u8>,
        examiner: impl Into<String>,
        parents: impl IntoIterator<Item = ItemId>,
    ) -> ItemId {
        let assessment = self.verdicts.assess(&self.engine, action);
        let required = assessment
            .verdict()
            .required_process()
            .unwrap_or(LegalProcess::WiretapOrder);
        let t = self.tick();
        self.locker.acquire_derived(
            label,
            content,
            examiner,
            t,
            required,
            LegalProcess::None,
            parents,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forensic_law::prelude::*;

    fn device_search_action() -> InvestigativeAction {
        InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::SuspectDevice,
            ),
        )
        .describe("search the suspect's laptop")
        .build()
    }

    #[test]
    fn collection_refused_without_warrant() {
        let mut inv = Investigation::open("op");
        let err = inv
            .collect(&device_search_action(), "laptop image", vec![1], "agent")
            .unwrap_err();
        assert_eq!(err.required, LegalProcess::SearchWarrant);
        assert_eq!(err.held, LegalProcess::None);
        assert!(err.to_string().contains("search warrant"));
        assert!(inv.locker().is_empty());
    }

    #[test]
    fn lawful_path_facts_then_warrant_then_collection() {
        let mut inv = Investigation::open("op");
        // Not enough facts yet.
        assert!(inv
            .apply_for(LegalProcess::SearchWarrant, "the laptop")
            .is_err());
        inv.add_fact(
            "subscriber identified via IP",
            FactualStandard::ProbableCause,
        );
        inv.apply_for(LegalProcess::SearchWarrant, "the laptop")
            .unwrap();
        assert_eq!(inv.strongest_held(), LegalProcess::SearchWarrant);
        let id = inv
            .collect(&device_search_action(), "laptop image", vec![1, 2], "agent")
            .unwrap();
        assert!(inv.locker().admissibility(id).unwrap().is_admissible());
    }

    #[test]
    fn unlawful_collection_gets_suppressed() {
        let mut inv = Investigation::open("op");
        let id = inv.collect_anyway(&device_search_action(), "laptop image", vec![1], "agent");
        assert!(!inv.locker().admissibility(id).unwrap().is_admissible());
    }

    #[test]
    fn derived_taint_flows() {
        let mut inv = Investigation::open("op");
        let bad = inv.collect_anyway(&device_search_action(), "image", vec![1], "agent");
        // A follow-up public-records action is itself lawful...
        let public = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::PublicForum,
            ),
        )
        .joining_public_protocol()
        .build();
        let child = inv
            .collect_derived(&public, "posts found via image", vec![2], "agent", [bad])
            .unwrap();
        // ...but the derivation link poisons it.
        assert!(!inv.locker().admissibility(child).unwrap().is_admissible());
    }

    #[test]
    fn no_process_needed_actions_collect_freely() {
        let mut inv = Investigation::open("op");
        let public = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::RealTime,
                DataLocation::PublicForum,
            ),
        )
        .joining_public_protocol()
        .build();
        let id = inv
            .collect(&public, "chat room logs", vec![7], "agent")
            .unwrap();
        assert!(inv.locker().admissibility(id).unwrap().is_admissible());
    }

    #[test]
    fn assess_is_side_effect_free() {
        let inv = Investigation::open("op");
        let a = inv.assess(&device_search_action());
        assert!(a.verdict().needs_process());
        assert!(inv.locker().is_empty());
        assert!(inv.grants().is_empty());
    }

    #[test]
    fn repeated_assessments_hit_the_cache() {
        let inv = Investigation::open("op");
        let action = device_search_action();
        let first = inv.assess(&action);
        let second = inv.assess(&action);
        assert_eq!(first.verdict(), second.verdict());
        let stats = inv.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn collect_paths_share_the_cache_with_assess() {
        let mut inv = Investigation::open("op");
        let action = device_search_action();
        inv.assess(&action); // miss
        let _ = inv.collect(&action, "image", vec![1], "agent"); // hit
        inv.collect_anyway(&action, "image", vec![1], "agent"); // hit
        let stats = inv.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn investigations_can_share_a_warm_cache() {
        let cache = Arc::new(VerdictCache::new());
        let first = Investigation::open_with_cache("op1", Arc::clone(&cache));
        first.assess(&device_search_action());
        let second = Investigation::open_with_cache("op2", Arc::clone(&cache));
        second.assess(&device_search_action());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cached_verdicts_match_a_fresh_engine() {
        let mut inv = Investigation::open("op");
        let action = device_search_action();
        inv.assess(&action);
        let err = inv
            .collect(&action, "laptop image", vec![1], "agent")
            .unwrap_err();
        let fresh = ComplianceEngine::new().assess(&action);
        assert_eq!(err.assessment.verdict(), fresh.verdict());
        assert_eq!(err.assessment.rationale(), fresh.rationale());
    }
}
