//! The issuing authority: reviews process applications against the
//! factual standards ladder.

use crate::case::CaseFile;
use forensic_law::process::{FactualStandard, LegalProcess};
use std::fmt;

/// A granted instrument, scoped by free-text description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessGrant {
    /// The instrument granted.
    pub process: LegalProcess,
    /// What the grant authorizes (particularity).
    pub scope: String,
}

/// Why an application was denied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplicationDenied {
    /// The process applied for.
    pub requested: LegalProcess,
    /// The standard that process requires.
    pub required_standard: FactualStandard,
    /// The standard the record actually supported.
    pub record_standard: FactualStandard,
}

impl fmt::Display for ApplicationDenied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "application for a {} denied: requires {}, record supports only {}",
            self.requested, self.required_standard, self.record_standard
        )
    }
}

impl std::error::Error for ApplicationDenied {}

/// A magistrate/judge that rules on applications.
///
/// # Examples
///
/// ```
/// use forensic_law::process::{FactualStandard, LegalProcess};
/// use investigation::case::CaseFile;
/// use investigation::magistrate::Magistrate;
///
/// let mut case = CaseFile::new("c");
/// case.add_fact("tip", FactualStandard::MereSuspicion);
/// let magistrate = Magistrate::new();
///
/// assert!(magistrate.review(&case, LegalProcess::Subpoena, "ISP logs").is_ok());
/// assert!(magistrate.review(&case, LegalProcess::SearchWarrant, "the residence").is_err());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Magistrate {
    _private: (),
}

impl Magistrate {
    /// Creates a magistrate.
    pub fn new() -> Self {
        Magistrate::default()
    }

    /// Reviews an application for `process` on the current record.
    ///
    /// # Errors
    ///
    /// Returns [`ApplicationDenied`] when the record does not meet the
    /// required standard.
    pub fn review(
        &self,
        case: &CaseFile,
        process: LegalProcess,
        scope: impl Into<String>,
    ) -> Result<ProcessGrant, ApplicationDenied> {
        let record = case.strongest_standard();
        if record.suffices_for(process) {
            Ok(ProcessGrant {
                process,
                scope: scope.into(),
            })
        } else {
            Err(ApplicationDenied {
                requested: process,
                required_standard: process.required_standard(),
                record_standard: record,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_enforced() {
        let magistrate = Magistrate::new();
        let mut case = CaseFile::new("c");
        assert!(magistrate
            .review(&case, LegalProcess::Subpoena, "x")
            .is_err());
        case.add_fact("tip", FactualStandard::MereSuspicion);
        assert!(magistrate
            .review(&case, LegalProcess::Subpoena, "x")
            .is_ok());
        assert!(magistrate
            .review(&case, LegalProcess::CourtOrder, "x")
            .is_err());
        case.add_fact("facts", FactualStandard::SpecificArticulableFacts);
        assert!(magistrate
            .review(&case, LegalProcess::CourtOrder, "x")
            .is_ok());
        assert!(magistrate
            .review(&case, LegalProcess::SearchWarrant, "x")
            .is_err());
        case.add_fact("id", FactualStandard::ProbableCause);
        assert!(magistrate
            .review(&case, LegalProcess::SearchWarrant, "x")
            .is_ok());
        assert!(magistrate
            .review(&case, LegalProcess::WiretapOrder, "x")
            .is_err());
    }

    #[test]
    fn grant_carries_scope() {
        let magistrate = Magistrate::new();
        let mut case = CaseFile::new("c");
        case.add_fact("pc", FactualStandard::ProbableCausePlus);
        let grant = magistrate
            .review(&case, LegalProcess::WiretapOrder, "suspect's DSL line")
            .unwrap();
        assert_eq!(grant.process, LegalProcess::WiretapOrder);
        assert_eq!(grant.scope, "suspect's DSL line");
    }

    #[test]
    fn denial_message_explains() {
        let magistrate = Magistrate::new();
        let case = CaseFile::new("c");
        let denial = magistrate
            .review(&case, LegalProcess::SearchWarrant, "x")
            .unwrap_err();
        let msg = denial.to_string();
        assert!(msg.contains("search warrant"));
        assert!(msg.contains("probable cause"));
    }

    #[test]
    fn none_process_always_grantable() {
        let magistrate = Magistrate::new();
        let case = CaseFile::new("c");
        assert!(magistrate.review(&case, LegalProcess::None, "x").is_ok());
    }
}
