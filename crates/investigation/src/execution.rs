//! Warrant execution bound to the evidence locker: in-scope seizures are
//! admissible; seizures that exceed the warrant's scope (or its window)
//! are treated as warrantless and suppressed — the paper's §III-A-2
//! warning ("agents may not be able to seize all information legally if
//! the search exceeds the scope of the search warrant").

use crate::workflow::Investigation;
use evidence::item::ItemId;
use forensic_law::process::LegalProcess;
use forensic_law::warrant::{review_execution, ExecutionEvent, WarrantSpec};

/// The outcome of one warrant-backed seizure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeizureOutcome {
    /// The evidence item created.
    pub item: ItemId,
    /// Whether the seizure was within the warrant's authority.
    pub within_scope: bool,
    /// Defect descriptions when out of scope.
    pub defects: Vec<String>,
}

/// Seizes records under a warrant, reviewing the execution event against
/// the warrant's scope. In-scope seizures enter the locker backed by the
/// warrant; out-of-scope seizures enter backed by *nothing* (and will be
/// suppressed at court).
pub fn seize_under_warrant(
    investigation: &mut Investigation,
    warrant: &WarrantSpec,
    category: impl Into<String>,
    location: impl Into<String>,
    day: u32,
    content: Vec<u8>,
    examiner: impl Into<String>,
) -> SeizureOutcome {
    let category = category.into();
    let location = location.into();
    let event = ExecutionEvent::Seize {
        category: category.clone(),
        location: location.clone(),
        day,
    };
    let review = review_execution(warrant, &[event]);
    let within_scope = review.is_clean();
    let held = if within_scope {
        LegalProcess::SearchWarrant
    } else {
        // An overbroad seizure enjoys no warrant protection.
        LegalProcess::None
    };
    let t = investigation.tick();
    let label = format!("{category} seized at {location}");
    let item = investigation.locker_mut().acquire(
        label,
        content,
        examiner,
        t,
        LegalProcess::SearchWarrant,
        held,
    );
    SeizureOutcome {
        item,
        within_scope,
        defects: review.defects().iter().map(|d| d.to_string()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::court::rule_on;
    use forensic_law::process::FactualStandard;

    fn warrant() -> WarrantSpec {
        WarrantSpec::for_crime("fraud")
            .records("accounting records")
            .location("the office")
            .execution_window_days(14)
            .build()
    }

    fn investigation_with_warrant() -> Investigation {
        let mut inv = Investigation::open("exec test");
        inv.add_fact("probable cause", FactualStandard::ProbableCause);
        inv.apply_for(LegalProcess::SearchWarrant, "the office")
            .unwrap();
        inv
    }

    #[test]
    fn in_scope_seizure_admitted() {
        let mut inv = investigation_with_warrant();
        let outcome = seize_under_warrant(
            &mut inv,
            &warrant(),
            "accounting records",
            "the office",
            3,
            vec![1, 2],
            "agent",
        );
        assert!(outcome.within_scope);
        assert!(outcome.defects.is_empty());
        assert!(inv
            .locker()
            .admissibility(outcome.item)
            .unwrap()
            .is_admissible());
    }

    #[test]
    fn out_of_scope_seizure_suppressed() {
        let mut inv = investigation_with_warrant();
        let outcome = seize_under_warrant(
            &mut inv,
            &warrant(),
            "personal diary",
            "the office",
            3,
            vec![9],
            "agent",
        );
        assert!(!outcome.within_scope);
        assert!(!outcome.defects.is_empty());
        assert!(!inv
            .locker()
            .admissibility(outcome.item)
            .unwrap()
            .is_admissible());
    }

    #[test]
    fn expired_window_seizure_suppressed() {
        let mut inv = investigation_with_warrant();
        let outcome = seize_under_warrant(
            &mut inv,
            &warrant(),
            "accounting records",
            "the office",
            60,
            vec![1],
            "agent",
        );
        assert!(!outcome.within_scope);
        assert!(outcome.defects[0].contains("after the window"));
    }

    #[test]
    fn mixed_execution_partial_survival() {
        let mut inv = investigation_with_warrant();
        let good = seize_under_warrant(
            &mut inv,
            &warrant(),
            "accounting records",
            "the office",
            1,
            vec![1],
            "agent",
        );
        let bad = seize_under_warrant(
            &mut inv,
            &warrant(),
            "tax returns",
            "the home",
            1,
            vec![2],
            "agent",
        );
        let report = rule_on(&inv);
        assert_eq!(report.admitted_count(), 1);
        assert_eq!(report.excluded_count(), 1);
        assert!(inv
            .locker()
            .admissibility(good.item)
            .unwrap()
            .is_admissible());
        assert!(!inv
            .locker()
            .admissibility(bad.item)
            .unwrap()
            .is_admissible());
    }
}
