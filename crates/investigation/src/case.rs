//! Case files: the factual record an investigation accumulates, and the
//! factual standard it currently supports.
//!
//! The paper's ladder (§II-A, §III-A-1): "Merely a suspicion is enough to
//! apply for a subpoena. Some 'specific and articulable facts' are needed
//! to apply for a court order. Probable cause is necessary to apply for a
//! search warrant." Facts enter the case file with the standard they
//! individually support; the case supports the strongest standard any of
//! its (unsuppressed) facts establishes.

use forensic_law::process::FactualStandard;
use std::fmt;

/// Identifier of a fact within a case file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactId(pub usize);

/// One fact in the record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    description: String,
    supports: FactualStandard,
    struck: bool,
}

impl Fact {
    /// What the fact asserts.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The standard this fact alone supports.
    pub fn supports(&self) -> FactualStandard {
        self.supports
    }

    /// Whether the fact has been struck (e.g. because its source evidence
    /// was suppressed).
    pub fn is_struck(&self) -> bool {
        self.struck
    }
}

/// The accumulating factual record of an investigation.
///
/// # Examples
///
/// ```
/// use forensic_law::process::{FactualStandard, LegalProcess};
/// use investigation::case::CaseFile;
///
/// let mut case = CaseFile::new("operation lantern");
/// case.add_fact("anonymous tip about a file server", FactualStandard::MereSuspicion);
/// assert!(case.supports_application_for(LegalProcess::Subpoena));
/// assert!(!case.supports_application_for(LegalProcess::SearchWarrant));
///
/// case.add_fact(
///     "ISP identified the subscriber behind the IP address",
///     FactualStandard::ProbableCause,
/// );
/// assert!(case.supports_application_for(LegalProcess::SearchWarrant));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseFile {
    name: String,
    facts: Vec<Fact>,
}

impl CaseFile {
    /// Opens an empty case file.
    pub fn new(name: impl Into<String>) -> Self {
        CaseFile {
            name: name.into(),
            facts: Vec::new(),
        }
    }

    /// The case name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a fact supporting the given standard.
    pub fn add_fact(
        &mut self,
        description: impl Into<String>,
        supports: FactualStandard,
    ) -> FactId {
        self.facts.push(Fact {
            description: description.into(),
            supports,
            struck: false,
        });
        FactId(self.facts.len() - 1)
    }

    /// Strikes a fact from the record (its support no longer counts).
    pub fn strike(&mut self, id: FactId) {
        if let Some(f) = self.facts.get_mut(id.0) {
            f.struck = true;
        }
    }

    /// All facts (including struck ones, flagged).
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// The strongest standard the unstruck record supports.
    pub fn strongest_standard(&self) -> FactualStandard {
        self.facts
            .iter()
            .filter(|f| !f.struck)
            .map(|f| f.supports)
            .max()
            .unwrap_or(FactualStandard::None)
    }

    /// Whether the record supports applying for the given process.
    pub fn supports_application_for(&self, process: forensic_law::process::LegalProcess) -> bool {
        self.strongest_standard().suffices_for(process)
    }
}

impl fmt::Display for CaseFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "case \"{}\" — record supports {}",
            self.name,
            self.strongest_standard()
        )?;
        for (i, fact) in self.facts.iter().enumerate() {
            let mark = if fact.struck { " [struck]" } else { "" };
            writeln!(
                f,
                "  f{}: {} ({}){}",
                i, fact.description, fact.supports, mark
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forensic_law::process::LegalProcess;

    #[test]
    fn empty_case_supports_nothing() {
        let case = CaseFile::new("empty");
        assert_eq!(case.strongest_standard(), FactualStandard::None);
        assert!(case.supports_application_for(LegalProcess::None));
        assert!(!case.supports_application_for(LegalProcess::Subpoena));
    }

    #[test]
    fn standards_accumulate_by_max() {
        let mut case = CaseFile::new("c");
        case.add_fact("tip", FactualStandard::MereSuspicion);
        assert_eq!(case.strongest_standard(), FactualStandard::MereSuspicion);
        case.add_fact("logs", FactualStandard::SpecificArticulableFacts);
        assert_eq!(
            case.strongest_standard(),
            FactualStandard::SpecificArticulableFacts
        );
        // A weaker later fact does not lower the record.
        case.add_fact("rumor", FactualStandard::MereSuspicion);
        assert_eq!(
            case.strongest_standard(),
            FactualStandard::SpecificArticulableFacts
        );
    }

    #[test]
    fn striking_removes_support() {
        let mut case = CaseFile::new("c");
        let strong = case.add_fact("identification", FactualStandard::ProbableCause);
        case.add_fact("tip", FactualStandard::MereSuspicion);
        assert!(case.supports_application_for(LegalProcess::SearchWarrant));
        case.strike(strong);
        assert_eq!(case.strongest_standard(), FactualStandard::MereSuspicion);
        assert!(!case.supports_application_for(LegalProcess::SearchWarrant));
        assert!(case.facts()[strong.0].is_struck());
    }

    #[test]
    fn display_lists_facts() {
        let mut case = CaseFile::new("op");
        let id = case.add_fact("tip", FactualStandard::MereSuspicion);
        case.strike(id);
        let s = case.to_string();
        assert!(s.contains("op"));
        assert!(s.contains("[struck]"));
    }
}
