//! Motion practice: the defense moves to suppress, the prosecution
//! responds, the court rules with a written opinion — the adversarial
//! process that actually applies the doctrines in [`forensic_law`].
//!
//! This is where the paper's warning bites in practice: a technique is
//! only as useful as the evidence that survives the suppression hearing.

use crate::workflow::Investigation;
use evidence::item::ItemId;
use forensic_law::process::LegalProcess;
use std::fmt;

/// A ground the defense asserts for suppression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MotionGround {
    /// The collection lacked the required process.
    WarrantlessCollection,
    /// The item derives from unlawfully collected evidence.
    FruitOfPoisonousTree,
    /// The item's integrity or custody record is defective.
    ChainOfCustodyDefect,
}

impl fmt::Display for MotionGround {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MotionGround::WarrantlessCollection => "warrantless collection",
            MotionGround::FruitOfPoisonousTree => "fruit of the poisonous tree",
            MotionGround::ChainOfCustodyDefect => "chain-of-custody defect",
        };
        f.write_str(s)
    }
}

/// A defense motion to suppress one item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressionMotion {
    /// The challenged item.
    pub item: ItemId,
    /// The asserted ground.
    pub ground: MotionGround,
}

/// The court's ruling on one motion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotionRuling {
    /// The motion ruled on.
    pub motion: SuppressionMotion,
    /// Whether the motion was granted (item suppressed).
    pub granted: bool,
    /// The court's explanation.
    pub opinion: String,
}

impl fmt::Display for MotionRuling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "motion to suppress {} ({}): {} — {}",
            self.motion.item,
            self.motion.ground,
            if self.granted { "GRANTED" } else { "DENIED" },
            self.opinion
        )
    }
}

/// Drafts every colorable suppression motion against the locker — what a
/// competent defense would file.
pub fn draft_defense_motions(investigation: &Investigation) -> Vec<SuppressionMotion> {
    let locker = investigation.locker();
    let mut motions = Vec::new();
    for item in locker.iter() {
        let auth = item.acquisition().authority;
        if !auth.was_lawful() {
            motions.push(SuppressionMotion {
                item: item.id(),
                ground: MotionGround::WarrantlessCollection,
            });
        }
        if !item.verify_integrity() {
            motions.push(SuppressionMotion {
                item: item.id(),
                ground: MotionGround::ChainOfCustodyDefect,
            });
        }
        // Derivative taint: challenge everything whose admissibility
        // report is derivative-suppressed.
        if let Ok(report) = locker.admissibility(item.id()) {
            let derivative = report
                .grounds()
                .iter()
                .any(|g| g.to_string().contains("fruit of poisonous tree"));
            if derivative {
                motions.push(SuppressionMotion {
                    item: item.id(),
                    ground: MotionGround::FruitOfPoisonousTree,
                });
            }
        }
    }
    motions
}

/// Rules on a batch of motions against the locker's actual record.
pub fn rule_on_motions(
    investigation: &Investigation,
    motions: &[SuppressionMotion],
) -> Vec<MotionRuling> {
    let locker = investigation.locker();
    motions
        .iter()
        .map(|m| {
            let Ok(item) = locker.item(m.item) else {
                return MotionRuling {
                    motion: m.clone(),
                    granted: false,
                    opinion: "no such item is in evidence".to_string(),
                };
            };
            let report = locker
                .admissibility(m.item)
                .expect("item exists");
            let (granted, opinion) = match m.ground {
                MotionGround::WarrantlessCollection => {
                    let auth = item.acquisition().authority;
                    if !auth.was_lawful() {
                        (
                            true,
                            format!(
                                "collection required {} but only {} was held; the evidence is suppressed",
                                auth.required, auth.held
                            ),
                        )
                    } else if auth.required == LegalProcess::None {
                        (
                            false,
                            "no process was required for this collection".to_string(),
                        )
                    } else {
                        (
                            false,
                            format!("the {} in hand satisfied the requirement", auth.held),
                        )
                    }
                }
                MotionGround::FruitOfPoisonousTree => {
                    let derivative = report.grounds().iter().any(|g| {
                        g.to_string().contains("fruit of poisonous tree")
                    });
                    if derivative {
                        (
                            true,
                            "the item derives from suppressed evidence and falls with it"
                                .to_string(),
                        )
                    } else {
                        (
                            false,
                            "no suppressed ancestor taints this item".to_string(),
                        )
                    }
                }
                MotionGround::ChainOfCustodyDefect => {
                    if !item.verify_integrity() {
                        (
                            true,
                            "the item no longer matches its acquisition digest".to_string(),
                        )
                    } else if locker.custody_log().verify().is_err() {
                        (true, "the custody log fails verification".to_string())
                    } else {
                        (
                            false,
                            "digest and custody chain verify intact".to_string(),
                        )
                    }
                }
            };
            MotionRuling {
                motion: m.clone(),
                granted,
                opinion,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use forensic_law::prelude::*;
    use forensic_law::process::FactualStandard;

    fn device_action() -> InvestigativeAction {
        InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::SuspectDevice,
            ),
        )
        .build()
    }

    fn public_action() -> InvestigativeAction {
        InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::PublicForum,
            ),
        )
        .joining_public_protocol()
        .build()
    }

    #[test]
    fn defense_finds_the_warrantless_item() {
        let mut inv = Investigation::open("m");
        inv.collect(&public_action(), "posts", vec![1], "agent")
            .unwrap();
        let bad = inv.collect_anyway(&device_action(), "image", vec![2], "agent");
        let motions = draft_defense_motions(&inv);
        assert_eq!(motions.len(), 1);
        assert_eq!(motions[0].item, bad);
        assert_eq!(motions[0].ground, MotionGround::WarrantlessCollection);
    }

    #[test]
    fn court_grants_meritorious_denies_frivolous() {
        let mut inv = Investigation::open("m");
        let good = inv
            .collect(&public_action(), "posts", vec![1], "agent")
            .unwrap();
        let bad = inv.collect_anyway(&device_action(), "image", vec![2], "agent");
        let motions = vec![
            SuppressionMotion {
                item: bad,
                ground: MotionGround::WarrantlessCollection,
            },
            // Frivolous: the public collection needed nothing.
            SuppressionMotion {
                item: good,
                ground: MotionGround::WarrantlessCollection,
            },
        ];
        let rulings = rule_on_motions(&inv, &motions);
        assert!(rulings[0].granted);
        assert!(rulings[0].opinion.contains("suppressed"));
        assert!(!rulings[1].granted);
        assert!(rulings[1].opinion.contains("no process was required"));
    }

    #[test]
    fn fruit_motion_follows_derivation() {
        let mut inv = Investigation::open("m");
        let bad = inv.collect_anyway(&device_action(), "image", vec![1], "agent");
        let child = inv
            .collect_derived(&public_action(), "follow-up", vec![2], "agent", [bad])
            .unwrap();
        let motions = draft_defense_motions(&inv);
        assert!(motions
            .iter()
            .any(|m| m.item == child && m.ground == MotionGround::FruitOfPoisonousTree));
        let rulings = rule_on_motions(&inv, &motions);
        for r in &rulings {
            assert!(r.granted, "{r}");
        }
    }

    #[test]
    fn custody_motion_granted_on_tamper() {
        let mut inv = Investigation::open("m");
        let item = inv
            .collect(&public_action(), "posts", vec![1, 2], "agent")
            .unwrap();
        inv.locker_mut().item_mut(item).unwrap().tamper(0);
        let motions = draft_defense_motions(&inv);
        assert!(motions
            .iter()
            .any(|m| m.ground == MotionGround::ChainOfCustodyDefect));
        let rulings = rule_on_motions(&inv, &motions);
        assert!(rulings.iter().any(|r| r.granted));
    }

    #[test]
    fn lawful_record_draws_no_motions() {
        let mut inv = Investigation::open("m");
        inv.add_fact("pc", FactualStandard::ProbableCause);
        inv.apply_for(LegalProcess::SearchWarrant, "device")
            .unwrap();
        inv.collect(&device_action(), "image", vec![1], "agent")
            .unwrap();
        assert!(draft_defense_motions(&inv).is_empty());
    }

    #[test]
    fn unknown_item_motion_denied() {
        let inv = Investigation::open("m");
        let rulings = rule_on_motions(
            &inv,
            &[SuppressionMotion {
                item: ItemId(42),
                ground: MotionGround::WarrantlessCollection,
            }],
        );
        assert!(!rulings[0].granted);
        assert!(rulings[0].opinion.contains("no such item"));
    }

    #[test]
    fn ruling_display() {
        let r = MotionRuling {
            motion: SuppressionMotion {
                item: ItemId(1),
                ground: MotionGround::FruitOfPoisonousTree,
            },
            granted: true,
            opinion: "falls with its source".into(),
        };
        let text = r.to_string();
        assert!(text.contains("GRANTED"));
        assert!(text.contains("fruit"));
    }
}
