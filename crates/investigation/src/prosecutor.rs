//! The charging decision: does the *admissible* record identify the
//! person and the intent, or only a machine?
//!
//! The paper's §III-A-2 purposes come together here: contraband on the
//! drive is necessary but not sufficient — the technique should "prove
//! the action of a particular individual", "confirm that a virus or
//! other piece of malware was not responsible", and "show that a
//! defendant had knowledge of the particular subject". A prosecutor with
//! suppressed evidence or machine-only attribution declines.

use crate::court::{rule_on, CourtReport};
use crate::workflow::Investigation;
use forensic_law::attribution::{AttributionRecord, AttributionStrength};
use std::fmt;

/// The prosecutor's decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChargingDecision {
    /// Charge: admissible evidence plus person-and-intent attribution.
    Charge,
    /// Investigate further: evidence survives but attribution is
    /// incomplete.
    InvestigateFurther,
    /// Decline: nothing admissible remains.
    Decline,
}

impl fmt::Display for ChargingDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChargingDecision::Charge => "charge",
            ChargingDecision::InvestigateFurther => "investigate further",
            ChargingDecision::Decline => "decline prosecution",
        };
        f.write_str(s)
    }
}

/// The memo explaining the decision.
#[derive(Debug, Clone)]
pub struct ChargingMemo {
    decision: ChargingDecision,
    court: CourtReport,
    attribution: AttributionStrength,
    reasons: Vec<String>,
}

impl ChargingMemo {
    /// The decision.
    pub fn decision(&self) -> ChargingDecision {
        self.decision
    }

    /// The underlying court report.
    pub fn court(&self) -> &CourtReport {
        &self.court
    }

    /// The attribution strength considered.
    pub fn attribution(&self) -> AttributionStrength {
        self.attribution
    }

    /// The stated reasons.
    pub fn reasons(&self) -> &[String] {
        &self.reasons
    }
}

impl fmt::Display for ChargingMemo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "charging decision: {}", self.decision)?;
        for r in &self.reasons {
            writeln!(f, "  - {r}")?;
        }
        Ok(())
    }
}

/// Makes the charging decision for an investigation with its attribution
/// record.
pub fn charging_decision(
    investigation: &Investigation,
    attribution: &AttributionRecord,
) -> ChargingMemo {
    let court = rule_on(investigation);
    let strength = attribution.strength();
    let mut reasons = Vec::new();

    let decision = if !court.case_survives() {
        reasons.push(format!(
            "no admissible evidence remains ({} items excluded)",
            court.excluded_count()
        ));
        ChargingDecision::Decline
    } else {
        reasons.push(format!(
            "{} admissible item(s) support the elements",
            court.admitted_count()
        ));
        match strength {
            AttributionStrength::PersonAndIntent => {
                reasons.push(
                    "individual action proven, malware excluded, knowledge shown".to_string(),
                );
                ChargingDecision::Charge
            }
            AttributionStrength::Partial | AttributionStrength::MachineOnly => {
                reasons.push(format!("attribution {strength}"));
                for w in attribution.weaknesses() {
                    reasons.push(format!("open defense argument: {w}"));
                }
                ChargingDecision::InvestigateFurther
            }
        }
    };
    ChargingMemo {
        decision,
        court,
        attribution: strength,
        reasons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forensic_law::attribution::AttributionEvidence;
    use forensic_law::prelude::*;
    use forensic_law::process::FactualStandard;

    fn lawful_investigation() -> Investigation {
        let mut inv = Investigation::open("charge test");
        inv.add_fact("pc", FactualStandard::ProbableCause);
        inv.apply_for(LegalProcess::SearchWarrant, "device")
            .unwrap();
        let device = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::SuspectDevice,
            ),
        )
        .build();
        inv.collect(&device, "contraband image", vec![1], "agent")
            .unwrap();
        inv
    }

    fn full_attribution() -> AttributionRecord {
        let mut a = AttributionRecord::new();
        a.add(AttributionEvidence::IndividualAction {
            others_had_access: false,
        });
        a.add(AttributionEvidence::MalwareAnalysis {
            malware_excluded: true,
        });
        a.add(AttributionEvidence::KnowledgeIndicators {
            tied_to_defendant: true,
        });
        a
    }

    #[test]
    fn full_case_charges() {
        let memo = charging_decision(&lawful_investigation(), &full_attribution());
        assert_eq!(memo.decision(), ChargingDecision::Charge);
        assert_eq!(memo.attribution(), AttributionStrength::PersonAndIntent);
        assert!(memo.to_string().contains("charge"));
    }

    #[test]
    fn machine_only_attribution_keeps_investigating() {
        let memo = charging_decision(&lawful_investigation(), &AttributionRecord::new());
        assert_eq!(memo.decision(), ChargingDecision::InvestigateFurther);
        assert!(memo.reasons().iter().any(|r| r.contains("machine only")));
    }

    #[test]
    fn suppressed_case_declines_despite_attribution() {
        let mut inv = Investigation::open("rogue");
        let device = InvestigativeAction::builder(
            Actor::law_enforcement(),
            DataSpec::new(
                ContentClass::Content,
                Temporality::stored_opened(),
                DataLocation::SuspectDevice,
            ),
        )
        .build();
        inv.collect_anyway(&device, "image", vec![1], "agent");
        let memo = charging_decision(&inv, &full_attribution());
        assert_eq!(memo.decision(), ChargingDecision::Decline);
        assert!(!memo.court().case_survives());
    }

    #[test]
    fn partial_attribution_lists_weaknesses() {
        let mut a = AttributionRecord::new();
        a.add(AttributionEvidence::IndividualAction {
            others_had_access: true,
        });
        a.add(AttributionEvidence::MalwareAnalysis {
            malware_excluded: true,
        });
        let memo = charging_decision(&lawful_investigation(), &a);
        assert_eq!(memo.decision(), ChargingDecision::InvestigateFurther);
        assert!(memo
            .reasons()
            .iter()
            .any(|r| r.contains("others with access")));
    }
}
