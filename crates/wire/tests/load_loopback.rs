//! Loopback tests for the `wire::load` driver core: a real server, a
//! scripted [`LoadSource`], exactly-once completion accounting, and
//! due-time pacing.

use forensic_law::spec::ActionSpec;
use service::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wire::load::{self, LoadRequest};
use wire::prelude::*;

const LINES: &[&str] = &[
    r#"{"actor": "leo", "data": "headers", "when": "realtime", "where": "isp", "describe": "pen/trap stream"}"#,
    r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "isp", "describe": "live interception"}"#,
    r#"{"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider", "describe": "subscriber records"}"#,
    r#"{"actor": "admin", "data": "headers", "when": "realtime", "where": "own-network", "describe": "ops review"}"#,
];

fn expected_verdict(line: &str) -> String {
    let action = ActionSpec::from_json_line(line)
        .and_then(|spec| spec.to_action())
        .expect("fixture line parses");
    let assessment = forensic_law::engine::assess(&action);
    format!("{} [{}]", assessment.verdict(), assessment.confidence())
}

/// Emits `per_conn` requests on each connection (global ids), expects
/// every verdict to match a local engine run, and records completions.
struct ScriptedSource {
    per_conn: usize,
    /// Next request index per connection.
    cursor: Vec<usize>,
    /// Fixed due time applied to every request (0 = max pacing).
    due_us: u64,
    completed: HashSet<u64>,
}

impl ScriptedSource {
    fn new(connections: usize, per_conn: usize, due_us: u64) -> Self {
        Self {
            per_conn,
            cursor: vec![0; connections],
            due_us,
            completed: HashSet::new(),
        }
    }

    fn id(&self, conn: usize, i: usize) -> u64 {
        (conn * self.per_conn + i) as u64
    }
}

impl LoadSource for ScriptedSource {
    fn next(&mut self, conn: usize) -> Option<LoadRequest> {
        let i = self.cursor[conn];
        if i == self.per_conn {
            return None;
        }
        self.cursor[conn] = i + 1;
        let line = LINES[(conn + i) % LINES.len()];
        Some(LoadRequest {
            id: self.id(conn, i),
            payload: line.as_bytes().to_vec(),
            due_us: self.due_us,
        })
    }

    fn complete(&mut self, conn: usize, id: u64, status: Status, payload: &[u8], rtt: Duration) {
        assert!(rtt > Duration::ZERO, "round trip must be measured");
        assert_eq!(status, Status::Ok, "request {id} failed");
        let i = (id as usize) % self.per_conn;
        assert_eq!(
            (id as usize) / self.per_conn,
            conn,
            "completion routed to the wrong connection"
        );
        let line = LINES[(conn + i) % LINES.len()];
        assert_eq!(
            String::from_utf8_lossy(payload),
            expected_verdict(line),
            "request {id} verdict differs from a local engine run"
        );
        assert!(self.completed.insert(id), "request {id} completed twice");
    }
}

fn start_server() -> (Arc<ComplianceService>, WireServer) {
    let service = Arc::new(ComplianceService::start(ServiceConfig {
        workers: 2,
        capacity: 256,
        policy: AdmissionPolicy::Block,
        ..ServiceConfig::default()
    }));
    let server = WireServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
        .expect("bind loopback");
    (service, server)
}

#[test]
fn drive_completes_every_request_exactly_once_at_max_pacing() {
    let (service, server) = start_server();
    let (connections, per_conn) = (6, 40);
    let mut source = ScriptedSource::new(connections, per_conn, 0);
    load::drive(server.local_addr(), connections, 8, &mut source).expect("drive");
    assert_eq!(source.completed.len(), connections * per_conn);
    server.shutdown();
    if let Ok(service) = Arc::try_unwrap(service) {
        service.shutdown();
    }
}

#[test]
fn drive_honors_due_times() {
    let (service, server) = start_server();
    // Every request due 60ms in: the whole drive cannot finish sooner.
    let mut source = ScriptedSource::new(2, 4, 60_000);
    let t0 = Instant::now();
    let wall = load::drive(server.local_addr(), 2, 4, &mut source).expect("drive");
    assert!(
        t0.elapsed() >= Duration::from_millis(60),
        "paced requests were sent early"
    );
    assert!(wall >= Duration::from_millis(60));
    assert_eq!(source.completed.len(), 8);
    server.shutdown();
    if let Ok(service) = Arc::try_unwrap(service) {
        service.shutdown();
    }
}

#[cfg(target_os = "linux")]
#[test]
fn drive_against_event_server_matches() {
    let service = Arc::new(ComplianceService::start(ServiceConfig {
        workers: 2,
        capacity: 256,
        policy: AdmissionPolicy::Block,
        ..ServiceConfig::default()
    }));
    let server = EventServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
        .expect("bind loopback");
    let (connections, per_conn) = (8, 25);
    let mut source = ScriptedSource::new(connections, per_conn, 0);
    load::drive(server.local_addr(), connections, 16, &mut source).expect("drive");
    assert_eq!(source.completed.len(), connections * per_conn);
    server.shutdown();
    if let Ok(service) = Arc::try_unwrap(service) {
        service.shutdown();
    }
}
