//! The loopback suite, run against the event-driven [`EventServer`]:
//! the same wire contract the threaded server passes — pipelining,
//! in-flight caps, in-band errors, protocol-error kills, idle reaping,
//! graceful drain, v1 interop, explain span chains, deadlines — must
//! hold byte-for-byte on the epoll loop.

#![cfg(target_os = "linux")]

use forensic_law::spec::ActionSpec;
use service::prelude::*;
use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wire::frame::{self, Frame};
use wire::prelude::*;

/// A rotating set of valid JSONL action lines (the `serve_demo`
/// vocabulary).
const LINES: &[&str] = &[
    r#"{"actor": "leo", "data": "headers", "when": "realtime", "where": "isp", "describe": "pen/trap stream"}"#,
    r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "isp", "describe": "live interception"}"#,
    r#"{"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider", "describe": "subscriber records"}"#,
    r#"{"actor": "admin", "data": "headers", "when": "realtime", "where": "own-network", "describe": "ops review"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored-unopened", "where": "provider", "describe": "stored unopened mail"}"#,
    r#"{"actor": "leo", "data": "content", "when": "stored", "where": "device", "flags": ["consent"], "describe": "consented device exam"}"#,
];

/// The verdict line the server sends for `line`, computed locally
/// through the same engine.
fn expected_verdict(line: &str) -> String {
    let action = ActionSpec::from_json_line(line)
        .and_then(|spec| spec.to_action())
        .expect("fixture line parses");
    let assessment = forensic_law::engine::assess(&action);
    format!("{} [{}]", assessment.verdict(), assessment.confidence())
}

fn start_service(
    workers: usize,
    capacity: usize,
    policy: AdmissionPolicy,
) -> Arc<ComplianceService> {
    Arc::new(ComplianceService::start(ServiceConfig {
        workers,
        capacity,
        policy,
        ..ServiceConfig::default()
    }))
}

#[test]
fn pipelined_requests_complete_out_of_order_and_match_by_id() {
    let service = start_service(2, 64, AdmissionPolicy::Block);
    let server = EventServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
        .expect("bind loopback");
    let client = WireClient::connect(server.local_addr()).expect("dial");

    // Pipeline 48 requests before reading a single response.
    let calls: Vec<_> = (0..48)
        .map(|i| {
            let line = LINES[i % LINES.len()];
            client
                .submit(line.as_bytes().to_vec(), 0)
                .expect("submit pipelined")
        })
        .collect();
    for (i, call) in calls.into_iter().enumerate() {
        let line = LINES[i % LINES.len()];
        let id = call.id();
        let response = call.wait().expect("response arrives");
        assert_eq!(response.id, id, "response matched to the wrong call");
        assert_eq!(response.status, Status::Ok);
        assert_eq!(
            String::from_utf8(response.payload).expect("utf-8 verdict"),
            expected_verdict(line),
            "request {i} verdict differs from a local engine run"
        );
    }

    drop(client);
    let metrics = server.shutdown().metrics;
    assert_eq!(metrics.frames_in, 48);
    assert_eq!(metrics.frames_out, 48);
    assert_eq!(metrics.protocol_errors, 0);
    assert!(metrics.peak_inflight >= 2, "pipelining never overlapped");
    assert!(metrics.wakeups >= 1, "completions never rang the doorbell");
}

#[test]
fn inflight_cap_bounds_a_pipelining_client() {
    let service = start_service(1, 4, AdmissionPolicy::Block);
    let server = EventServer::start(
        "127.0.0.1:0",
        Arc::clone(&service),
        WireConfig {
            max_inflight: 3,
            ..WireConfig::default()
        },
    )
    .expect("bind loopback");
    let client = WireClient::connect(server.local_addr()).expect("dial");

    let calls: Vec<_> = (0..40)
        .map(|i| {
            client
                .submit(LINES[i % LINES.len()].as_bytes().to_vec(), 0)
                .expect("submit")
        })
        .collect();
    for call in calls {
        assert_eq!(call.wait().expect("response").status, Status::Ok);
    }

    let metrics = server.shutdown().metrics;
    assert_eq!(metrics.frames_in, 40);
    assert_eq!(metrics.frames_out, 40);
    assert!(
        metrics.peak_inflight <= 3,
        "in-flight cap exceeded: peak {}",
        metrics.peak_inflight
    );
}

#[test]
fn bad_requests_are_answered_in_band_and_the_connection_survives() {
    let service = start_service(1, 8, AdmissionPolicy::Block);
    let server = EventServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
        .expect("bind loopback");
    let client = WireClient::connect(server.local_addr()).expect("dial");

    // Unparseable payloads: truncated JSON, bad UTF-8, unknown vocab.
    for garbage in [
        br#"{"actor": "leo""#.to_vec(),
        vec![0xff, 0xfe, b'{'],
        br#"{"actor": "martian", "data": "headers", "when": "realtime", "where": "isp", "describe": "x"}"#.to_vec(),
    ] {
        let response = client.roundtrip(garbage, 0).expect("in-band error");
        assert_eq!(response.status, Status::BadRequest);
        assert!(!response.payload.is_empty(), "diagnostic message expected");
    }

    // The connection is still healthy.
    let response = client
        .roundtrip(LINES[0].as_bytes().to_vec(), 0)
        .expect("connection survived");
    assert_eq!(response.status, Status::Ok);

    let metrics = server.shutdown().metrics;
    assert_eq!(metrics.bad_requests, 3);
    assert_eq!(metrics.protocol_errors, 0);
    assert_eq!(metrics.frames_out, 4);
}

#[test]
fn oversized_and_malformed_frames_kill_only_their_connection() {
    let service = start_service(1, 8, AdmissionPolicy::Block);
    let server = EventServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
        .expect("bind loopback");

    // A hostile length prefix: the server must drop the connection
    // without allocating the claimed 512 MiB.
    {
        use std::io::Write as _;
        let mut raw = TcpStream::connect(server.local_addr()).expect("dial raw");
        raw.write_all(&(512u32 << 20).to_be_bytes())
            .expect("write prefix");
        raw.flush().expect("flush");
        let mut buf = [0u8; 16];
        raw.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        assert_eq!(raw.read(&mut buf).expect("server closes"), 0);
    }

    // A healthy client right after is unaffected.
    let client = WireClient::connect(server.local_addr()).expect("dial");
    let response = client
        .roundtrip(LINES[1].as_bytes().to_vec(), 0)
        .expect("healthy connection");
    assert_eq!(response.status, Status::Ok);

    let metrics = server.shutdown().metrics;
    assert_eq!(metrics.protocol_errors, 1);
    assert_eq!(metrics.frames_out, 1);
}

#[test]
fn idle_connections_are_reaped() {
    let service = start_service(1, 8, AdmissionPolicy::Block);
    let server = EventServer::start(
        "127.0.0.1:0",
        Arc::clone(&service),
        WireConfig {
            read_tick: Duration::from_millis(5),
            idle_timeout: Some(Duration::from_millis(50)),
            ..WireConfig::default()
        },
    )
    .expect("bind loopback");

    let mut raw = TcpStream::connect(server.local_addr()).expect("dial raw");
    raw.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let started = Instant::now();
    let mut buf = [0u8; 1];
    // The server hangs up (EOF) once the idle budget lapses.
    assert_eq!(raw.read(&mut buf).expect("idle close"), 0);
    assert!(
        started.elapsed() >= Duration::from_millis(40),
        "closed before the idle budget"
    );

    let metrics = server.shutdown().metrics;
    assert_eq!(metrics.connections_opened, 1);
    assert_eq!(metrics.connections_closed, 1);
    assert_eq!(metrics.protocol_errors, 0);
}

#[test]
fn graceful_shutdown_answers_every_request_the_server_admitted() {
    let service = start_service(2, 32, AdmissionPolicy::Block);
    let server = EventServer::start(
        "127.0.0.1:0",
        Arc::clone(&service),
        WireConfig {
            read_tick: Duration::from_millis(5),
            ..WireConfig::default()
        },
    )
    .expect("bind loopback");
    let client = WireClient::connect(server.local_addr()).expect("dial");

    let calls: Vec<_> = (0..24)
        .map(|i| {
            client
                .submit(LINES[i % LINES.len()].as_bytes().to_vec(), 0)
                .expect("submit")
        })
        .collect();
    // Shut down while the pipeline is (very likely) still moving.
    let metrics = server.shutdown().metrics;

    // Every frame the server decoded gets exactly one response; calls
    // the reader never reached fail cleanly with ConnectionClosed.
    let mut answered = 0u64;
    for call in calls {
        let id = call.id();
        match call.wait() {
            Ok(response) => {
                assert_eq!(response.id, id);
                assert_eq!(response.status, Status::Ok);
                answered += 1;
            }
            Err(WireError::ConnectionClosed) => {}
            Err(other) => panic!("unexpected client error: {other}"),
        }
    }
    assert_eq!(
        metrics.frames_in, answered,
        "a decoded request was lost (or answered twice) across shutdown"
    );
    assert_eq!(metrics.frames_out, answered);
}

/// A client that predates the v2 frames — hand-built v1 request bytes,
/// no flags byte anywhere — must interoperate unchanged with the event
/// server too.
#[test]
fn flagless_v1_clients_interoperate_with_an_explain_capable_server() {
    use std::io::Write as _;

    let service = start_service(1, 8, AdmissionPolicy::Block);
    let server = EventServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
        .expect("bind loopback");

    let mut raw = TcpStream::connect(server.local_addr()).expect("dial raw");
    raw.set_nodelay(true).expect("nodelay");
    let payload = LINES[0].as_bytes();
    // Hand-built v1 layout: [len u32][kind=1][id u64][deadline u32][payload].
    let mut body = vec![1u8];
    body.extend_from_slice(&7u64.to_be_bytes());
    body.extend_from_slice(&0u32.to_be_bytes());
    body.extend_from_slice(payload);
    let mut bytes = (body.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(&body);
    raw.write_all(&bytes).expect("write v1 frame");
    raw.flush().expect("flush");

    let response = match frame::read_frame(&mut raw, frame::MAX_FRAME).expect("read response") {
        Some(Frame::Response(response)) => response,
        other => panic!("expected a response frame, got {other:?}"),
    };
    assert_eq!(response.id, 7);
    assert_eq!(response.status, Status::Ok);
    assert!(
        response.explain.is_none(),
        "a flag-less request must never receive an explain section"
    );
    assert_eq!(
        String::from_utf8(response.payload).expect("utf-8"),
        expected_verdict(LINES[0]),
    );

    drop(raw);
    let metrics = server.shutdown().metrics;
    assert_eq!(metrics.protocol_errors, 0);
    assert_eq!(metrics.frames_out, 1);
}

/// `submit_explained` against the event server: the response's explain
/// trace joins a complete queue → engine → serialize span chain (the
/// serialize span is recorded at encode time on the worker thread, but
/// under the same trace id and stage as the threaded writer records).
#[test]
fn explained_responses_join_a_full_span_chain_by_trace_id() {
    use obs::Stage;

    let log = obs::global();
    log.set_enabled(true);

    let service = start_service(1, 8, AdmissionPolicy::Block);
    let server = EventServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
        .expect("bind loopback");
    let client = WireClient::connect(server.local_addr()).expect("dial");

    let response = client
        .submit_explained(LINES[1].as_bytes().to_vec(), 0)
        .expect("submit explained")
        .wait()
        .expect("answered");
    assert_eq!(response.status, Status::Ok);
    let explain = response.explain.expect("explain section present");
    assert!(explain.trace != 0, "explained response carries no trace id");

    let provenance = String::from_utf8(explain.provenance).expect("utf-8 provenance");
    assert!(
        provenance.starts_with('[') && provenance.ends_with(']'),
        "provenance is not a JSON array: {provenance}"
    );
    assert!(
        provenance.contains(r#""rule":"verdict.final""#),
        "provenance lacks the final verdict firing: {provenance}"
    );

    let trace = obs::TraceId::from_u64(explain.trace);
    let spans = log.snapshot();
    for stage in [Stage::Queue, Stage::Engine, Stage::Serialize] {
        assert!(
            spans.iter().any(|s| s.trace == trace && s.stage == stage),
            "no {stage} span recorded for trace {trace}"
        );
    }

    drop(client);
    server.shutdown();
}

#[test]
fn deadline_zero_means_none_and_tight_deadlines_time_out_in_band() {
    // One worker, deep queue: with many requests racing a 1 ms deadline,
    // some will time out in-band — and the response still arrives.
    let service = start_service(1, 64, AdmissionPolicy::Block);
    let server = EventServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
        .expect("bind loopback");
    let client = WireClient::connect(server.local_addr()).expect("dial");

    let calls: Vec<_> = (0..32)
        .map(|i| {
            client
                .submit(LINES[i % LINES.len()].as_bytes().to_vec(), 1)
                .expect("submit")
        })
        .collect();
    let mut saw = 0;
    for call in calls {
        let response = call.wait().expect("every request is answered");
        assert!(
            matches!(response.status, Status::Ok | Status::TimedOut),
            "unexpected status {}",
            response.status
        );
        saw += 1;
    }
    assert_eq!(saw, 32);
    server.shutdown();
}
