//! Every-split-point partial-read fuzz for the incremental frame
//! decoder, plus a mixed-version dribble test against the event
//! server.
//!
//! The [`StreamDecoder`] docs promise that a frame split at any byte —
//! inside the u32 length prefix, across a v1/v2 boundary — decodes
//! byte-identically to a one-shot [`frame::read_frame`] parse of the
//! same stream. This suite is that pin: a fixture stream mixing v1
//! and v2 requests and responses is cut at **every** byte offset (and
//! fed byte-at-a-time), and the decoded frame sequence must match the
//! one-shot parse exactly, with frames completing at exactly the wire
//! boundaries and no bytes left behind.

use wire::frame::{
    self, Explain, Frame, PlanRequest, PlanResponse, Request, Response, Status, StreamDecoder,
};

/// A fixture stream interleaving every frame shape on the wire:
/// v1 request, v2 request (explain flag), v3 plan request, v1
/// response, v2 response (trace + provenance section), v3 plan
/// response, with empty and non-empty payloads — so every two-way cut
/// crosses at least one cross-version boundary.
fn fixture_frames() -> Vec<Frame> {
    vec![
        Frame::Request(Request {
            id: 1,
            deadline_ms: 0,
            want_explain: false,
            payload: br#"{"actor": "leo", "data": "headers"}"#.to_vec(),
        }),
        Frame::Request(Request {
            id: 2,
            deadline_ms: 1500,
            want_explain: true,
            payload: br#"{"actor": "leo", "data": "content"}"#.to_vec(),
        }),
        Frame::Request(Request {
            id: 3,
            deadline_ms: u32::MAX,
            want_explain: false,
            payload: Vec::new(),
        }),
        Frame::Response(Response {
            id: 1,
            status: Status::Ok,
            queue_wait_us: 42,
            total_us: 1042,
            explain: None,
            payload: b"allowed [certain]".to_vec(),
        }),
        Frame::Response(Response {
            id: 2,
            status: Status::Ok,
            queue_wait_us: 7,
            total_us: u64::MAX,
            explain: Some(Explain {
                trace: 0xDEAD_BEEF_CAFE_F00D,
                provenance: br#"[{"rule": "wiretap-order"}]"#.to_vec(),
            }),
            payload: b"allowed-with-warrant [firm]".to_vec(),
        }),
        Frame::Response(Response {
            id: 4,
            status: Status::BadRequest,
            queue_wait_us: 0,
            total_us: 3,
            explain: Some(Explain {
                trace: 1,
                provenance: Vec::new(),
            }),
            payload: Vec::new(),
        }),
        Frame::Response(Response {
            id: 5,
            status: Status::GoingAway,
            queue_wait_us: 0,
            total_us: 0,
            explain: None,
            payload: Vec::new(),
        }),
        Frame::PlanRequest(PlanRequest {
            id: 6,
            deadline_ms: 2500,
            payload: br#"{"goal": "mailbox", "collect": {"actor": "leo", "data": "content"}}"#
                .to_vec(),
        }),
        Frame::PlanRequest(PlanRequest {
            id: 7,
            deadline_ms: 0,
            payload: Vec::new(),
        }),
        Frame::PlanResponse(PlanResponse {
            id: 6,
            status: Status::Ok,
            queue_wait_us: 0,
            total_us: 88_000,
            payload: b"plan: 2 lawful step(s), total cost 11".to_vec(),
        }),
        Frame::PlanResponse(PlanResponse {
            id: 7,
            status: Status::BadRequest,
            queue_wait_us: 0,
            total_us: 12,
            payload: Vec::new(),
        }),
    ]
}

/// The fixture frames and their concatenated wire bytes, with each
/// frame's end offset in the stream.
fn fixture_stream() -> (Vec<Frame>, Vec<u8>, Vec<usize>) {
    let frames = fixture_frames();
    let mut bytes = Vec::new();
    let mut ends = Vec::new();
    for f in &frames {
        let encoded = frame::encode(f);
        assert_eq!(encoded.len(), f.wire_len(), "wire_len lies about {f:?}");
        bytes.extend_from_slice(&encoded);
        ends.push(bytes.len());
    }
    (frames, bytes, ends)
}

/// Parses the whole stream in one pass through the blocking-path
/// reader — the reference the incremental decoder is pinned against.
fn one_shot(mut bytes: &[u8]) -> Vec<Frame> {
    let mut frames = Vec::new();
    while let Some(f) = frame::read_frame(&mut bytes, frame::MAX_FRAME).expect("one-shot parse") {
        frames.push(f);
    }
    frames
}

#[test]
fn one_shot_parse_round_trips_the_fixture_stream() {
    let (frames, bytes, _) = fixture_stream();
    assert_eq!(one_shot(&bytes), frames, "encode/decode round trip broke");
}

/// Cuts the stream at every byte offset — including offsets 1..4 of
/// every length prefix and every v1/v2 frame boundary — and feeds the
/// two halves to a fresh decoder. Each cut must decode the identical
/// frame sequence and consume every byte.
#[test]
fn every_two_way_split_decodes_identically_to_one_shot() {
    let (_, bytes, _) = fixture_stream();
    let expected = one_shot(&bytes);
    for split in 0..=bytes.len() {
        let mut decoder = StreamDecoder::new(frame::MAX_FRAME);
        let mut got = Vec::new();
        for chunk in [&bytes[..split], &bytes[split..]] {
            decoder.extend(chunk);
            loop {
                match decoder.next_frame() {
                    Ok(Some(f)) => got.push(f),
                    Ok(None) => break,
                    Err(e) => panic!("split at byte {split}: {e}"),
                }
            }
        }
        assert_eq!(got, expected, "split at byte {split} decoded differently");
        assert_eq!(
            decoder.buffered(),
            0,
            "split at byte {split} left bytes behind"
        );
    }
}

/// The worst partial-read schedule — one byte per "readable event" —
/// with the completion schedule pinned: a frame pops out exactly when
/// its last wire byte arrives, never earlier, never later.
#[test]
fn byte_at_a_time_feed_completes_frames_exactly_at_wire_boundaries() {
    let (_, bytes, ends) = fixture_stream();
    let expected = one_shot(&bytes);
    let mut decoder = StreamDecoder::new(frame::MAX_FRAME);
    let mut got = Vec::new();
    for (i, byte) in bytes.iter().enumerate() {
        decoder.extend(std::slice::from_ref(byte));
        while let Some(f) = decoder.next_frame().expect("byte-at-a-time decode") {
            got.push(f);
        }
        let fed = i + 1;
        let complete = ends.iter().filter(|&&end| end <= fed).count();
        assert_eq!(
            got.len(),
            complete,
            "after byte {fed}: {} frames decoded, wire boundaries say {complete}",
            got.len()
        );
    }
    assert_eq!(got, expected);
    assert_eq!(decoder.buffered(), 0);
}

/// Every two-way cut of a stream truncated mid-frame: the decoder must
/// decode exactly the complete frames, report the partial tail via
/// `buffered()`, and never error — the Torn verdict belongs to the
/// caller who sees EOF.
#[test]
fn truncated_streams_report_partial_tails_without_erroring() {
    let (_, bytes, ends) = fixture_stream();
    let expected = one_shot(&bytes);
    for cut in 0..bytes.len() {
        let complete = ends.iter().filter(|&&end| end <= cut).count();
        let mut decoder = StreamDecoder::new(frame::MAX_FRAME);
        let mid = cut / 2;
        let mut got = Vec::new();
        for chunk in [&bytes[..mid], &bytes[mid..cut]] {
            decoder.extend(chunk);
            while let Some(f) = decoder.next_frame().expect("truncated decode") {
                got.push(f);
            }
        }
        assert_eq!(got, expected[..complete], "truncation at byte {cut}");
        let consumed: usize = ends.get(complete.wrapping_sub(1)).copied().unwrap_or(0);
        assert_eq!(
            decoder.buffered(),
            cut - consumed,
            "truncation at byte {cut}: partial tail miscounted"
        );
    }
}

/// A length prefix over the decoder's cap must fail as soon as the
/// fourth prefix byte arrives — before any body bytes — at every
/// arrival schedule.
#[test]
fn oversized_prefix_fails_on_the_fourth_byte_at_every_split() {
    let huge = (frame::MAX_FRAME + 1).to_be_bytes();
    for split in 0..=huge.len() {
        let mut decoder = StreamDecoder::new(frame::MAX_FRAME);
        decoder.extend(&huge[..split]);
        if split < 4 {
            assert!(
                matches!(decoder.next_frame(), Ok(None)),
                "split {split}: errored before the prefix was complete"
            );
        }
        decoder.extend(&huge[split..]);
        assert!(
            matches!(
                decoder.next_frame(),
                Err(frame::FrameError::TooLarge { .. })
            ),
            "split {split}: oversized prefix not rejected"
        );
    }
}

/// Mixed-version pipelining against the live event server: one raw
/// connection interleaves hand-built v1 request bytes with v2
/// explain-flagged frames, dribbled to the socket in 7-byte chunks so
/// the server's readiness loop sees every partial-read shape. Every
/// request must be answered in its own protocol version.
#[cfg(target_os = "linux")]
#[test]
fn mixed_version_dribbled_pipeline_is_answered_in_kind_by_the_event_server() {
    use service::prelude::*;
    use std::io::Write as _;
    use std::net::TcpStream;
    use std::sync::Arc;
    use wire::prelude::*;

    const LINE: &str = r#"{"actor": "leo", "data": "content", "when": "realtime", "where": "isp", "describe": "live interception"}"#;
    const REQUESTS: u64 = 24;

    let service = Arc::new(ComplianceService::start(ServiceConfig {
        workers: 2,
        capacity: 64,
        policy: AdmissionPolicy::Block,
        ..ServiceConfig::default()
    }));
    let server = EventServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
        .expect("bind loopback");

    let mut raw = TcpStream::connect(server.local_addr()).expect("dial raw");
    raw.set_nodelay(true).expect("nodelay");

    let mut stream = Vec::new();
    for id in 0..REQUESTS {
        if id % 2 == 0 {
            // Hand-built v1 layout, no flags byte:
            // [len u32][kind=1][id u64][deadline u32][payload].
            let mut body = vec![1u8];
            body.extend_from_slice(&id.to_be_bytes());
            body.extend_from_slice(&0u32.to_be_bytes());
            body.extend_from_slice(LINE.as_bytes());
            let hand_built: Vec<u8> = (body.len() as u32)
                .to_be_bytes()
                .iter()
                .copied()
                .chain(body)
                .collect();
            // The encoder must still emit v1 byte-identically when the
            // explain flag is off.
            assert_eq!(
                hand_built,
                frame::encode(&Frame::Request(Request {
                    id,
                    deadline_ms: 0,
                    want_explain: false,
                    payload: LINE.as_bytes().to_vec(),
                })),
                "encode() stopped emitting byte-identical v1 frames"
            );
            stream.extend_from_slice(&hand_built);
        } else {
            stream.extend_from_slice(&frame::encode(&Frame::Request(Request {
                id,
                deadline_ms: 0,
                want_explain: true,
                payload: LINE.as_bytes().to_vec(),
            })));
        }
    }
    // Dribble: 7 bytes per write lands splits inside prefixes, headers,
    // and across every v1/v2 boundary as the event loop reads.
    for chunk in stream.chunks(7) {
        raw.write_all(chunk).expect("dribble chunk");
        raw.flush().expect("flush chunk");
    }

    let mut seen = 0u64;
    while seen < REQUESTS {
        let response = match frame::read_frame(&mut raw, frame::MAX_FRAME).expect("read response") {
            Some(Frame::Response(response)) => response,
            other => panic!("expected a response frame, got {other:?}"),
        };
        assert_eq!(
            response.status,
            Status::Ok,
            "request {} failed",
            response.id
        );
        if response.id % 2 == 0 {
            assert!(
                response.explain.is_none(),
                "v1 request {} got a v2 explain section",
                response.id
            );
        } else {
            assert!(
                response.explain.is_some(),
                "v2 request {} lost its explain section",
                response.id
            );
        }
        seen += 1;
    }

    drop(raw);
    let metrics = server.shutdown().metrics;
    assert_eq!(metrics.protocol_errors, 0);
    assert_eq!(metrics.frames_in, REQUESTS);
    assert_eq!(metrics.frames_out, REQUESTS);
}
