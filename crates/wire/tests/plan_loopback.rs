//! Mixed-version loopback for the v3 planning frames: v1, v2, and v3
//! requests interleaved on one live connection, against the threaded
//! server AND (on Linux) the epoll event server.
//!
//! The versioning contract under test: pre-v3 clients are untouched —
//! v1 and v2 frames keep their exact byte layouts and response
//! semantics with v3 traffic pipelined between them — and plan
//! responses over the wire are byte-identical to an in-process
//! [`planner::Planner`] solve of the same problem.

use forensic_law::spec::ActionSpec;
use planner::{parse_problem, Planner};
use service::prelude::*;
use std::net::SocketAddr;
use std::sync::Arc;
use wire::frame::{self, Frame, PlanRequest, Request};
use wire::prelude::*;

/// A solvable planning problem: one subpoena rung plus the collect.
const SOLVABLE: &str = r#"
{"start": {"standard": "mere-suspicion"}}
{"goal": "subscriber records", "collect": {"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider"}}
"#;

/// A wiretap goal with no way to raise the showing: no lawful path.
const UNREACHABLE: &str = r#"
{"start": {"standard": "probable-cause"}}
{"goal": "live audio", "collect": {"actor": "leo", "data": "content", "when": "realtime", "where": "isp"}}
"#;

/// Line 2 is not JSON; line 3 names an unknown directive.
const MALFORMED: &str = r#"{"start": {"standard": "mere-suspicion"}}
not json at all
{"gaol": "typo"}
"#;

/// A valid v1/v2 action line.
const ACTION: &str = r#"{"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider", "describe": "subscriber records"}"#;

fn start_service() -> Arc<ComplianceService> {
    Arc::new(ComplianceService::start(ServiceConfig {
        workers: 2,
        capacity: 64,
        policy: AdmissionPolicy::Block,
        ..ServiceConfig::default()
    }))
}

/// The verdict line a local engine run produces for `line`.
fn expected_verdict(line: &str) -> String {
    let action = ActionSpec::from_json_line(line)
        .and_then(|spec| spec.to_action())
        .expect("fixture line parses");
    let assessment = forensic_law::engine::assess(&action);
    format!("{} [{}]", assessment.verdict(), assessment.confidence())
}

/// The rendering an in-process solve of `problem` produces — the byte
/// reference every wire plan response is pinned against.
fn expected_plan(problem: &str) -> String {
    let problem = parse_problem(problem.as_bytes()).expect("fixture problem parses");
    Planner::new().solve(&problem).expect("solves").render()
}

/// The whole mixed-version conversation, against whichever server is
/// listening at `addr`: v1, v2, and v3 calls pipelined together on one
/// client, every answer checked in its own protocol version.
fn exercise_mixed_versions(addr: SocketAddr) {
    let client = WireClient::connect(addr).expect("dial");

    // Pipeline all three versions before waiting on any of them.
    let v1 = client
        .submit(ACTION.as_bytes().to_vec(), 0)
        .expect("v1 submit");
    let v2 = client
        .submit_explained(ACTION.as_bytes().to_vec(), 0)
        .expect("v2 submit");
    let v3 = client
        .submit_plan(SOLVABLE.as_bytes().to_vec(), 0)
        .expect("v3 submit");
    let v3_dead_end = client
        .submit_plan(UNREACHABLE.as_bytes().to_vec(), 0)
        .expect("v3 dead-end submit");
    let v3_bad = client
        .submit_plan(MALFORMED.as_bytes().to_vec(), 0)
        .expect("v3 malformed submit");
    let v1_after = client
        .submit(ACTION.as_bytes().to_vec(), 0)
        .expect("v1 resubmit");

    let response = v1.wait().expect("v1 answered");
    assert_eq!(response.status, Status::Ok);
    assert!(response.explain.is_none(), "v1 response grew an explain");
    assert_eq!(
        String::from_utf8(response.payload).expect("utf-8"),
        expected_verdict(ACTION)
    );

    let response = v2.wait().expect("v2 answered");
    assert_eq!(response.status, Status::Ok);
    let explain = response.explain.expect("v2 explain section");
    assert!(!explain.provenance.is_empty());

    let response = v3.wait().expect("v3 answered");
    assert_eq!(response.status, Status::Ok);
    let rendering = String::from_utf8(response.payload).expect("utf-8 plan");
    assert_eq!(
        rendering,
        expected_plan(SOLVABLE),
        "wire plan differs from an in-process solve"
    );
    assert!(rendering.starts_with("plan:"), "{rendering}");

    let response = v3_dead_end.wait().expect("v3 dead end answered");
    // "No lawful path" is a successful answer, not an error: the
    // search terminated and the payload names the blocking rule.
    assert_eq!(response.status, Status::Ok);
    let rendering = String::from_utf8(response.payload).expect("utf-8 dead end");
    assert_eq!(rendering, expected_plan(UNREACHABLE));
    assert!(rendering.starts_with("no lawful path:"), "{rendering}");
    assert!(rendering.contains("blocking rule:"), "{rendering}");

    let response = v3_bad.wait().expect("v3 malformed answered");
    assert_eq!(response.status, Status::BadRequest);
    let errors = String::from_utf8(response.payload).expect("utf-8 errors");
    assert!(errors.contains("line 2"), "missing line number: {errors}");
    assert!(errors.contains("line 3"), "missing line number: {errors}");

    let response = v1_after.wait().expect("v1 after v3 answered");
    assert_eq!(response.status, Status::Ok, "v3 traffic broke a v1 call");
}

#[test]
fn threaded_server_answers_v1_v2_v3_interleaved() {
    let service = start_service();
    let server = WireServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
        .expect("bind loopback");
    exercise_mixed_versions(server.local_addr());
    let metrics = server.shutdown();
    assert_eq!(metrics.frames_in, 6);
    assert_eq!(metrics.frames_out, 6);
    assert_eq!(metrics.protocol_errors, 0);
    assert_eq!(metrics.bad_requests, 1, "exactly the malformed problem");
    Arc::try_unwrap(service).expect("sole owner").shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn event_server_answers_v1_v2_v3_interleaved() {
    let service = start_service();
    let server = EventServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
        .expect("bind loopback");
    exercise_mixed_versions(server.local_addr());
    let report = server.shutdown();
    assert_eq!(report.metrics.frames_in, 6);
    assert_eq!(report.metrics.frames_out, 6);
    assert_eq!(report.metrics.protocol_errors, 0);
    assert_eq!(report.metrics.bad_requests, 1);
    Arc::try_unwrap(service).expect("sole owner").shutdown();
}

/// The byte-identity pin for pre-v3 clients: v1 and v2 request frames
/// hand-assembled from the documented layouts must equal today's
/// encoder output bit for bit — adding kinds 5/6 must not have moved a
/// single pre-v3 byte.
#[test]
fn pre_v3_frames_are_byte_identical_to_the_documented_layouts() {
    // v1: [len u32][kind=1][id u64][deadline u32][payload].
    let mut v1 = vec![1u8];
    v1.extend_from_slice(&9u64.to_be_bytes());
    v1.extend_from_slice(&250u32.to_be_bytes());
    v1.extend_from_slice(ACTION.as_bytes());
    let mut framed_v1 = (v1.len() as u32).to_be_bytes().to_vec();
    framed_v1.extend_from_slice(&v1);
    assert_eq!(
        framed_v1,
        frame::encode(&Frame::Request(Request {
            id: 9,
            deadline_ms: 250,
            want_explain: false,
            payload: ACTION.as_bytes().to_vec(),
        })),
        "v1 request layout moved"
    );

    // v2: [len u32][kind=3][id u64][deadline u32][flags=1][payload].
    let mut v2 = vec![3u8];
    v2.extend_from_slice(&10u64.to_be_bytes());
    v2.extend_from_slice(&0u32.to_be_bytes());
    v2.push(1u8);
    v2.extend_from_slice(ACTION.as_bytes());
    let mut framed_v2 = (v2.len() as u32).to_be_bytes().to_vec();
    framed_v2.extend_from_slice(&v2);
    assert_eq!(
        framed_v2,
        frame::encode(&Frame::Request(Request {
            id: 10,
            deadline_ms: 0,
            want_explain: true,
            payload: ACTION.as_bytes().to_vec(),
        })),
        "v2 request layout moved"
    );

    // And the v3 layout is exactly the documented one:
    // [len u32][kind=5][id u64][deadline u32][payload].
    let mut v3 = vec![5u8];
    v3.extend_from_slice(&11u64.to_be_bytes());
    v3.extend_from_slice(&0u32.to_be_bytes());
    v3.extend_from_slice(SOLVABLE.as_bytes());
    let mut framed_v3 = (v3.len() as u32).to_be_bytes().to_vec();
    framed_v3.extend_from_slice(&v3);
    assert_eq!(
        framed_v3,
        frame::encode(&Frame::PlanRequest(PlanRequest {
            id: 11,
            deadline_ms: 0,
            payload: SOLVABLE.as_bytes().to_vec(),
        })),
        "v3 request layout drifted from its docs"
    );
}
