//! The TCP serving layer over [`ComplianceService`].
//!
//! # Threading model
//!
//! One accept thread; per connection, one **reader** and one **writer**
//! thread. The reader decodes request frames, parses the JSONL action
//! payload, and submits to the service with a completion observer; the
//! observer (running on whichever service thread answers — worker,
//! evictor, or drain) enqueues the response frame on the connection's
//! outbox, where the writer picks it up. Responses therefore complete
//! **out of order**; the request id is the only correlation.
//!
//! # Backpressure
//!
//! Each connection holds at most [`WireConfig::max_inflight`] requests
//! between frame decode and response enqueue. The reader blocks before
//! parsing frame N+cap until an earlier request is answered, so a
//! pipelining client cannot queue unbounded work or unbounded response
//! memory — admission control composes: wire cap per connection first,
//! then the service's bounded queue across connections.
//!
//! # Timeouts and drain
//!
//! Sockets run with a short receive timeout ([`WireConfig::read_tick`])
//! that doubles as the server's control tick: on every tick the reader
//! checks the drain flag and the idle clock. An idle connection (no
//! bytes and nothing in flight for [`WireConfig::idle_timeout`]) is
//! closed; a peer stalled **mid-frame** longer than the idle budget is
//! also cut off.
//!
//! [`WireServer::shutdown`] is a graceful drain: the accept loop closes
//! first, every connection's reader stops consuming new frames at its
//! next tick, all in-flight requests complete and their responses are
//! flushed, and only then do the sockets close. Nothing admitted is
//! lost; nothing is answered twice (the service's exactly-once guard
//! extends through the observer).

use crate::frame::{self, Explain, Frame, FrameError, PlanResponse, Response, Status};
use crate::metrics::{WireMetrics, WireMetricsSnapshot};
use forensic_law::batch::BatchAssessor;
use forensic_law::spec::ActionSpec;
use journal::{Journal, RecordData};
use obs::{Stage, TraceId};
use service::prelude::*;
use std::collections::VecDeque;
use std::io::{self, BufWriter, Read, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`WireServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConfig {
    /// Requests one connection may hold between frame decode and
    /// response enqueue (clamped to at least one).
    pub max_inflight: usize,
    /// Cap on a frame body; larger length prefixes kill the connection.
    pub max_frame: u32,
    /// Socket receive timeout: the granularity at which readers notice
    /// drain and idle. Smaller is more responsive, larger is fewer
    /// wakeups.
    pub read_tick: Duration,
    /// Close a connection after this long with no bytes and nothing in
    /// flight (`None` disables). Also bounds how long a peer may stall
    /// mid-frame.
    pub idle_timeout: Option<Duration>,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            max_inflight: 64,
            max_frame: frame::MAX_FRAME,
            read_tick: Duration::from_millis(25),
            idle_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Response frames queued for one connection's writer (kind 2/4 for
/// assess requests, kind 6 for plan requests), each carrying the trace
/// id minted at frame decode so the writer can record the serialize
/// span under the request's chain.
#[derive(Debug, Default)]
struct Outbox {
    queue: VecDeque<(TraceId, Frame)>,
    closed: bool,
}

/// Per-connection shared state between reader, writer, and observers.
#[derive(Debug, Default)]
struct Conn {
    outbox: Mutex<Outbox>,
    out_ready: Condvar,
    inflight: Mutex<usize>,
    inflight_changed: Condvar,
}

impl Conn {
    /// Enqueues a response for the writer (dropped if the writer is
    /// gone — the peer is too, then).
    fn send(&self, trace: TraceId, response: Response) {
        self.send_frame(trace, Frame::Response(response));
    }

    /// Enqueues any response frame for the writer.
    fn send_frame(&self, trace: TraceId, frame: Frame) {
        let mut outbox = self.outbox.lock().expect("outbox lock");
        if !outbox.closed {
            outbox.queue.push_back((trace, frame));
            self.out_ready.notify_one();
        }
    }

    /// Blocks until an in-flight slot frees up (or the server drains),
    /// takes it, and returns the new depth.
    fn acquire_slot(&self, cap: usize, draining: &AtomicBool) -> usize {
        let mut n = self.inflight.lock().expect("inflight lock");
        while *n >= cap && !draining.load(Ordering::Relaxed) {
            n = self.inflight_changed.wait(n).expect("inflight lock");
        }
        *n += 1;
        *n
    }

    /// Releases an in-flight slot.
    fn release_slot(&self) {
        let mut n = self.inflight.lock().expect("inflight lock");
        *n -= 1;
        self.inflight_changed.notify_all();
    }

    /// Blocks until every in-flight request has been answered.
    fn wait_drained(&self) {
        let mut n = self.inflight.lock().expect("inflight lock");
        while *n > 0 {
            n = self.inflight_changed.wait(n).expect("inflight lock");
        }
    }

    fn inflight_depth(&self) -> usize {
        *self.inflight.lock().expect("inflight lock")
    }

    /// Closes the outbox; the writer drains what is queued and exits.
    fn close_outbox(&self) {
        let mut outbox = self.outbox.lock().expect("outbox lock");
        outbox.closed = true;
        self.out_ready.notify_all();
    }
}

/// A shared JSONL sink for per-request explain records: one line per
/// answered request — trace id, request id, status, payload, and the
/// provenance record — written by whichever service thread answers.
///
/// The sink is cold-path only: it is consulted after the response is
/// built, and a server started without one pays a single `Option`
/// check per request.
pub struct ExplainSink {
    out: Mutex<Box<dyn io::Write + Send>>,
}

impl std::fmt::Debug for ExplainSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExplainSink").finish_non_exhaustive()
    }
}

impl ExplainSink {
    /// Wraps a writer (a file, stderr, a pipe) as a shareable sink.
    pub fn new(out: Box<dyn io::Write + Send>) -> Arc<ExplainSink> {
        Arc::new(ExplainSink {
            out: Mutex::new(out),
        })
    }

    /// Writes one record line (newline appended) and flushes, so lines
    /// are whole even if the process dies mid-serve.
    pub(crate) fn write_line(&self, line: &str) {
        let mut out = self.out.lock().expect("sink lock");
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
        let _ = out.flush();
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// State shared by the accept loop and every connection.
#[derive(Debug)]
struct Shared {
    service: Arc<ComplianceService>,
    config: WireConfig,
    metrics: Arc<WireMetrics>,
    explain: Option<Arc<ExplainSink>>,
    /// The durable request journal, when the server records one. Every
    /// answered request — verdicts, bad requests, rejections — is
    /// appended *before* its response frame is enqueued, so a drained
    /// server plus a closed journal holds every acknowledged
    /// disposition. The hot path pays one bounded-channel send; fsync
    /// is the journal writer's group-commit problem.
    journal: Option<Arc<Journal>>,
    draining: AtomicBool,
    conns: Mutex<Vec<Weak<Conn>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// Appends one disposition to the journal, if one is attached.
    ///
    /// Append errors are deliberately not surfaced per-request: the
    /// only way an append fails is the writer being closed or dead, a
    /// terminal condition that `Journal::close` reports to whoever owns
    /// the journal (the CLI turns it into a nonzero exit).
    fn journal_record(&self, trace: TraceId, status: Status, request: Vec<u8>, verdict: Vec<u8>) {
        if let Some(journal) = &self.journal {
            let _ = journal.append(RecordData {
                trace,
                at_us: journal::now_us(),
                status: status.as_byte(),
                request,
                verdict,
            });
        }
    }
}

/// A running TCP front end over a [`ComplianceService`]. See the
/// [module docs](self).
#[derive(Debug)]
pub struct WireServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `addr` (port 0 picks a free port; see
    /// [`local_addr`](Self::local_addr)) and starts serving `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind/local-address failures.
    pub fn start(
        addr: impl ToSocketAddrs,
        service: Arc<ComplianceService>,
        config: WireConfig,
    ) -> io::Result<WireServer> {
        WireServer::start_with_explain(addr, service, config, None)
    }

    /// [`start`](Self::start), plus a server-side [`ExplainSink`]: every
    /// answered request appends one JSONL record (trace id, request id,
    /// status, payload, provenance) to the sink, whether or not the
    /// client asked for in-band explain.
    ///
    /// # Errors
    ///
    /// As for [`start`](Self::start).
    pub fn start_with_explain(
        addr: impl ToSocketAddrs,
        service: Arc<ComplianceService>,
        config: WireConfig,
        explain: Option<Arc<ExplainSink>>,
    ) -> io::Result<WireServer> {
        WireServer::start_with_sinks(addr, service, config, explain, None)
    }

    /// [`start_with_explain`](Self::start_with_explain), plus an
    /// optional durable request [`Journal`]: every answered request is
    /// appended (trace id, status byte, raw request payload, verdict
    /// bytes) before its response frame is enqueued. The journal stays
    /// owned by the caller — close it *after* [`shutdown`](Self::shutdown)
    /// so the drain's final responses are on disk, and treat a close
    /// error as acknowledged-but-unjournaled responses.
    ///
    /// # Errors
    ///
    /// As for [`start`](Self::start).
    pub fn start_with_sinks(
        addr: impl ToSocketAddrs,
        service: Arc<ComplianceService>,
        config: WireConfig,
        explain: Option<Arc<ExplainSink>>,
        journal: Option<Arc<Journal>>,
    ) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            config: WireConfig {
                max_inflight: config.max_inflight.max(1),
                ..config
            },
            metrics: Arc::new(WireMetrics::default()),
            explain,
            journal,
            draining: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            handles: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        Ok(WireServer {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live wire metrics.
    pub fn metrics(&self) -> WireMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Graceful drain: stops accepting, lets every connection finish its
    /// in-flight requests and flush their responses, closes the sockets,
    /// joins all threads, and returns the final wire metrics. The
    /// underlying [`ComplianceService`] is left running — it belongs to
    /// the caller.
    pub fn shutdown(mut self) -> WireMetricsSnapshot {
        self.drain();
        self.shared.metrics.snapshot()
    }

    fn drain(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake readers parked on a full in-flight window.
        for conn in self.shared.conns.lock().expect("conns lock").iter() {
            if let Some(conn) = conn.upgrade() {
                conn.inflight_changed.notify_all();
            }
        }
        // Wake the accept loop with a throwaway connection; it checks
        // the drain flag before serving what it accepted.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Connection readers notice the flag at their next read tick,
        // drain, and exit; new handles cannot appear once accept is
        // gone.
        let handles: Vec<_> = self
            .shared
            .handles
            .lock()
            .expect("handles lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.drain();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    // Once the drain flag is up, the backlog may still hold connections
    // the kernel has already completed the handshake for — dropping the
    // listener then would RST them (and any requests they pipelined).
    // Instead, switch to nonblocking, accept and *serve* everything
    // queued (drain-aware readers answer what is buffered and close at
    // their first quiet tick), and exit only when the backlog is empty.
    let mut backlog_drain = false;
    loop {
        if !backlog_drain && shared.draining.load(Ordering::SeqCst) {
            backlog_drain = true;
            let _ = listener.set_nonblocking(true);
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || run_connection(&conn_shared, stream));
                shared.handles.lock().expect("handles lock").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if backlog_drain {
                    break;
                }
            }
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
}

/// A `Read` adapter that turns socket receive timeouts into control
/// ticks: on every tick it checks the drain flag and the idle clock,
/// synthesizing EOF when the connection should stop. `read_frame` then
/// sees either a clean boundary EOF or a torn frame, and
/// `stopped_by_server` tells the reader which closures are *ours* (not
/// protocol errors).
struct Ticking<'a> {
    stream: &'a TcpStream,
    conn: &'a Conn,
    draining: &'a AtomicBool,
    idle_timeout: Option<Duration>,
    last_activity: Instant,
    stopped_by_server: bool,
}

impl Read for Ticking<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match (&mut &*self.stream as &mut &TcpStream).read(buf) {
                Ok(0) => return Ok(0),
                Ok(n) => {
                    self.last_activity = Instant::now();
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.draining.load(Ordering::Relaxed) {
                        self.stopped_by_server = true;
                        return Ok(0);
                    }
                    if let Some(idle) = self.idle_timeout {
                        if self.last_activity.elapsed() >= idle && self.conn.inflight_depth() == 0 {
                            self.stopped_by_server = true;
                            return Ok(0);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn run_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let metrics = &shared.metrics;
    metrics.connections_opened.inc();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_tick));

    let conn = Arc::new(Conn::default());
    {
        let mut conns = shared.conns.lock().expect("conns lock");
        conns.retain(|weak| weak.strong_count() > 0);
        conns.push(Arc::downgrade(&conn));
    }

    let Ok(write_stream) = stream.try_clone() else {
        metrics.connections_closed.inc();
        return;
    };
    let writer = {
        let conn = Arc::clone(&conn);
        let metrics = Arc::clone(metrics);
        std::thread::spawn(move || writer_loop(&conn, write_stream, &metrics))
    };

    let mut ticking = Ticking {
        stream: &stream,
        conn: &conn,
        draining: &shared.draining,
        idle_timeout: shared.config.idle_timeout,
        last_activity: Instant::now(),
        stopped_by_server: false,
    };
    loop {
        match frame::read_frame(&mut ticking, shared.config.max_frame) {
            Ok(None) => break, // clean close: theirs (EOF) or ours (drain/idle)
            Ok(Some(frame)) => {
                metrics.bytes_in.add(frame.wire_len() as u64);
                match frame {
                    Frame::Request(request) => {
                        metrics.frames_in.inc();
                        handle_request(shared, &conn, request);
                    }
                    Frame::PlanRequest(request) => {
                        metrics.frames_in.inc();
                        handle_plan_request(shared, &conn, request);
                    }
                    Frame::Response(_) | Frame::PlanResponse(_) => {
                        // Only servers speak responses.
                        metrics.protocol_errors.inc();
                        break;
                    }
                }
            }
            Err(e) if e.is_timeout() => {} // absorbed by Ticking; defensive
            Err(FrameError::Torn) => {
                if !ticking.stopped_by_server {
                    metrics.protocol_errors.inc();
                }
                break;
            }
            Err(_) => {
                metrics.protocol_errors.inc();
                break;
            }
        }
    }

    // Drain: every submitted request fires its observer (enqueueing the
    // response *before* releasing the slot), so once in-flight hits
    // zero the outbox holds every outstanding answer.
    conn.wait_drained();
    conn.close_outbox();
    let _ = writer.join();
    // Half-close with FIN, then read the socket dry before dropping it:
    // closing with unread bytes in the receive buffer makes the kernel
    // send RST, which can destroy responses still in the peer's receive
    // path. The linger is bounded so a peer that never hangs up cannot
    // pin the drain.
    let _ = stream.shutdown(Shutdown::Write);
    let linger_deadline = Instant::now() + Duration::from_millis(250);
    let mut scratch = [0u8; 4096];
    loop {
        match (&mut &stream as &mut &TcpStream).read(&mut scratch) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= linger_deadline {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    metrics.connections_closed.inc();
}

/// The verdict line for a completed assessment — exactly the
/// `{verdict} [{confidence}]` text `assess-batch` prints between the
/// line number and the summary, so remote output diffs byte-for-byte.
pub(crate) fn verdict_payload(response: &ServiceResponse) -> (Status, Vec<u8>) {
    match &response.outcome {
        Outcome::Completed(_) => (
            Status::Ok,
            response
                .outcome
                .verdict_line()
                .expect("completed outcomes render a verdict line")
                .into_bytes(),
        ),
        Outcome::TimedOut => (Status::TimedOut, Vec::new()),
        Outcome::Shed => (Status::Shed, Vec::new()),
    }
}

/// One JSONL explain record for the server-side sink.
pub(crate) fn sink_line(
    trace: TraceId,
    id: u64,
    status: Status,
    payload: &[u8],
    provenance: &str,
) -> String {
    format!(
        r#"{{"trace":{trace},"id":{id},"status":"{status}","payload":"{}","provenance":{provenance}}}"#,
        json_escape(&String::from_utf8_lossy(payload)),
    )
}

fn handle_request(shared: &Arc<Shared>, conn: &Arc<Conn>, request: frame::Request) {
    let metrics = &shared.metrics;
    let received = Instant::now();
    // The trace id is minted here, at the frame boundary — everything
    // downstream (queue admission, engine run, serialize, the explain
    // record) carries this id, never a new one.
    let trace = TraceId::mint();

    // Every request — even one that fails to parse — occupies an
    // in-flight slot until its response is enqueued, so a client
    // spamming garbage is backpressured exactly like a busy one.
    let depth = conn.acquire_slot(shared.config.max_inflight, &shared.draining);
    metrics.observe_inflight(depth);

    let explain_for = |provenance: String| {
        request.want_explain.then(|| Explain {
            trace: trace.as_u64(),
            provenance: provenance.into_bytes(),
        })
    };
    let parsed = std::str::from_utf8(&request.payload)
        .map_err(|e| format!("payload is not UTF-8: {e}"))
        .and_then(|line| {
            ActionSpec::from_json_line(line)
                .and_then(|spec| spec.to_action())
                .map_err(|e| e.to_string())
        });
    let action = match parsed {
        Ok(action) => action,
        Err(message) => {
            metrics.bad_requests.inc();
            if let Some(sink) = &shared.explain {
                sink.write_line(&sink_line(
                    trace,
                    request.id,
                    Status::BadRequest,
                    message.as_bytes(),
                    "[]",
                ));
            }
            // Bad requests are journaled too: the record's verdict
            // bytes are the diagnostic, and replay re-asserts the
            // payload *still* fails to parse.
            shared.journal_record(
                trace,
                Status::BadRequest,
                request.payload.clone(),
                message.clone().into_bytes(),
            );
            conn.send(
                trace,
                Response {
                    id: request.id,
                    status: Status::BadRequest,
                    queue_wait_us: 0,
                    total_us: 0,
                    explain: explain_for("[]".to_string()),
                    payload: message.into_bytes(),
                },
            );
            conn.release_slot();
            return;
        }
    };

    let deadline =
        (request.deadline_ms > 0).then(|| Duration::from_millis(u64::from(request.deadline_ms)));
    let observer: ResponseObserver = {
        let conn = Arc::clone(conn);
        let metrics = Arc::clone(metrics);
        let sink = shared.explain.clone();
        let journal = shared.journal.clone();
        // The raw request bytes ride into the observer only when a
        // journal will store them; an unjournaled server clones nothing.
        let journal_request = journal.is_some().then(|| request.payload.clone());
        let id = request.id;
        let want_explain = request.want_explain;
        Box::new(move |response: &ServiceResponse| {
            let (status, payload) = verdict_payload(response);
            metrics.record_latency(received.elapsed());
            if let Some(journal) = &journal {
                // Appended before the response frame is enqueued, so an
                // acknowledged verdict is always at least *accepted* by
                // the journal writer (and durable once it drains).
                let _ = journal.append(RecordData {
                    trace: response.trace,
                    at_us: journal::now_us(),
                    status: status.as_byte(),
                    request: journal_request.unwrap_or_default(),
                    verdict: payload.clone(),
                });
            }
            // The provenance JSON is built only when someone will read
            // it — the in-band explain section or the server sink.
            let provenance = if want_explain || sink.is_some() {
                response
                    .outcome
                    .assessment()
                    .map_or_else(|| "[]".to_string(), |a| a.provenance().to_json())
            } else {
                String::new()
            };
            if let Some(sink) = &sink {
                sink.write_line(&sink_line(
                    response.trace,
                    id,
                    status,
                    &payload,
                    &provenance,
                ));
            }
            let explain = want_explain.then(|| Explain {
                trace: response.trace.as_u64(),
                provenance: provenance.into_bytes(),
            });
            conn.send(
                response.trace,
                Response {
                    id,
                    status,
                    queue_wait_us: response.queue_wait.as_micros().min(u64::MAX as u128) as u64,
                    total_us: response.total.as_micros().min(u64::MAX as u128) as u64,
                    explain,
                    payload,
                },
            );
            // Order matters: the response is in the outbox before the
            // slot frees, so "in-flight drained" implies "all responses
            // queued".
            conn.release_slot();
        })
    };
    if let Err(rejection) = shared
        .service
        .submit_observed_traced(action, deadline, trace, observer)
    {
        metrics.not_admitted.inc();
        let status = match rejection.error {
            SubmitError::Overloaded => Status::Rejected,
            SubmitError::ShuttingDown => Status::GoingAway,
        };
        if let Some(sink) = &shared.explain {
            sink.write_line(&sink_line(
                trace,
                request.id,
                status,
                rejection.error.to_string().as_bytes(),
                "[]",
            ));
        }
        // Rejections are dispositions too: the request never reached a
        // worker, but the journal still records that it was refused.
        shared.journal_record(
            trace,
            status,
            request.payload,
            rejection.error.to_string().into_bytes(),
        );
        conn.send(
            trace,
            Response {
                id: request.id,
                status,
                queue_wait_us: 0,
                total_us: 0,
                explain: explain_for("[]".to_string()),
                payload: rejection.error.to_string().into_bytes(),
            },
        );
        conn.release_slot();
    }
}

/// Parses and solves one wire plan-request payload against a planner
/// sharing the service-wide verdict cache, returning the response
/// status and payload: `Ok` with the rendered plan or "no lawful path"
/// explanation, `BadRequest` with the per-line parse errors. A plan is
/// a whole best-first search — far heavier than one assessment —  so
/// callers run this on a dedicated thread, never the reader or event
/// loop.
pub(crate) fn solve_plan_payload(service: &ComplianceService, payload: &[u8]) -> (Status, Vec<u8>) {
    let problem = match planner::parse_problem(payload) {
        Ok(problem) => problem,
        Err(errors) => {
            let text = errors
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("\n");
            return (Status::BadRequest, text.into_bytes());
        }
    };
    let assessor = BatchAssessor::new().sharing_cache(Arc::clone(service.cache()));
    match planner::Planner::from_assessor(assessor).solve(&problem) {
        Ok(outcome) => (Status::Ok, outcome.render().into_bytes()),
        Err(e) => (Status::BadRequest, e.to_string().into_bytes()),
    }
}

/// A v3 plan request: solved on a spawned thread (plan traffic is rare
/// and each one is a whole search), with the planner's assessor
/// sharing the service-wide verdict cache so fact patterns recur as
/// cache hits across plan and assess traffic alike. The in-flight slot
/// is held until the response is enqueued, so drain waits for running
/// solves; `deadline_ms` is ignored (see [`frame`]'s module docs). Plan
/// dispositions are not journaled — the journal's replay contract
/// re-parses recorded requests as single action specs.
fn handle_plan_request(shared: &Arc<Shared>, conn: &Arc<Conn>, request: frame::PlanRequest) {
    let metrics = &shared.metrics;
    let received = Instant::now();
    let trace = TraceId::mint();
    let depth = conn.acquire_slot(shared.config.max_inflight, &shared.draining);
    metrics.observe_inflight(depth);
    let shared = Arc::clone(shared);
    let conn = Arc::clone(conn);
    std::thread::spawn(move || {
        let (status, payload) = solve_plan_payload(&shared.service, &request.payload);
        if status == Status::BadRequest {
            shared.metrics.bad_requests.inc();
        }
        shared.metrics.record_latency(received.elapsed());
        conn.send_frame(
            trace,
            Frame::PlanResponse(PlanResponse {
                id: request.id,
                status,
                queue_wait_us: 0,
                total_us: received.elapsed().as_micros().min(u64::MAX as u128) as u64,
                payload,
            }),
        );
        conn.release_slot();
    });
}

fn writer_loop(conn: &Conn, stream: TcpStream, metrics: &WireMetrics) {
    let mut w = BufWriter::new(stream);
    loop {
        let (batch, closed) = {
            let mut outbox = conn.outbox.lock().expect("outbox lock");
            loop {
                if !outbox.queue.is_empty() {
                    let batch: Vec<(TraceId, Frame)> = outbox.queue.drain(..).collect();
                    break (batch, outbox.closed);
                }
                if outbox.closed {
                    break (Vec::new(), true);
                }
                outbox = conn.out_ready.wait(outbox).expect("outbox lock");
            }
        };
        if batch.is_empty() && closed {
            let _ = w.flush();
            return;
        }
        let log = obs::global();
        for (trace, frame) in batch {
            let status_byte = match &frame {
                Frame::Response(r) => r.status.as_byte(),
                Frame::PlanResponse(r) => r.status.as_byte(),
                // Servers only enqueue response frames.
                Frame::Request(_) | Frame::PlanRequest(_) => 0,
            };
            let start_us = if log.is_enabled() { obs::now_us() } else { 0 };
            metrics.bytes_out.add(frame.wire_len() as u64);
            if frame::write_frame(&mut w, &frame).is_err() {
                // The peer is gone; stop writing and let responses drop.
                conn.close_outbox();
                return;
            }
            if log.is_enabled() {
                log.record_closed(trace, Stage::Serialize, start_us, u64::from(status_byte));
            }
            metrics.frames_out.inc();
        }
        if w.flush().is_err() {
            conn.close_outbox();
            return;
        }
    }
}
