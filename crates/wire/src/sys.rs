//! Thin, dep-free wrappers over the Linux readiness syscalls the event
//! server needs: `epoll_create1`/`epoll_ctl`/`epoll_wait` and
//! `eventfd`.
//!
//! Everything else the event loop does — nonblocking sockets, vectored
//! writes, FIN half-close — `std` already exposes safely
//! (`set_nonblocking`, `Write::write_vectored`, `shutdown`), so this
//! module stays deliberately tiny: two foreign functions' worth of
//! `unsafe`, wrapped behind [`Epoll`] and [`EventFd`] types that own
//! their descriptors via `OwnedFd` (closed on drop, never leaked or
//! double-closed). `std` on Linux already links libc; declaring the
//! symbols ourselves keeps the workspace at zero crates.io
//! dependencies.
//!
//! The `unsafe` in this module is confined to:
//! * the `extern "C"` declarations themselves,
//! * calling them with arguments whose validity is established locally
//!   (live fds from `OwnedFd`/`AsRawFd`, properly sized buffers), and
//! * adopting kernel-returned fds into `OwnedFd` (fresh, uniquely
//!   owned by construction).

#![allow(unsafe_code)]

use std::fs::File;
use std::io::{self, Read as _, Write as _};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint};
use std::time::Duration;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never registered.
pub const EPOLLERR: u32 = 0x008;
/// Peer hangup (`EPOLLHUP`); always reported, never registered.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write side (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One readiness event, ABI-compatible with the kernel's
/// `struct epoll_event`. The kernel packs it on x86-64.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy, Debug, Default)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The caller's token, returned verbatim (we use it as a
    /// connection-slab index plus generation).
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
}

/// Turns a `-1`-style libc return into `io::Result`.
fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance. Registration ties a raw fd to a `u64`
/// token; the caller keeps the fd alive for as long as it is
/// registered (the event loop owns its sockets, so this holds by
/// construction).
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (fd exhaustion, mostly).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; a non-negative
        // return is a fresh fd we uniquely own.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `self.fd` and `fd` are live descriptors; `event` is a
        // properly initialized struct that outlives the call (the
        // kernel copies it before returning).
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut event) })?;
        Ok(())
    }

    /// Registers `fd` for `events`, tagging readiness reports with
    /// `token`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. the fd is already
    /// registered).
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Re-arms `fd` with a new event mask (and token).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, filling `events` from the front, and
    /// returns how many fired. `timeout` of `None` blocks indefinitely;
    /// `Some(d)` wakes after `d` even if nothing fired (rounded up to a
    /// millisecond so a nonzero timeout never becomes a busy-poll).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure; `EINTR` is retried internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout: Option<Duration>) -> io::Result<usize> {
        let millis: c_int = match timeout {
            None => -1,
            Some(d) => d
                .as_millis()
                .max(u128::from(u32::from(!d.is_zero())))
                .min(i32::MAX as u128) as c_int,
        };
        loop {
            // SAFETY: the buffer pointer and capacity describe a live,
            // writable slice; the kernel fills at most `maxevents`
            // entries.
            let n = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as c_int,
                    millis,
                )
            };
            match cvt(n) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// An owned, nonblocking eventfd used as the event loop's wakeup
/// doorbell: service worker threads ring it after queueing a response,
/// and the loop drains it once per wakeup. An eventfd beats the
/// classic self-pipe for this: one fd instead of two, a single 8-byte
/// counter the kernel coalesces (N signals before a drain cost one
/// wakeup, not N buffered bytes), and no pipe buffer to fill up and
/// block a signaller.
#[derive(Debug)]
pub struct EventFd {
    file: File,
}

impl EventFd {
    /// Creates a close-on-exec, nonblocking eventfd with a zero
    /// counter.
    ///
    /// # Errors
    ///
    /// Propagates `eventfd` failure.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: eventfd takes no pointers; a non-negative return is a
        // fresh fd we uniquely own, adopted into File for safe I/O.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd {
            file: unsafe { File::from_raw_fd(fd) },
        })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Rings the doorbell. Infallible by design: the only failure modes
    /// are a counter at `u64::MAX - 1` (the pending wakeup is already
    /// unmissable) or a torn-down loop.
    pub fn signal(&self) {
        let _ = (&self.file).write(&1u64.to_ne_bytes());
    }

    /// Clears the doorbell so the next signal produces a fresh wakeup.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.file).read(&mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_signals_wake_epoll_and_coalesce() {
        let epoll = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        epoll.add(efd.raw(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::default(); 4];
        // Nothing signalled: a zero-ish timeout reports no readiness.
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(n, 0);

        // Three signals coalesce into one readable event with our token.
        efd.signal();
        efd.signal();
        efd.signal();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 7);
        assert_ne!({ events[0].events } & EPOLLIN, 0);

        // Drained: readiness clears until the next signal.
        efd.drain();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn epoll_reports_socket_readability() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll
            .add(server_side.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .unwrap();

        let mut events = [EpollEvent::default(); 4];
        client.write_all(b"ping").unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 42);
        assert_ne!({ events[0].events } & EPOLLIN, 0);

        epoll.delete(server_side.as_raw_fd()).unwrap();
    }
}
