//! The `lexforensica-wire` frame protocol: length-prefixed binary
//! frames, std-only.
//!
//! # Layout
//!
//! Every frame on the wire is a 4-byte big-endian body length followed
//! by the body. The body's first byte is the frame kind:
//!
//! ```text
//! request  (kind 1): [1][id: u64 BE][deadline_ms: u32 BE][payload...]
//! response (kind 2): [2][id: u64 BE][status: u8][queue_wait_us: u64 BE]
//!                       [total_us: u64 BE][payload...]
//! request  (kind 3): [3][id: u64 BE][deadline_ms: u32 BE][flags: u8]
//!                       [payload...]
//! response (kind 4): [4][id: u64 BE][status: u8][queue_wait_us: u64 BE]
//!                       [total_us: u64 BE][trace: u64 BE]
//!                       [explain_len: u32 BE][explain...][payload...]
//! plan req (kind 5): [5][id: u64 BE][deadline_ms: u32 BE][payload...]
//! plan rsp (kind 6): [6][id: u64 BE][status: u8][queue_wait_us: u64 BE]
//!                       [total_us: u64 BE][payload...]
//! ```
//!
//! * `id` is chosen by the client and echoed verbatim in the response —
//!   responses complete **out of order**, and the id is the only match
//!   key. The server never interprets it.
//! * `deadline_ms` is the request's service deadline in milliseconds
//!   relative to arrival; `0` means no deadline.
//! * A request payload is one UTF-8 JSONL action specification (the
//!   [`forensic_law::spec`] vocabulary). A response payload is the
//!   verdict line (`Ok`) or a diagnostic message (every other status).
//!   Either payload may be empty.
//!
//! # Protocol versioning
//!
//! Kinds 3 and 4 are the *versioned explain* extension. A kind-3
//! request is a kind-1 request plus a flags byte; flag bit 0
//! ([`flags::WANT_EXPLAIN`]) asks the server to attach the request's
//! trace id and provenance record to the response, which then arrives
//! as kind 4 (`explain` holds the provenance JSON; `trace` the id that
//! joins the response to its span chain). Compatibility is structural:
//! a flag-less request **encodes as kind 1, byte-identical to the old
//! protocol**, and the server answers kind 1/3-without-the-flag with
//! kind 2 — so old clients and old servers interoperate with new peers
//! unchanged, and a server that predates kind 3 rejects it loudly as an
//! unknown kind rather than mis-parsing it.
//!
//! Kinds 5 and 6 are the *v3 planning* extension. A kind-5 request
//! carries a planner problem document (the `plan` subcommand's JSONL
//! vocabulary) instead of a single action spec; the server answers with
//! a kind-6 response whose payload is the rendered plan (or the
//! "no lawful path" explanation), `Ok` either way — `BadRequest`
//! carries the per-line parse errors. The headers mirror kinds 1 and 2
//! exactly, and the versioning contract carries over structurally:
//! kinds 1–4 encode byte-for-byte as before, v1/v2 peers never receive
//! a kind-5/6 frame unless they send one, and a pre-v3 server rejects
//! kind 5 loudly as an unknown kind. `deadline_ms` is carried for
//! symmetry but the plan search runs to completion — servers ignore it
//! (documented server behavior, not a framing concern).
//! * A body longer than the configured cap is refused **before**
//!   allocation ([`FrameError::TooLarge`]); the length prefix alone is
//!   never trusted to size a buffer past the cap. A zero-length body
//!   (no kind byte) is malformed.
//!
//! [`read_frame`] returns `Ok(None)` on a clean end-of-stream — EOF
//! *between* frames. EOF *inside* a frame (a torn frame: the peer died
//! or lied about the length) is [`FrameError::Torn`], which is how a
//! reader distinguishes a polite goodbye from data loss.

use std::io::{self, Read, Write};

/// Default cap on a frame body, in bytes. One JSONL action spec is tens
/// of bytes; a megabyte of headroom means the cap only ever fires on a
/// corrupt or hostile length prefix.
pub const MAX_FRAME: u32 = 1 << 20;

/// Frame-kind byte for a request.
const KIND_REQUEST: u8 = 1;
/// Frame-kind byte for a response.
const KIND_RESPONSE: u8 = 2;
/// Frame-kind byte for a flagged (v2) request.
const KIND_REQUEST_V2: u8 = 3;
/// Frame-kind byte for an explain-carrying (v2) response.
const KIND_RESPONSE_V2: u8 = 4;
/// Frame-kind byte for a (v3) plan request.
const KIND_PLAN_REQUEST: u8 = 5;
/// Frame-kind byte for a (v3) plan response.
const KIND_PLAN_RESPONSE: u8 = 6;

/// Fixed bytes in a request body before the payload: kind + id +
/// deadline.
const REQUEST_HEADER: usize = 1 + 8 + 4;
/// Fixed bytes in a response body before the payload: kind + id +
/// status + queue wait + total.
const RESPONSE_HEADER: usize = 1 + 8 + 1 + 8 + 8;
/// Fixed bytes in a v2 request body: the v1 header plus the flags byte.
const REQUEST_V2_HEADER: usize = REQUEST_HEADER + 1;
/// Fixed bytes in a v2 response body: the v1 header plus the trace id
/// and the explain-section length.
const RESPONSE_V2_HEADER: usize = RESPONSE_HEADER + 8 + 4;
/// Fixed bytes in a v3 plan request body (same shape as v1 requests).
const PLAN_REQUEST_HEADER: usize = REQUEST_HEADER;
/// Fixed bytes in a v3 plan response body (same shape as v1 responses).
const PLAN_RESPONSE_HEADER: usize = RESPONSE_HEADER;

/// Request flag bits carried by kind-3 frames.
pub mod flags {
    /// Ask the server to attach the trace id and the provenance record
    /// (a kind-4 response) instead of a bare kind-2 response.
    pub const WANT_EXPLAIN: u8 = 1;
}

/// The explain section of a v2 response: the trace id minted for the
/// request at frame decode, and the verdict's provenance record as
/// JSON. Present only when the request set [`flags::WANT_EXPLAIN`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explain {
    /// The server-minted trace id — the join key for the request's span
    /// chain and `--explain` sink line.
    pub trace: u64,
    /// The provenance record (a JSON array of rule firings; empty for
    /// non-`Ok` statuses that never reached the engine).
    pub provenance: Vec<u8>,
}

/// How the service answered a request, as one wire byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Assessed; the payload is the verdict line.
    Ok,
    /// The deadline passed before a worker got to it.
    TimedOut,
    /// Evicted from the queue by a newer request (drop-oldest).
    Shed,
    /// Refused at admission: the queue was full under `reject`.
    Rejected,
    /// The request payload did not parse as an action specification;
    /// the payload carries the parse error.
    BadRequest,
    /// The server is draining and did not admit the request.
    GoingAway,
}

impl Status {
    /// The wire byte for this status.
    pub fn as_byte(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::TimedOut => 1,
            Status::Shed => 2,
            Status::Rejected => 3,
            Status::BadRequest => 4,
            Status::GoingAway => 5,
        }
    }

    /// Parses a wire byte.
    pub fn from_byte(b: u8) -> Option<Status> {
        Some(match b {
            0 => Status::Ok,
            1 => Status::TimedOut,
            2 => Status::Shed,
            3 => Status::Rejected,
            4 => Status::BadRequest,
            5 => Status::GoingAway,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Status::Ok => "ok",
            Status::TimedOut => "timeout",
            Status::Shed => "shed",
            Status::Rejected => "rejected",
            Status::BadRequest => "bad-request",
            Status::GoingAway => "going-away",
        })
    }
}

/// One compliance request on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Service deadline in milliseconds from arrival; `0` = none.
    pub deadline_ms: u32,
    /// Ask the server for a kind-4 response carrying the trace id and
    /// provenance record. `false` encodes as kind 1, byte-identical to
    /// the pre-v2 protocol.
    pub want_explain: bool,
    /// One JSONL action specification (UTF-8).
    pub payload: Vec<u8>,
}

/// One compliance response on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The id of the request this answers.
    pub id: u64,
    /// How the service answered.
    pub status: Status,
    /// Time the request spent queued, in microseconds.
    pub queue_wait_us: u64,
    /// Admission-to-response latency, in microseconds.
    pub total_us: u64,
    /// The explain section, when the request asked for one. `None`
    /// encodes as kind 2, byte-identical to the pre-v2 protocol.
    pub explain: Option<Explain>,
    /// Verdict line (`Ok`) or diagnostic message (otherwise).
    pub payload: Vec<u8>,
}

/// One planning request on the wire (v3, kind 5): the payload is a
/// whole planner problem document — the `plan` subcommand's JSONL
/// vocabulary — not a single action spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Carried for header symmetry with kind 1; the plan search runs to
    /// completion, so servers ignore it.
    pub deadline_ms: u32,
    /// A planner problem document (UTF-8 JSONL).
    pub payload: Vec<u8>,
}

/// One planning response on the wire (v3, kind 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanResponse {
    /// The id of the plan request this answers.
    pub id: u64,
    /// `Ok` for a solved search — including a "no lawful path" outcome,
    /// which is an answer, not an error; `BadRequest` when the problem
    /// document did not parse (the payload carries the per-line
    /// errors).
    pub status: Status,
    /// Zero today: plan requests are solved on a dedicated thread, not
    /// the service queue. Kept for header symmetry with kind 2.
    pub queue_wait_us: u64,
    /// Decode-to-response latency, in microseconds.
    pub total_us: u64,
    /// The rendered plan / explanation (`Ok`) or diagnostics.
    pub payload: Vec<u8>,
}

/// Any frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A client request.
    Request(Request),
    /// A server response.
    Response(Response),
    /// A client planning request (v3).
    PlanRequest(PlanRequest),
    /// A server planning response (v3).
    PlanResponse(PlanResponse),
}

impl Frame {
    /// Total bytes this frame occupies on the wire (prefix + body).
    pub fn wire_len(&self) -> usize {
        4 + match self {
            Frame::Request(r) if r.want_explain => REQUEST_V2_HEADER + r.payload.len(),
            Frame::Request(r) => REQUEST_HEADER + r.payload.len(),
            Frame::Response(r) => match &r.explain {
                Some(explain) => RESPONSE_V2_HEADER + explain.provenance.len() + r.payload.len(),
                None => RESPONSE_HEADER + r.payload.len(),
            },
            Frame::PlanRequest(r) => PLAN_REQUEST_HEADER + r.payload.len(),
            Frame::PlanResponse(r) => PLAN_RESPONSE_HEADER + r.payload.len(),
        }
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// EOF inside a frame: the peer closed (or died) mid-frame.
    Torn,
    /// The length prefix exceeds the configured cap; refused before any
    /// allocation.
    TooLarge {
        /// The claimed body length.
        len: u32,
        /// The cap in force.
        max: u32,
    },
    /// The body bytes do not decode (empty body, unknown kind or status,
    /// body shorter than its fixed header).
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Torn => f.write_str("torn frame: stream ended mid-frame"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// Whether this is a transient read timeout (the socket's receive
    /// timeout fired), as opposed to a real failure. Servers use timed
    /// reads as their drain/idle tick.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
        )
    }
}

/// Encodes a frame (length prefix + body) into a fresh buffer.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(frame.wire_len());
    out.extend_from_slice(&[0, 0, 0, 0]); // length back-patched below
    match frame {
        Frame::Request(r) => {
            out.push(if r.want_explain {
                KIND_REQUEST_V2
            } else {
                KIND_REQUEST
            });
            out.extend_from_slice(&r.id.to_be_bytes());
            out.extend_from_slice(&r.deadline_ms.to_be_bytes());
            if r.want_explain {
                out.push(flags::WANT_EXPLAIN);
            }
            out.extend_from_slice(&r.payload);
        }
        Frame::Response(r) => {
            out.push(if r.explain.is_some() {
                KIND_RESPONSE_V2
            } else {
                KIND_RESPONSE
            });
            out.extend_from_slice(&r.id.to_be_bytes());
            out.push(r.status.as_byte());
            out.extend_from_slice(&r.queue_wait_us.to_be_bytes());
            out.extend_from_slice(&r.total_us.to_be_bytes());
            if let Some(explain) = &r.explain {
                out.extend_from_slice(&explain.trace.to_be_bytes());
                out.extend_from_slice(&(explain.provenance.len() as u32).to_be_bytes());
                out.extend_from_slice(&explain.provenance);
            }
            out.extend_from_slice(&r.payload);
        }
        Frame::PlanRequest(r) => {
            out.push(KIND_PLAN_REQUEST);
            out.extend_from_slice(&r.id.to_be_bytes());
            out.extend_from_slice(&r.deadline_ms.to_be_bytes());
            out.extend_from_slice(&r.payload);
        }
        Frame::PlanResponse(r) => {
            out.push(KIND_PLAN_RESPONSE);
            out.extend_from_slice(&r.id.to_be_bytes());
            out.push(r.status.as_byte());
            out.extend_from_slice(&r.queue_wait_us.to_be_bytes());
            out.extend_from_slice(&r.total_us.to_be_bytes());
            out.extend_from_slice(&r.payload);
        }
    }
    let body_len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&body_len.to_be_bytes());
    out
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates the underlying stream error.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode(frame))
}

/// Decodes a frame body (the bytes after the length prefix).
///
/// # Errors
///
/// [`FrameError::Malformed`] on an empty body, unknown kind or status
/// byte, or a body shorter than its fixed header.
pub fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
    let malformed = |msg: &str| FrameError::Malformed(msg.to_string());
    match body.first() {
        None => Err(malformed("empty body")),
        Some(&KIND_REQUEST) => {
            if body.len() < REQUEST_HEADER {
                return Err(malformed("request body shorter than its header"));
            }
            Ok(Frame::Request(Request {
                id: u64::from_be_bytes(body[1..9].try_into().expect("8 bytes")),
                deadline_ms: u32::from_be_bytes(body[9..13].try_into().expect("4 bytes")),
                want_explain: false,
                payload: body[REQUEST_HEADER..].to_vec(),
            }))
        }
        Some(&KIND_REQUEST_V2) => {
            if body.len() < REQUEST_V2_HEADER {
                return Err(malformed("v2 request body shorter than its header"));
            }
            Ok(Frame::Request(Request {
                id: u64::from_be_bytes(body[1..9].try_into().expect("8 bytes")),
                deadline_ms: u32::from_be_bytes(body[9..13].try_into().expect("4 bytes")),
                // Unknown flag bits are reserved and ignored, so a
                // future flag does not break this decoder.
                want_explain: body[13] & flags::WANT_EXPLAIN != 0,
                payload: body[REQUEST_V2_HEADER..].to_vec(),
            }))
        }
        Some(&KIND_RESPONSE) => {
            if body.len() < RESPONSE_HEADER {
                return Err(malformed("response body shorter than its header"));
            }
            let status = Status::from_byte(body[9])
                .ok_or_else(|| FrameError::Malformed(format!("unknown status byte {}", body[9])))?;
            Ok(Frame::Response(Response {
                id: u64::from_be_bytes(body[1..9].try_into().expect("8 bytes")),
                status,
                queue_wait_us: u64::from_be_bytes(body[10..18].try_into().expect("8 bytes")),
                total_us: u64::from_be_bytes(body[18..26].try_into().expect("8 bytes")),
                explain: None,
                payload: body[RESPONSE_HEADER..].to_vec(),
            }))
        }
        Some(&KIND_RESPONSE_V2) => {
            if body.len() < RESPONSE_V2_HEADER {
                return Err(malformed("v2 response body shorter than its header"));
            }
            let status = Status::from_byte(body[9])
                .ok_or_else(|| FrameError::Malformed(format!("unknown status byte {}", body[9])))?;
            let explain_len =
                u32::from_be_bytes(body[34..38].try_into().expect("4 bytes")) as usize;
            let explain_end = RESPONSE_V2_HEADER
                .checked_add(explain_len)
                .filter(|&end| end <= body.len())
                .ok_or_else(|| malformed("v2 response explain section overruns the body"))?;
            Ok(Frame::Response(Response {
                id: u64::from_be_bytes(body[1..9].try_into().expect("8 bytes")),
                status,
                queue_wait_us: u64::from_be_bytes(body[10..18].try_into().expect("8 bytes")),
                total_us: u64::from_be_bytes(body[18..26].try_into().expect("8 bytes")),
                explain: Some(Explain {
                    trace: u64::from_be_bytes(body[26..34].try_into().expect("8 bytes")),
                    provenance: body[RESPONSE_V2_HEADER..explain_end].to_vec(),
                }),
                payload: body[explain_end..].to_vec(),
            }))
        }
        Some(&KIND_PLAN_REQUEST) => {
            if body.len() < PLAN_REQUEST_HEADER {
                return Err(malformed("plan request body shorter than its header"));
            }
            Ok(Frame::PlanRequest(PlanRequest {
                id: u64::from_be_bytes(body[1..9].try_into().expect("8 bytes")),
                deadline_ms: u32::from_be_bytes(body[9..13].try_into().expect("4 bytes")),
                payload: body[PLAN_REQUEST_HEADER..].to_vec(),
            }))
        }
        Some(&KIND_PLAN_RESPONSE) => {
            if body.len() < PLAN_RESPONSE_HEADER {
                return Err(malformed("plan response body shorter than its header"));
            }
            let status = Status::from_byte(body[9])
                .ok_or_else(|| FrameError::Malformed(format!("unknown status byte {}", body[9])))?;
            Ok(Frame::PlanResponse(PlanResponse {
                id: u64::from_be_bytes(body[1..9].try_into().expect("8 bytes")),
                status,
                queue_wait_us: u64::from_be_bytes(body[10..18].try_into().expect("8 bytes")),
                total_us: u64::from_be_bytes(body[18..26].try_into().expect("8 bytes")),
                payload: body[PLAN_RESPONSE_HEADER..].to_vec(),
            }))
        }
        Some(&kind) => Err(FrameError::Malformed(format!("unknown frame kind {kind}"))),
    }
}

/// Fills `buf` from `r`, treating EOF as a torn frame — the caller has
/// already committed to a frame by reading part of it.
fn read_committed(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(FrameError::Torn),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary.
///
/// A read timeout (`WouldBlock`/`TimedOut`) before the first byte of a
/// frame surfaces as [`FrameError::Io`] with nothing consumed, so the
/// caller may safely retry; see [`FrameError::is_timeout`]. The server
/// wraps its stream in a ticking reader that absorbs mid-frame
/// timeouts, so in-frame reads never lose partial state.
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the length prefix exceeds `max_frame`
/// (nothing of the body is read); [`FrameError::Torn`] on EOF inside
/// the frame; [`FrameError::Malformed`] when the body does not decode;
/// [`FrameError::Io`] on stream failure.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Option<Frame>, FrameError> {
    // The first byte decides between clean EOF and a frame commitment.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let mut rest = [0u8; 3];
    read_committed(r, &mut rest)?;
    let len = u32::from_be_bytes([first[0], rest[0], rest[1], rest[2]]);
    if len > max_frame {
        return Err(FrameError::TooLarge {
            len,
            max: max_frame,
        });
    }
    let mut body = vec![0u8; len as usize];
    read_committed(r, &mut body)?;
    decode_body(&body).map(Some)
}

/// An incremental frame decoder over buffered bytes — the batched
/// decode half of the readiness-driven server.
///
/// The event loop reads whatever the socket has (one `read` per
/// readable event, repeated to `WouldBlock`), [`extend`](Self::extend)s
/// the decoder, then drains **every** complete frame with
/// [`next_frame`](Self::next_frame) before going back to `epoll`. A
/// frame split at any byte — inside the u32 length prefix, across a
/// v1/v2 boundary — simply waits in the buffer until the rest arrives;
/// the decoded frames are byte-identical to a one-shot
/// [`read_frame`] parse of the same stream (pinned by the every-split-
/// point fuzz suite).
///
/// # Buffer growth
///
/// Bytes live in one growable contiguous buffer with a consumed-prefix
/// cursor. The buffer grows to the high-water mark of one readable
/// event's backlog (bounded per frame by `max_frame` + header, and in
/// practice by the in-flight cap pausing decode), and the consumed
/// prefix is compacted away once it outgrows either the live remainder
/// or 64 KiB, so steady-state pipelining does not reallocate.
#[derive(Debug)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    start: usize,
    max_frame: u32,
}

impl StreamDecoder {
    /// A decoder enforcing `max_frame` on every length prefix.
    pub fn new(max_frame: u32) -> StreamDecoder {
        StreamDecoder {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Appends raw socket bytes for decoding.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes received but not yet decoded into a frame. Nonzero at EOF
    /// means the peer quit mid-frame ([`FrameError::Torn`] territory —
    /// the caller decides, because only it sees EOF).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Total wire size (length prefix + body) of the frame at the head
    /// of the buffer, once its prefix has arrived; `None` while fewer
    /// than four bytes are buffered. The length is reported verbatim,
    /// including one beyond `max_frame` — [`next_frame`](Self::next_frame)
    /// still rejects those; callers use this only to size read limits.
    pub fn pending_frame_len(&self) -> Option<usize> {
        let pending = &self.buf[self.start..];
        if pending.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes(pending[..4].try_into().expect("4 bytes"));
        Some(4 + len as usize)
    }

    /// Decodes the next complete frame, or `Ok(None)` when the buffer
    /// holds only a partial frame (feed more bytes and retry).
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLarge`] as soon as a length prefix exceeds the
    /// cap (before the body arrives); [`FrameError::Malformed`] when a
    /// complete body does not decode. Both poison the connection — the
    /// caller must stop decoding this stream.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let pending = &self.buf[self.start..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(pending[..4].try_into().expect("4 bytes"));
        if len > self.max_frame {
            return Err(FrameError::TooLarge {
                len,
                max: self.max_frame,
            });
        }
        let total = 4 + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let frame = decode_body(&pending[4..total])?;
        self.start += total;
        self.compact();
        Ok(Some(frame))
    }

    /// Reclaims the consumed prefix when it dominates the buffer.
    fn compact(&mut self) {
        if self.start == 0 {
            return;
        }
        let live = self.buf.len() - self.start;
        if live == 0 {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= live || self.start >= 64 * 1024 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn request(id: u64, payload: &[u8]) -> Frame {
        Frame::Request(Request {
            id,
            deadline_ms: 250,
            want_explain: false,
            payload: payload.to_vec(),
        })
    }

    fn response(id: u64, payload: &[u8]) -> Frame {
        Frame::Response(Response {
            id,
            status: Status::Ok,
            queue_wait_us: 17,
            total_us: 1234,
            explain: None,
            payload: payload.to_vec(),
        })
    }

    fn plan_request(id: u64, payload: &[u8]) -> Frame {
        Frame::PlanRequest(PlanRequest {
            id,
            deadline_ms: 0,
            payload: payload.to_vec(),
        })
    }

    fn plan_response(id: u64, payload: &[u8]) -> Frame {
        Frame::PlanResponse(PlanResponse {
            id,
            status: Status::Ok,
            queue_wait_us: 0,
            total_us: 918,
            payload: payload.to_vec(),
        })
    }

    fn explained_response(id: u64, provenance: &[u8], payload: &[u8]) -> Frame {
        Frame::Response(Response {
            id,
            status: Status::Ok,
            queue_wait_us: 17,
            total_us: 1234,
            explain: Some(Explain {
                trace: id * 31 + 1,
                provenance: provenance.to_vec(),
            }),
            payload: payload.to_vec(),
        })
    }

    #[test]
    fn frames_round_trip() {
        for frame in [
            request(0, b"{}"),
            request(u64::MAX, b"{\"actor\": \"leo\"}"),
            response(7, b"need (wiretap order) [settled]"),
            Frame::Response(Response {
                id: 9,
                status: Status::BadRequest,
                queue_wait_us: 0,
                total_us: 0,
                explain: None,
                payload: b"line did not parse".to_vec(),
            }),
            Frame::Request(Request {
                id: 11,
                deadline_ms: 0,
                want_explain: true,
                payload: b"{\"actor\": \"leo\"}".to_vec(),
            }),
            explained_response(12, br#"[{"rule":"verdict.final"}]"#, b"no need [settled]"),
            explained_response(13, b"", b""),
            plan_request(14, b"{\"goal\": \"x\", \"collect\": {\"actor\": \"leo\"}}"),
            plan_request(15, b""),
            plan_response(14, b"plan: 2 lawful step(s), total cost 11"),
            Frame::PlanResponse(PlanResponse {
                id: 16,
                status: Status::BadRequest,
                queue_wait_us: 0,
                total_us: 0,
                payload: b"line 2: not json".to_vec(),
            }),
        ] {
            let bytes = encode(&frame);
            assert_eq!(bytes.len(), frame.wire_len());
            let mut cursor = Cursor::new(bytes);
            let decoded = read_frame(&mut cursor, MAX_FRAME).unwrap().unwrap();
            assert_eq!(decoded, frame);
            // And the stream is exactly consumed: next read is clean EOF.
            assert!(read_frame(&mut cursor, MAX_FRAME).unwrap().is_none());
        }
    }

    #[test]
    fn zero_length_payload_round_trips() {
        for frame in [
            request(3, b""),
            response(3, b""),
            plan_request(3, b""),
            plan_response(3, b""),
        ] {
            let bytes = encode(&frame);
            let decoded = read_frame(&mut Cursor::new(bytes), MAX_FRAME)
                .unwrap()
                .unwrap();
            assert_eq!(decoded, frame);
            match decoded {
                Frame::Request(r) => assert!(r.payload.is_empty()),
                Frame::Response(r) => assert!(r.payload.is_empty()),
                Frame::PlanRequest(r) => assert!(r.payload.is_empty()),
                Frame::PlanResponse(r) => assert!(r.payload.is_empty()),
            }
        }
    }

    #[test]
    fn status_bytes_round_trip_and_unknown_is_rejected() {
        for status in [
            Status::Ok,
            Status::TimedOut,
            Status::Shed,
            Status::Rejected,
            Status::BadRequest,
            Status::GoingAway,
        ] {
            assert_eq!(Status::from_byte(status.as_byte()), Some(status));
        }
        assert_eq!(Status::from_byte(200), None);
    }

    #[test]
    fn oversized_length_prefix_is_refused_without_reading_the_body() {
        // Claim a 2 MiB body against a 1 MiB cap; supply only the prefix.
        let huge = (MAX_FRAME * 2).to_be_bytes();
        let mut cursor = Cursor::new(huge.to_vec());
        match read_frame(&mut cursor, MAX_FRAME) {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, MAX_FRAME * 2);
                assert_eq!(max, MAX_FRAME);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Nothing beyond the 4 prefix bytes was consumed.
        assert_eq!(cursor.position(), 4);
    }

    #[test]
    fn exact_cap_is_accepted() {
        let frame = request(1, &vec![b' '; MAX_FRAME as usize - REQUEST_HEADER]);
        let bytes = encode(&frame);
        let decoded = read_frame(&mut Cursor::new(bytes), MAX_FRAME)
            .unwrap()
            .unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn torn_frames_are_distinguished_from_clean_eof() {
        let bytes = encode(&request(5, b"{\"actor\": \"leo\"}"));
        // Clean EOF: empty stream.
        assert!(read_frame(&mut Cursor::new(Vec::new()), MAX_FRAME)
            .unwrap()
            .is_none());
        // Torn at every possible cut point inside the frame.
        for cut in 1..bytes.len() {
            let mut cursor = Cursor::new(bytes[..cut].to_vec());
            match read_frame(&mut cursor, MAX_FRAME) {
                Err(FrameError::Torn) => {}
                other => panic!("cut at {cut}: expected Torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_bodies_are_rejected() {
        // Empty body.
        assert!(matches!(
            decode_body(b""),
            Err(FrameError::Malformed(msg)) if msg.contains("empty")
        ));
        // Unknown kind.
        assert!(matches!(
            decode_body(&[9, 0, 0]),
            Err(FrameError::Malformed(msg)) if msg.contains("kind 9")
        ));
        // Request body shorter than its fixed header.
        assert!(matches!(
            decode_body(&[KIND_REQUEST, 1, 2, 3]),
            Err(FrameError::Malformed(msg)) if msg.contains("shorter")
        ));
        // Response with an unknown status byte.
        let mut body = vec![KIND_RESPONSE];
        body.extend_from_slice(&7u64.to_be_bytes());
        body.push(99); // status
        body.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            decode_body(&body),
            Err(FrameError::Malformed(msg)) if msg.contains("status byte 99")
        ));
    }

    /// The backward-compatibility contract, at the byte level: frames
    /// that don't use the explain extension encode exactly as the pre-v2
    /// protocol did, so an old peer cannot tell a new one apart.
    #[test]
    fn flagless_frames_are_byte_identical_to_the_v1_layout() {
        let req = encode(&request(0x0102_0304_0506_0708, b"spec"));
        let mut expected = Vec::new();
        expected.extend_from_slice(&(REQUEST_HEADER as u32 + 4).to_be_bytes());
        expected.push(KIND_REQUEST);
        expected.extend_from_slice(&0x0102_0304_0506_0708u64.to_be_bytes());
        expected.extend_from_slice(&250u32.to_be_bytes());
        expected.extend_from_slice(b"spec");
        assert_eq!(req, expected);

        let resp = encode(&response(42, b"ok"));
        assert_eq!(resp[4], KIND_RESPONSE);
        assert_eq!(resp.len(), 4 + RESPONSE_HEADER + 2);
    }

    #[test]
    fn v2_request_ignores_reserved_flag_bits() {
        // Build a kind-3 body by hand with extra flag bits set.
        let mut body = vec![KIND_REQUEST_V2];
        body.extend_from_slice(&5u64.to_be_bytes());
        body.extend_from_slice(&0u32.to_be_bytes());
        body.push(flags::WANT_EXPLAIN | 0x80);
        body.extend_from_slice(b"{}");
        match decode_body(&body).unwrap() {
            Frame::Request(r) => {
                assert!(r.want_explain);
                assert_eq!(r.payload, b"{}");
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn v2_response_with_overrunning_explain_section_is_rejected() {
        let frame = explained_response(1, b"provenance-json", b"payload");
        let bytes = encode(&frame);
        let mut body = bytes[4..].to_vec();
        // Inflate the explain length past the end of the body.
        body[34..38].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            decode_body(&body),
            Err(FrameError::Malformed(msg)) if msg.contains("overruns")
        ));
    }

    #[test]
    fn explain_sections_split_cleanly_from_the_payload() {
        let frame = explained_response(2, br#"[{"rule":"privacy.rep"}]"#, b"verdict line");
        let bytes = encode(&frame);
        assert_eq!(bytes.len(), frame.wire_len());
        match read_frame(&mut Cursor::new(bytes), MAX_FRAME)
            .unwrap()
            .unwrap()
        {
            Frame::Response(r) => {
                let explain = r.explain.expect("explain section survives");
                assert_eq!(explain.provenance, br#"[{"rule":"privacy.rep"}]"#);
                assert_eq!(r.payload, b"verdict line");
            }
            other => panic!("expected response, got {other:?}"),
        }
    }

    #[test]
    fn timeouts_are_recognized_and_nothing_is_consumed_before_a_frame() {
        struct TimesOut;
        impl Read for TimesOut {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"))
            }
        }
        let err = read_frame(&mut TimesOut, MAX_FRAME).unwrap_err();
        assert!(err.is_timeout());
        assert!(!FrameError::Torn.is_timeout());
    }

    /// A reader that hands out the recorded stream in pseudo-random
    /// splits — the protocol must be invariant to how the bytes arrive.
    struct RandomSplit {
        bytes: Vec<u8>,
        pos: usize,
        state: u64,
    }

    impl RandomSplit {
        fn new(bytes: Vec<u8>, seed: u64) -> Self {
            RandomSplit {
                bytes,
                pos: 0,
                state: seed.max(1),
            }
        }

        /// xorshift64* — tiny, deterministic, good enough to vary chunk
        /// sizes.
        fn next(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    impl Read for RandomSplit {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos == self.bytes.len() {
                return Ok(0);
            }
            let left = self.bytes.len() - self.pos;
            let chunk = (self.next() as usize % 7 + 1).min(left).min(buf.len());
            buf[..chunk].copy_from_slice(&self.bytes[self.pos..self.pos + chunk]);
            self.pos += chunk;
            Ok(chunk)
        }
    }

    #[test]
    fn fuzz_random_split_reader_reassembles_a_recorded_stream() {
        // A recorded conversation: varied kinds, ids, payload sizes —
        // including empty payloads and a payload with every byte value.
        let mut frames = Vec::new();
        for i in 0..60u64 {
            let payload: Vec<u8> = (0..(i * 13 % 257)).map(|j| (i + j) as u8).collect();
            frames.push(match i % 6 {
                0 => request(i, &payload),
                1 => Frame::Request(Request {
                    id: i,
                    deadline_ms: i as u32,
                    want_explain: true,
                    payload,
                }),
                2 => Frame::Response(Response {
                    id: i,
                    status: Status::from_byte((i % 6) as u8).unwrap(),
                    queue_wait_us: i * 1000,
                    total_us: i * 2000,
                    explain: None,
                    payload,
                }),
                3 => Frame::PlanRequest(PlanRequest {
                    id: i,
                    deadline_ms: i as u32,
                    payload,
                }),
                4 => Frame::PlanResponse(PlanResponse {
                    id: i,
                    status: Status::from_byte((i % 6) as u8).unwrap(),
                    queue_wait_us: i * 100,
                    total_us: i * 300,
                    payload,
                }),
                _ => Frame::Response(Response {
                    id: i,
                    status: Status::from_byte((i % 6) as u8).unwrap(),
                    queue_wait_us: i * 1000,
                    total_us: i * 2000,
                    explain: Some(Explain {
                        trace: i + 1,
                        provenance: (0..(i * 7 % 64)).map(|j| b'a' + (j % 26) as u8).collect(),
                    }),
                    payload,
                }),
            });
        }
        let mut stream = Vec::new();
        for frame in &frames {
            stream.extend_from_slice(&encode(frame));
        }
        for seed in 1..=20u64 {
            let mut reader = RandomSplit::new(stream.clone(), seed);
            let mut decoded = Vec::new();
            while let Some(frame) = read_frame(&mut reader, MAX_FRAME).unwrap() {
                decoded.push(frame);
            }
            assert_eq!(decoded, frames, "seed {seed} mangled the stream");
        }
    }
}
