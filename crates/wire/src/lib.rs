//! # wire — `lexforensica-wire`
//!
//! A std-only TCP serving layer over the compliance service: the
//! network front end that turns the in-process
//! [`ComplianceService`](service::ComplianceService) into something a
//! remote requester — the law-enforcement/provider interface the source
//! paper's legal analysis keeps returning to — can actually dial.
//!
//! Everything here is `std::net` + threads; no external dependencies,
//! no async runtime.
//!
//! * [`frame`] — the length-prefixed binary protocol: request frames
//!   carry a client-chosen id, a per-request deadline, and one JSONL
//!   action specification; response frames echo the id with a status
//!   byte, service timings, and the verdict line. Oversized length
//!   prefixes are refused before allocation; torn frames are
//!   distinguished from clean EOF.
//! * [`server`] — [`WireServer`]: the threaded model — accept loop plus
//!   per-connection reader/writer threads. Requests **pipeline** — the
//!   reader keeps decoding while earlier requests are still in the
//!   service, responses complete out of order matched by id — under a
//!   per-connection in-flight cap, with read/idle timeouts and a
//!   graceful drain that loses nothing admitted.
//! * [`event_server`] (Linux) — [`EventServer`]: the same wire contract
//!   served by a single epoll readiness loop over [`sys`]'s dep-free
//!   syscall shim: per-connection state machines, batched frame decode,
//!   vectored-write coalescing, and an eventfd completion doorbell.
//!   Two threads total regardless of connection count — the C10K
//!   server. Byte-identical protocol, journal, and explain output to
//!   the threaded server.
//! * [`client`] — [`WireClient`]: a thread-safe
//!   pipelining client (submit returns a [`PendingCall`];
//!   a reader thread routes responses back by id).
//! * [`load`] — the load-generation core: one driver thread sustaining
//!   thousands of pipelined in-flight requests across many connections
//!   (epoll on Linux, thread-per-connection elsewhere), pulling work
//!   from a [`LoadSource`] with optional microsecond pacing. Shared by
//!   the `wire_load` bench sweep and journal replay.
//! * [`metrics`] — connection-level counters and a wire-latency
//!   histogram in the same snapshot/JSON model as the service metrics.
//!
//! ```no_run
//! use service::prelude::*;
//! use std::sync::Arc;
//! use wire::prelude::*;
//!
//! let service = Arc::new(ComplianceService::start(ServiceConfig::default()));
//! let server = WireServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
//!     .expect("bind loopback");
//!
//! let client = WireClient::connect(server.local_addr()).expect("dial");
//! let line = br#"{"actor": "leo", "directed": "provider", "data": "content", "when": "prospective", "where": "domestic", "describe": "wiretap"}"#;
//! let response = client.roundtrip(line.to_vec(), 0).expect("round trip");
//! println!("{}: {}", response.status, String::from_utf8_lossy(&response.payload));
//!
//! server.shutdown();
//! if let Ok(service) = Arc::try_unwrap(service) {
//!     service.shutdown();
//! }
//! ```

// `deny` rather than `forbid`: the [`sys`] epoll/eventfd shim needs two
// foreign functions' worth of `unsafe`, scoped behind a module-level
// allow with the safety argument documented at each site. Everything
// else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
#[cfg(target_os = "linux")]
pub(crate) mod conn;
#[cfg(target_os = "linux")]
pub mod event_server;
pub mod frame;
pub mod load;
pub mod metrics;
pub mod server;
#[cfg(target_os = "linux")]
pub mod sys;

pub use client::{PendingCall, PendingPlan, WireClient, WireError};
#[cfg(target_os = "linux")]
pub use event_server::EventServer;
pub use frame::{
    Frame, FrameError, PlanRequest, PlanResponse, Request, Response, Status, StreamDecoder,
    MAX_FRAME,
};
pub use load::{LoadRequest, LoadSource};
pub use metrics::{WireMetrics, WireMetricsSnapshot};
pub use server::{ExplainSink, WireConfig, WireServer};

/// The names most callers want in scope.
pub mod prelude {
    pub use crate::client::{PendingCall, PendingPlan, WireClient, WireError};
    #[cfg(target_os = "linux")]
    pub use crate::event_server::EventServer;
    pub use crate::frame::{
        Frame, FrameError, PlanRequest, PlanResponse, Request, Response, Status,
    };
    pub use crate::load::{LoadRequest, LoadSource};
    pub use crate::metrics::WireMetricsSnapshot;
    pub use crate::server::{ExplainSink, WireConfig, WireServer};
}
