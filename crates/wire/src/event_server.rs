//! The event-driven TCP serving layer: one epoll readiness loop
//! multiplexing every connection, instead of two threads per socket.
//!
//! # Why
//!
//! The threaded [`WireServer`](crate::server::WireServer) spends two
//! stacks (~16 MiB of address space) and two schedulable entities per
//! connection. At C10K that is twenty thousand mostly-idle threads and
//! a scheduler meltdown. This server holds every connection as a small
//! state machine (`Connection` in `crate::conn`) owned by **one** loop
//! thread, woken only by readiness: `epoll_wait` for sockets, an
//! `eventfd` doorbell for service completions. Thread count is constant
//! in the connection count.
//!
//! # Architecture
//!
//! ```text
//!              ┌────────────────────────────────────────────┐
//!              │  event loop thread                         │
//!   accept ───►│  epoll_wait ── readable ──► read → decode  │
//!              │      ▲                      └► submit ─────┼──► service
//!              │      │ doorbell                            │    workers
//!              │      │ (eventfd)  writable ─► writev flush │      │
//!              └──────┼─────────────────────────────▲───────┘      │
//!                     │                             │              │
//!                     └── ring ◄── outbox ◄── encode + journal ◄───┘
//!                            (completion observer, worker thread)
//! ```
//!
//! The **completion path** is the only cross-thread traffic: a service
//! worker's observer encodes the response frame, appends the journal
//! record, pushes the bytes into the connection's outbox, decrements
//! in-flight, and rings the doorbell (deduplicated per connection by a
//! `scheduled` flag, coalesced by the eventfd counter — N completions
//! cost one wakeup). The loop drains the completion list, moves outbox
//! bytes into each write queue, and flushes with vectored writes.
//!
//! # Backpressure
//!
//! At [`WireConfig::max_inflight`] undispatched requests the loop stops
//! decoding that connection and disarms `EPOLLIN`; the kernel's receive
//! window fills and the client blocks — the same composition as the
//! threaded server (wire cap per connection, service queue across
//! connections), enforced by TCP instead of a parked reader thread.
//!
//! # Protocol equivalence
//!
//! Everything observable carries over from the threaded server
//! byte-identically: v1/v2 frames, trace minting at decode, journal
//! append before response enqueue, explain-sink lines, status mapping,
//! graceful drain (serve the accept backlog, answer in-flight, FIN,
//! bounded linger), idle timeouts, and the exactly-one-response
//! invariant. The loopback suites run the same assertions against both
//! servers.

use crate::conn::{ConnShared, Connection, Phase};
use crate::frame::{self, Explain, Frame, PlanResponse, Response, Status};
use crate::metrics::{WireMetrics, WireMetricsSnapshot};
use crate::server::{sink_line, solve_plan_payload, verdict_payload, ExplainSink, WireConfig};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use forensic_law::spec::ActionSpec;
use journal::{Journal, RecordData};
use obs::{Stage, TraceId};
use service::prelude::*;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token the listener registers under. Connection tokens are
/// `generation << 32 | slab index`; an index of `u32::MAX` would need
/// four billion simultaneous connections, so the top token values are
/// safely reserved.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Token the completion doorbell registers under.
const DOORBELL_TOKEN: u64 = u64::MAX - 1;

/// Stop reading a connection once this much undecoded data is buffered;
/// level-triggered epoll re-reports readiness once decoding catches up.
const READ_BUFFER_CAP: usize = 256 * 1024;

/// Socket-read scratch size per `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// How long a closed connection waits for the peer's FIN before
/// dropping the socket (same bound as the threaded server).
const LINGER: Duration = Duration::from_millis(250);

/// How long a fully answered `Draining` connection keeps trying to
/// flush queued responses to a peer that is not reading before closing
/// with the queue discarded. Without this bound a stalled (or
/// malicious) peer would pin `live` above zero and hang graceful drain
/// forever.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Readiness events fetched per `epoll_wait`.
const EVENT_BATCH: usize = 1024;

/// Consecutive `epoll_wait` failures tolerated (with a tick-long sleep
/// between retries) before the loop gives up: `EBADF`-class errors
/// never heal, and retrying forever would spin a core.
const MAX_WAIT_FAILURES: u32 = 8;

/// State shared by the loop thread and service-worker observers.
struct EvShared {
    service: Arc<ComplianceService>,
    config: WireConfig,
    metrics: Arc<WireMetrics>,
    explain: Option<Arc<ExplainSink>>,
    journal: Option<Arc<Journal>>,
    draining: AtomicBool,
    /// Wakes the loop: completions from workers, shutdown from the
    /// owner. The eventfd counter coalesces bursts into one wakeup.
    doorbell: EventFd,
    /// Connection tokens with responses waiting in their outboxes.
    completions: Mutex<Vec<u64>>,
}

impl std::fmt::Debug for EvShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvShared")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl EvShared {
    /// Appends one disposition to the journal, if one is attached.
    /// Append failure is terminal for the journal writer and surfaces
    /// through `Journal::close`, not per-request.
    fn journal_record(&self, trace: TraceId, status: Status, request: Vec<u8>, verdict: Vec<u8>) {
        if let Some(journal) = &self.journal {
            let _ = journal.append(RecordData {
                trace,
                at_us: journal::now_us(),
                status: status.as_byte(),
                request,
                verdict,
            });
        }
    }

    /// Puts `token` on the completion list and rings the doorbell,
    /// unless the connection is already scheduled.
    fn schedule(&self, conn: &ConnShared) {
        if !conn.scheduled.swap(true, Ordering::AcqRel) {
            self.completions
                .lock()
                .expect("completions lock")
                .push(conn.token);
            self.doorbell.signal();
        }
    }
}

/// A running event-driven TCP front end over a
/// [`ComplianceService`]. Drop-in for
/// [`WireServer`](crate::server::WireServer) — same constructors, same
/// wire behavior, two threads total (accept is folded into the loop).
/// See the [module docs](self).
#[derive(Debug)]
pub struct EventServer {
    local_addr: SocketAddr,
    shared: Arc<EvShared>,
    event_loop: Option<JoinHandle<()>>,
}

impl EventServer {
    /// Binds `addr` (port 0 picks a free port; see
    /// [`local_addr`](Self::local_addr)) and starts serving `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind, epoll-creation, and eventfd failures.
    pub fn start(
        addr: impl ToSocketAddrs,
        service: Arc<ComplianceService>,
        config: WireConfig,
    ) -> io::Result<EventServer> {
        EventServer::start_with_explain(addr, service, config, None)
    }

    /// [`start`](Self::start), plus a server-side [`ExplainSink`] with
    /// the same record format as the threaded server.
    ///
    /// # Errors
    ///
    /// As for [`start`](Self::start).
    pub fn start_with_explain(
        addr: impl ToSocketAddrs,
        service: Arc<ComplianceService>,
        config: WireConfig,
        explain: Option<Arc<ExplainSink>>,
    ) -> io::Result<EventServer> {
        EventServer::start_with_sinks(addr, service, config, explain, None)
    }

    /// [`start_with_explain`](Self::start_with_explain), plus an
    /// optional durable request [`Journal`]; every answered request is
    /// appended before its response frame is enqueued, exactly as the
    /// threaded server does.
    ///
    /// # Errors
    ///
    /// As for [`start`](Self::start).
    pub fn start_with_sinks(
        addr: impl ToSocketAddrs,
        service: Arc<ComplianceService>,
        config: WireConfig,
        explain: Option<Arc<ExplainSink>>,
        journal: Option<Arc<Journal>>,
    ) -> io::Result<EventServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        let doorbell = EventFd::new()?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)?;
        epoll.add(doorbell.raw(), EPOLLIN, DOORBELL_TOKEN)?;
        let shared = Arc::new(EvShared {
            service,
            config: WireConfig {
                max_inflight: config.max_inflight.max(1),
                ..config
            },
            metrics: Arc::new(WireMetrics::default()),
            explain,
            journal,
            draining: AtomicBool::new(false),
            doorbell,
            completions: Mutex::new(Vec::new()),
        });
        let event_loop = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                EventLoop {
                    shared,
                    epoll,
                    listener,
                    entries: Vec::new(),
                    gens: Vec::new(),
                    free: Vec::new(),
                    live: 0,
                    scratch: vec![0u8; READ_CHUNK],
                    draining_seen: false,
                    last_scan: Instant::now(),
                    wait_failures: 0,
                    listener_stalled: false,
                }
                .run();
            })
        };
        Ok(EventServer {
            local_addr,
            shared,
            event_loop: Some(event_loop),
        })
    }

    /// The bound address (with the real port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live wire metrics.
    pub fn metrics(&self) -> WireMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Graceful drain: serves whatever the accept backlog already
    /// holds, stops decoding new frames, answers and flushes every
    /// in-flight request, half-closes with FIN and a bounded linger,
    /// joins the loop, and returns the final wire metrics. The
    /// underlying [`ComplianceService`] is left running — it belongs to
    /// the caller. Nothing admitted is lost; nothing is answered twice.
    pub fn shutdown(mut self) -> EventServerReport {
        self.drain();
        EventServerReport {
            metrics: self.shared.metrics.snapshot(),
        }
    }

    fn drain(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.doorbell.signal();
        if let Some(handle) = self.event_loop.take() {
            let _ = handle.join();
        }
        // The loop is joined, but the worker-side observer whose
        // doorbell ring let it finish may still be dropping its clone
        // of `shared` (the closure's captures die *after* its last
        // statement). Wait those drops out so a caller's
        // `Arc::try_unwrap` on the service or journal handle never
        // races a dying closure. In-flight was zero at loop exit, so
        // every observer has already run — this only waits for
        // destructor epilogues; the deadline is a belt-and-braces
        // bound, not an expected path.
        let gone_by = Instant::now() + Duration::from_secs(1);
        while Arc::strong_count(&self.shared) > 1 && Instant::now() < gone_by {
            std::thread::yield_now();
        }
    }
}

impl Drop for EventServer {
    fn drop(&mut self) {
        if self.event_loop.is_some() {
            self.drain();
        }
    }
}

/// What a graceful [`EventServer::shutdown`] hands back.
#[derive(Debug, Clone, Copy)]
pub struct EventServerReport {
    /// Final wire metrics at the instant the loop exited.
    pub metrics: WireMetricsSnapshot,
}

/// The loop thread's world: epoll, the listener, and the connection
/// slab. Tokens are `generation << 32 | index` so a completion for a
/// connection that died and had its slot reused is ignored instead of
/// misdelivered.
struct EventLoop {
    shared: Arc<EvShared>,
    epoll: Epoll,
    listener: TcpListener,
    entries: Vec<Option<Connection>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    live: usize,
    scratch: Vec<u8>,
    draining_seen: bool,
    last_scan: Instant,
    /// Consecutive `epoll_wait` failures (reset on success).
    wait_failures: u32,
    /// Accept hit fd exhaustion and the listener's `EPOLLIN` was
    /// disarmed; the clock scan re-arms it once per tick so a full fd
    /// table degrades to slow accepts instead of a busy-spin.
    listener_stalled: bool,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = vec![EpollEvent::default(); EVENT_BATCH];
        loop {
            // The tick doubles as the idle/linger/drain scan cadence,
            // mirroring the threaded server's read-timeout tick.
            let tick = self.shared.config.read_tick;
            let n = match self.epoll.wait(&mut events, Some(tick)) {
                Ok(n) => {
                    self.wait_failures = 0;
                    n
                }
                Err(e) => {
                    // Treating an error like a timeout would busy-spin
                    // the loop at 100% CPU; back off a tick, and give
                    // up entirely if the failure persists (dropping the
                    // loop closes every connection, which beats a
                    // wedged core).
                    self.wait_failures += 1;
                    eprintln!(
                        "wire event loop: epoll_wait failed ({}/{MAX_WAIT_FAILURES}): {e}",
                        self.wait_failures
                    );
                    if self.wait_failures >= MAX_WAIT_FAILURES {
                        return;
                    }
                    std::thread::sleep(tick);
                    0
                }
            };

            let mut accept_ready = false;
            let mut rang = false;
            for ev in &events[..n] {
                let token = { ev.data };
                let mask = { ev.events };
                match token {
                    LISTENER_TOKEN => accept_ready = true,
                    DOORBELL_TOKEN => rang = true,
                    token => {
                        if let Some(idx) = self.resolve(token) {
                            let readable = mask & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0;
                            self.advance(idx, readable);
                        }
                    }
                }
            }
            if rang {
                self.on_doorbell();
            }
            if !self.draining_seen && self.shared.draining.load(Ordering::SeqCst) {
                self.begin_drain();
            } else if accept_ready && !self.draining_seen {
                self.accept_all();
            }
            if self.last_scan.elapsed() >= tick {
                self.scan_clocks();
            }
            if self.draining_seen && self.live == 0 {
                return;
            }
        }
    }

    /// Maps a readiness/completion token back to a live slab index;
    /// `None` for stale generations (the connection is gone).
    fn resolve(&self, token: u64) -> Option<usize> {
        let idx = (token & u64::from(u32::MAX)) as usize;
        let gen = (token >> 32) as u32;
        (idx < self.entries.len() && self.gens[idx] == gen && self.entries[idx].is_some())
            .then_some(idx)
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.register(stream),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // The handshake died before we got to it; on to the
                // next pending connection.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
                // Backlog empty.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // EMFILE/ENFILE and friends: accepting cannot make
                // progress, but the pending connection keeps the
                // listener readable — level-triggered epoll would
                // report it on every wait and busy-spin the loop.
                // Disarm the listener; the clock scan re-arms it once
                // per tick until fds free up.
                Err(_) => {
                    self.stall_listener();
                    break;
                }
            }
        }
    }

    /// Disarms the listener's `EPOLLIN` after an accept failure that
    /// retrying immediately cannot fix (see `accept_all`).
    fn stall_listener(&mut self) {
        if !self.listener_stalled
            && self
                .epoll
                .modify(self.listener.as_raw_fd(), 0, LISTENER_TOKEN)
                .is_ok()
        {
            self.listener_stalled = true;
        }
    }

    fn register(&mut self, stream: TcpStream) {
        let metrics = &self.shared.metrics;
        metrics.connections_opened.inc();
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            metrics.connections_closed.inc();
            return;
        }
        let idx = self.free.pop().unwrap_or_else(|| {
            self.entries.push(None);
            self.gens.push(0);
            self.entries.len() - 1
        });
        let token = (u64::from(self.gens[idx]) << 32) | idx as u64;
        let shared = Arc::new(ConnShared::new(token));
        let conn = Connection::new(stream, shared, self.shared.config.max_frame);
        let want = EPOLLIN | EPOLLRDHUP;
        if self
            .epoll
            .add(conn.stream.as_raw_fd(), want, token)
            .is_err()
        {
            metrics.connections_closed.inc();
            self.free.push(idx);
            return;
        }
        let mut conn = conn;
        conn.interest = want;
        self.entries[idx] = Some(conn);
        self.live += 1;
    }

    fn on_doorbell(&mut self) {
        self.shared.doorbell.drain();
        self.shared.metrics.wakeups.inc();
        let tokens =
            std::mem::take(&mut *self.shared.completions.lock().expect("completions lock"));
        for token in tokens {
            if let Some(idx) = self.resolve(token) {
                // Clear the dedupe flag *before* draining the outbox so
                // an observer racing with this drain re-schedules the
                // connection instead of being missed.
                self.entries[idx]
                    .as_ref()
                    .expect("resolved entry")
                    .shared
                    .scheduled
                    .store(false, Ordering::SeqCst);
                self.advance(idx, false);
            }
        }
    }

    /// One turn of a connection's state machine: read (if readiness
    /// said to), decode/dispatch, collect completed responses, flush,
    /// then phase transitions and epoll re-arm.
    fn advance(&mut self, idx: usize, readable: bool) {
        let shared = Arc::clone(&self.shared);
        {
            let Some(conn) = self.entries[idx].as_mut() else {
                return;
            };
            if readable {
                read_socket(conn, &mut self.scratch, &shared.metrics);
            }
            pump_decode(&shared, conn);
            collect_and_flush(conn, &shared.metrics);
            // Completions may have freed in-flight slots while we held
            // frames back at the cap; resume decoding immediately
            // rather than waiting for the next readiness report.
            if conn.paused && conn.phase == Phase::Open {
                pump_decode(&shared, conn);
                collect_and_flush(conn, &shared.metrics);
            }
        }
        self.transition(idx);
    }

    /// Phase advancement and epoll re-arm; tears the connection down
    /// when it reaches the end of its life.
    fn transition(&mut self, idx: usize) {
        let now = Instant::now();
        let shared = Arc::clone(&self.shared);
        let Some(conn) = self.entries[idx].as_mut() else {
            return;
        };
        if conn.phase == Phase::Draining && conn.inflight() == 0 {
            // In-flight zero means every response is queued (observers
            // enqueue before decrementing); one last collect makes that
            // visible here, then flush and half-close.
            collect_and_flush(conn, &shared.metrics);
            if conn.wq.is_empty() || conn.dead_write {
                conn.shared.close_outbox();
                let _ = conn.stream.shutdown(Shutdown::Write);
                conn.phase = Phase::Lingering {
                    deadline: now + LINGER,
                };
            } else {
                // Fully answered but unflushed: the only thing left is
                // a peer that has stopped reading. Bound the wait —
                // the clock scan revisits every tick — and then treat
                // the peer as gone, or drain/shutdown would hang on
                // `live > 0` forever.
                match conn.drain_deadline {
                    None => conn.drain_deadline = Some(now + DRAIN_GRACE),
                    Some(deadline) if now >= deadline => {
                        conn.dead_write = true;
                        conn.wq.clear();
                        conn.shared.close_outbox();
                        let _ = conn.stream.shutdown(Shutdown::Write);
                        conn.phase = Phase::Lingering {
                            deadline: now + LINGER,
                        };
                    }
                    Some(_) => {}
                }
            }
        }
        if let Phase::Lingering { deadline } = conn.phase {
            if conn.peer_eof || conn.read_error || now >= deadline {
                self.teardown(idx);
                return;
            }
        }
        self.rearm(idx);
    }

    /// Recomputes the epoll interest mask from the connection's state
    /// and re-arms only when it changed.
    fn rearm(&mut self, idx: usize) {
        let Some(conn) = self.entries[idx].as_mut() else {
            return;
        };
        let mut want = EPOLLRDHUP;
        let read_wanted = match conn.phase {
            // Reading is wanted unless backpressure (in-flight cap or
            // decode backlog) says otherwise — disarming EPOLLIN is
            // what lets TCP flow control push back on the client.
            Phase::Open => {
                !conn.peer_eof
                    && !conn.read_error
                    && !conn.paused
                    && conn.decoder.buffered() < read_limit(conn)
            }
            // Draining stopped consuming input on purpose.
            Phase::Draining => false,
            // Lingering reads only to discard until the peer's FIN.
            Phase::Lingering { .. } => !conn.peer_eof && !conn.read_error,
        };
        if read_wanted {
            want |= EPOLLIN;
        }
        if !conn.wq.is_empty() && !conn.dead_write {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            let token = conn.shared.token;
            if self
                .epoll
                .modify(conn.stream.as_raw_fd(), want, token)
                .is_ok()
            {
                conn.interest = want;
            }
        }
    }

    fn teardown(&mut self, idx: usize) {
        if let Some(conn) = self.entries[idx].take() {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            conn.shared.close_outbox();
            self.gens[idx] = self.gens[idx].wrapping_add(1);
            self.free.push(idx);
            self.live -= 1;
            self.shared.metrics.connections_closed.inc();
        }
    }

    /// The drain sequence, entered exactly once: serve the accept
    /// backlog (the kernel already completed those handshakes — closing
    /// the listener now would RST them), deregister the listener, slurp
    /// every open connection's buffered bytes, dispatch all decoded
    /// frames (the in-flight cap is waived during drain, exactly like
    /// the threaded reader's `acquire_slot`), and stop consuming input.
    /// Undecoded partial bytes are abandoned without a protocol error —
    /// the server initiated this close.
    fn begin_drain(&mut self) {
        self.draining_seen = true;
        self.accept_all();
        let _ = self.epoll.delete(self.listener.as_raw_fd());
        for idx in 0..self.entries.len() {
            let shared = Arc::clone(&self.shared);
            {
                let Some(conn) = self.entries[idx].as_mut() else {
                    continue;
                };
                if conn.phase != Phase::Open {
                    continue;
                }
                read_socket(conn, &mut self.scratch, &shared.metrics);
                pump_decode(&shared, conn);
                if conn.phase == Phase::Open {
                    conn.phase = Phase::Draining;
                }
                collect_and_flush(conn, &shared.metrics);
            }
            self.transition(idx);
        }
    }

    /// The periodic pass the epoll timeout guarantees: idle cutoffs,
    /// drain progress for connections whose last in-flight decrement
    /// raced past a doorbell, and linger deadlines.
    fn scan_clocks(&mut self) {
        self.last_scan = Instant::now();
        if self.listener_stalled && !self.draining_seen {
            // Retry a stalled accept: teardowns since the stall may
            // have freed descriptors. Re-arm first so a still-pending
            // backlog is reported even if this burst empties it.
            if self
                .epoll
                .modify(self.listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)
                .is_ok()
            {
                self.listener_stalled = false;
                self.accept_all();
            }
        }
        for idx in 0..self.entries.len() {
            {
                let Some(conn) = self.entries[idx].as_mut() else {
                    continue;
                };
                if conn.phase == Phase::Open {
                    if let Some(idle) = self.shared.config.idle_timeout {
                        if conn.last_activity.elapsed() >= idle && conn.inflight() == 0 {
                            // Server-initiated close: never a protocol
                            // error, even mid-frame (same as the
                            // threaded tick's synthesized EOF).
                            conn.phase = Phase::Draining;
                        }
                    }
                }
            }
            self.transition(idx);
        }
    }
}

/// How much undecoded data `conn` may buffer before reading stops.
/// Normally [`READ_BUFFER_CAP`], but when the head of the buffer is a
/// frame bigger than the cap the limit stretches to that frame's full
/// wire size (bounded by the decoder's `max_frame` check) — otherwise
/// a legal frame in `(READ_BUFFER_CAP, max_frame]` could buffer its
/// first 256 KiB, disarm `EPOLLIN`, and never complete.
fn read_limit(conn: &Connection) -> usize {
    conn.decoder
        .pending_frame_len()
        .map_or(READ_BUFFER_CAP, |need| READ_BUFFER_CAP.max(need))
}

/// Reads until `WouldBlock`, EOF, error, or the decode-backlog cap.
/// In `Lingering` the bytes are discarded (we only want the FIN).
fn read_socket(conn: &mut Connection, scratch: &mut [u8], metrics: &WireMetrics) {
    use std::io::Read as _;
    if conn.peer_eof || conn.read_error {
        return;
    }
    let discard = !matches!(conn.phase, Phase::Open);
    loop {
        if !discard && conn.decoder.buffered() >= read_limit(conn) {
            return;
        }
        match (&mut &conn.stream as &mut &TcpStream).read(scratch) {
            Ok(0) => {
                conn.peer_eof = true;
                return;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                if !discard {
                    conn.decoder.extend(&scratch[..n]);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return;
            }
            Err(_) => {
                // A real socket error mid-conversation counts as a
                // protocol error, matching the threaded reader.
                if matches!(conn.phase, Phase::Open) {
                    metrics.protocol_errors.inc();
                }
                conn.read_error = true;
                return;
            }
        }
    }
}

/// Decodes and dispatches every complete frame the connection has
/// buffered, stopping at the in-flight cap (waived during drain) or a
/// terminal condition. Transitions `Open → Draining` on peer EOF, read
/// error, or protocol error.
fn pump_decode(shared: &Arc<EvShared>, conn: &mut Connection) {
    if conn.phase != Phase::Open {
        return;
    }
    let metrics = &shared.metrics;
    let cap = if shared.draining.load(Ordering::Relaxed) {
        usize::MAX
    } else {
        shared.config.max_inflight
    };
    loop {
        if conn.inflight() >= cap {
            conn.paused = true;
            return;
        }
        conn.paused = false;
        match conn.decoder.next_frame() {
            Ok(Some(frame)) => {
                metrics.bytes_in.add(frame.wire_len() as u64);
                match frame {
                    Frame::Request(request) => {
                        metrics.frames_in.inc();
                        dispatch_request(shared, conn, request);
                    }
                    Frame::PlanRequest(request) => {
                        metrics.frames_in.inc();
                        dispatch_plan_request(shared, conn, request);
                    }
                    Frame::Response(_) | Frame::PlanResponse(_) => {
                        // Only servers speak responses.
                        metrics.protocol_errors.inc();
                        conn.phase = Phase::Draining;
                        return;
                    }
                }
            }
            Ok(None) => {
                if conn.peer_eof || conn.read_error {
                    if conn.peer_eof && !conn.read_error && conn.decoder.buffered() > 0 {
                        // The peer hung up mid-frame: torn.
                        metrics.protocol_errors.inc();
                    }
                    conn.phase = Phase::Draining;
                }
                return;
            }
            Err(_) => {
                // Oversized or malformed frame kills the connection —
                // after its in-flight requests are answered.
                metrics.protocol_errors.inc();
                conn.phase = Phase::Draining;
                return;
            }
        }
    }
}

/// Moves completed responses from the outbox into the write queue and
/// flushes as much as the socket accepts. A fatal write error closes
/// the outbox (the peer is gone; responses drop, as in the threaded
/// writer).
fn collect_and_flush(conn: &mut Connection, metrics: &WireMetrics) {
    for bytes in conn.shared.take_responses() {
        conn.wq.push(bytes);
    }
    if conn.dead_write {
        conn.wq.clear();
        return;
    }
    if !conn.wq.is_empty() && conn.wq.flush(&conn.stream, metrics).is_err() {
        conn.dead_write = true;
        conn.wq.clear();
        conn.shared.close_outbox();
    }
}

/// Encodes a response frame, recording the serialize span under the
/// request's trace — the same span the threaded writer records.
fn encode_response(trace: TraceId, response: Response) -> Vec<u8> {
    let log = obs::global();
    let status = response.status;
    let start_us = if log.is_enabled() { obs::now_us() } else { 0 };
    let bytes = frame::encode(&Frame::Response(response));
    if log.is_enabled() {
        log.record_closed(
            trace,
            Stage::Serialize,
            start_us,
            u64::from(status.as_byte()),
        );
    }
    bytes
}

/// Encodes a v3 plan response frame under the request's trace,
/// recording the same serialize span as assess responses.
fn encode_plan_response(trace: TraceId, response: PlanResponse) -> Vec<u8> {
    let log = obs::global();
    let status = response.status;
    let start_us = if log.is_enabled() { obs::now_us() } else { 0 };
    let bytes = frame::encode(&Frame::PlanResponse(response));
    if log.is_enabled() {
        log.record_closed(
            trace,
            Stage::Serialize,
            start_us,
            u64::from(status.as_byte()),
        );
    }
    bytes
}

/// The event-loop counterpart of the threaded server's
/// `handle_plan_request`: the search runs on a spawned thread — plan
/// traffic is rare and each request is a whole best-first search, far
/// too heavy for the loop thread — with the planner's assessor sharing
/// the service-wide verdict cache. The in-flight slot is held until
/// the response lands in the outbox, so graceful drain waits for
/// running solves. Plan dispositions are not journaled (the replay
/// contract re-parses recorded requests as single action specs) and
/// skip the explain sink.
fn dispatch_plan_request(
    shared: &Arc<EvShared>,
    conn: &mut Connection,
    request: frame::PlanRequest,
) {
    let received = Instant::now();
    let trace = TraceId::mint();
    let depth = conn.shared.inflight.fetch_add(1, Ordering::AcqRel) + 1;
    shared.metrics.observe_inflight(depth);
    let ev_shared = Arc::clone(shared);
    let conn_shared = Arc::clone(&conn.shared);
    std::thread::spawn(move || {
        let (status, payload) = solve_plan_payload(&ev_shared.service, &request.payload);
        if status == Status::BadRequest {
            ev_shared.metrics.bad_requests.inc();
        }
        ev_shared.metrics.record_latency(received.elapsed());
        let bytes = encode_plan_response(
            trace,
            PlanResponse {
                id: request.id,
                status,
                queue_wait_us: 0,
                total_us: received.elapsed().as_micros().min(u64::MAX as u128) as u64,
                payload,
            },
        );
        // Same ordering contract as assess completions: outbox before
        // the in-flight decrement, decrement before the doorbell.
        conn_shared.push_response(bytes);
        conn_shared.inflight.fetch_sub(1, Ordering::Release);
        ev_shared.schedule(&conn_shared);
    });
}

/// The event-loop counterpart of the threaded server's
/// `handle_request`: same trace minting, same slot accounting, same
/// journal/sink/status semantics — only the response delivery differs
/// (write queue on the loop thread, outbox + doorbell from workers).
fn dispatch_request(shared: &Arc<EvShared>, conn: &mut Connection, request: frame::Request) {
    let metrics = &shared.metrics;
    let received = Instant::now();
    // The trace id is minted here, at the frame boundary — everything
    // downstream carries this id, never a new one.
    let trace = TraceId::mint();

    // Every request — even one that fails to parse — occupies an
    // in-flight slot until its response is queued, so a client spamming
    // garbage is backpressured exactly like a busy one.
    let depth = conn.shared.inflight.fetch_add(1, Ordering::AcqRel) + 1;
    metrics.observe_inflight(depth);

    let explain_for = |provenance: String| {
        request.want_explain.then(|| Explain {
            trace: trace.as_u64(),
            provenance: provenance.into_bytes(),
        })
    };
    let parsed = std::str::from_utf8(&request.payload)
        .map_err(|e| format!("payload is not UTF-8: {e}"))
        .and_then(|line| {
            ActionSpec::from_json_line(line)
                .and_then(|spec| spec.to_action())
                .map_err(|e| e.to_string())
        });
    let action = match parsed {
        Ok(action) => action,
        Err(message) => {
            metrics.bad_requests.inc();
            if let Some(sink) = &shared.explain {
                sink.write_line(&sink_line(
                    trace,
                    request.id,
                    Status::BadRequest,
                    message.as_bytes(),
                    "[]",
                ));
            }
            shared.journal_record(
                trace,
                Status::BadRequest,
                request.payload.clone(),
                message.clone().into_bytes(),
            );
            let bytes = encode_response(
                trace,
                Response {
                    id: request.id,
                    status: Status::BadRequest,
                    queue_wait_us: 0,
                    total_us: 0,
                    explain: explain_for("[]".to_string()),
                    payload: message.into_bytes(),
                },
            );
            // We are on the loop thread: straight into the write queue.
            conn.wq.push(bytes);
            conn.shared.inflight.fetch_sub(1, Ordering::Release);
            return;
        }
    };

    let deadline =
        (request.deadline_ms > 0).then(|| Duration::from_millis(u64::from(request.deadline_ms)));
    let observer: ResponseObserver = {
        let ev_shared = Arc::clone(shared);
        let conn_shared = Arc::clone(&conn.shared);
        let journal_request = ev_shared.journal.is_some().then(|| request.payload.clone());
        let id = request.id;
        let want_explain = request.want_explain;
        Box::new(move |response: &ServiceResponse| {
            let (status, payload) = verdict_payload(response);
            ev_shared.metrics.record_latency(received.elapsed());
            // Appended before the response is queued, so an
            // acknowledged verdict is always at least accepted by the
            // journal writer.
            ev_shared.journal_record(
                response.trace,
                status,
                journal_request.unwrap_or_default(),
                payload.clone(),
            );
            let provenance = if want_explain || ev_shared.explain.is_some() {
                response
                    .outcome
                    .assessment()
                    .map_or_else(|| "[]".to_string(), |a| a.provenance().to_json())
            } else {
                String::new()
            };
            if let Some(sink) = &ev_shared.explain {
                sink.write_line(&sink_line(
                    response.trace,
                    id,
                    status,
                    &payload,
                    &provenance,
                ));
            }
            let explain = want_explain.then(|| Explain {
                trace: response.trace.as_u64(),
                provenance: provenance.into_bytes(),
            });
            let bytes = encode_response(
                response.trace,
                Response {
                    id,
                    status,
                    queue_wait_us: response.queue_wait.as_micros().min(u64::MAX as u128) as u64,
                    total_us: response.total.as_micros().min(u64::MAX as u128) as u64,
                    explain,
                    payload,
                },
            );
            // Order matters twice here: the response is in the outbox
            // before in-flight decrements (so "drained" implies "all
            // responses queued"), and the decrement lands before the
            // doorbell (so the wakeup that processes this completion
            // already sees the new depth).
            conn_shared.push_response(bytes);
            conn_shared.inflight.fetch_sub(1, Ordering::Release);
            ev_shared.schedule(&conn_shared);
        })
    };
    if let Err(rejection) = shared
        .service
        .submit_observed_traced(action, deadline, trace, observer)
    {
        metrics.not_admitted.inc();
        let status = match rejection.error {
            SubmitError::Overloaded => Status::Rejected,
            SubmitError::ShuttingDown => Status::GoingAway,
        };
        if let Some(sink) = &shared.explain {
            sink.write_line(&sink_line(
                trace,
                request.id,
                status,
                rejection.error.to_string().as_bytes(),
                "[]",
            ));
        }
        shared.journal_record(
            trace,
            status,
            request.payload,
            rejection.error.to_string().into_bytes(),
        );
        let bytes = encode_response(
            trace,
            Response {
                id: request.id,
                status,
                queue_wait_us: 0,
                total_us: 0,
                explain: explain_for("[]".to_string()),
                payload: rejection.error.to_string().into_bytes(),
            },
        );
        conn.wq.push(bytes);
        conn.shared.inflight.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::WireClient;

    fn service() -> Arc<ComplianceService> {
        Arc::new(ComplianceService::start(ServiceConfig {
            workers: 2,
            capacity: 64,
            ..ServiceConfig::default()
        }))
    }

    const GOOD: &[u8] = br#"{"actor": "leo", "data": "content", "when": "realtime", "where": "isp", "describe": "live interception"}"#;

    #[test]
    fn event_server_round_trips_and_reports_metrics() {
        let service = service();
        let server = EventServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
            .expect("bind");
        let client = WireClient::connect(server.local_addr()).expect("dial");
        for _ in 0..3 {
            let response = client.roundtrip(GOOD.to_vec(), 0).expect("round trip");
            assert_eq!(response.status, Status::Ok);
            assert!(!response.payload.is_empty());
        }
        drop(client);
        let report = server.shutdown();
        assert_eq!(report.metrics.frames_in, 3);
        assert_eq!(report.metrics.frames_out, 3);
        assert_eq!(report.metrics.connections_opened, 1);
        assert_eq!(report.metrics.connections_closed, 1);
        assert_eq!(report.metrics.protocol_errors, 0);
        assert!(report.metrics.wakeups >= 1, "completions ring the doorbell");
        assert!(report.metrics.writev_batches >= 1);
        Arc::try_unwrap(service).expect("sole owner").shutdown();
    }

    /// Regression: a legal frame bigger than [`READ_BUFFER_CAP`] used
    /// to wedge — the cap disarmed `EPOLLIN` mid-frame and nothing
    /// ever re-armed it, so the frame never completed and the idle
    /// timeout killed the connection unanswered.
    #[test]
    fn frames_larger_than_the_read_buffer_cap_still_complete() {
        let service = service();
        let server = EventServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
            .expect("bind");
        let client = WireClient::connect(server.local_addr()).expect("dial");
        // Just past the cap: crossing the boundary is what regresses,
        // and the engine's text scan over `describe` is CPU-heavy
        // enough that a bigger filler only slows the suite.
        let filler = "x".repeat(READ_BUFFER_CAP + 4 * 1024);
        let payload = format!(
            r#"{{"actor": "leo", "data": "content", "when": "realtime", "where": "isp", "describe": "{filler}"}}"#
        );
        assert!(payload.len() > READ_BUFFER_CAP);
        assert!(payload.len() < frame::MAX_FRAME as usize);
        let response = client
            .roundtrip(payload.into_bytes(), 0)
            .expect("round trip");
        assert_eq!(response.status, Status::Ok);
        drop(client);
        let report = server.shutdown();
        assert_eq!(report.metrics.frames_in, 1);
        assert_eq!(report.metrics.frames_out, 1);
        assert_eq!(report.metrics.protocol_errors, 0);
        Arc::try_unwrap(service).expect("sole owner").shutdown();
    }

    #[test]
    fn bad_payloads_answered_in_band_and_connection_survives() {
        let service = service();
        let server = EventServer::start("127.0.0.1:0", Arc::clone(&service), WireConfig::default())
            .expect("bind");
        let client = WireClient::connect(server.local_addr()).expect("dial");
        let bad = client.roundtrip(b"not json".to_vec(), 0).expect("answered");
        assert_eq!(bad.status, Status::BadRequest);
        let good = client.roundtrip(GOOD.to_vec(), 0).expect("still serving");
        assert_eq!(good.status, Status::Ok);
        drop(client);
        let report = server.shutdown();
        assert_eq!(report.metrics.bad_requests, 1);
        assert_eq!(report.metrics.protocol_errors, 0);
        Arc::try_unwrap(service).expect("sole owner").shutdown();
    }
}
