//! Per-connection state for the event-driven server: the phase
//! machine, the growable read/write buffers, and the half observers on
//! service worker threads are allowed to touch.
//!
//! A connection advances through four phases:
//!
//! ```text
//! accept ──► Open ──► Draining ──► Lingering ──► (closed)
//!             │ decode frames,      │ no new      │ FIN sent; discard
//!             │ submit, flush       │ frames;     │ peer bytes until
//!             │ responses           │ answer      │ EOF or deadline
//!             │                     │ in-flight,  │
//!             │                     │ flush       │
//! ```
//!
//! `Open → Draining` on server drain, peer EOF, idle timeout, or a
//! protocol error — in every case requests already decoded are still
//! answered and flushed (exactly-once delivery). `Draining →
//! Lingering` only once in-flight hits zero and both buffers are
//! empty; the FIN-then-bounded-linger-read sequence is what keeps the
//! kernel from turning a close with unread bytes into an RST that
//! destroys responses in the peer's receive path.
//!
//! The split between [`Connection`] (owned by the event loop, never
//! shared) and [`ConnShared`] (behind an `Arc`, touched by completion
//! observers on worker threads) is the concurrency boundary: observers
//! only push encoded response bytes into the outbox, flip the
//! scheduled flag, and decrement the in-flight count — they never see
//! the socket.

use crate::frame::StreamDecoder;
use crate::metrics::WireMetrics;
use std::collections::VecDeque;
use std::io::{self, IoSlice, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::Mutex;
use std::time::Instant;

/// Where a connection is in its lifecycle; see the [module
/// docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Decoding frames, submitting requests, flushing responses.
    Open,
    /// No new frames; answering in-flight and flushing buffers.
    Draining,
    /// FIN sent; discarding peer bytes until EOF or the deadline.
    Lingering {
        /// When to give up on the peer's EOF and close anyway.
        deadline: Instant,
    },
}

/// Response bytes queued by observers, plus the closed flag that makes
/// a dead connection drop further sends (the peer is gone, so are its
/// responses — exactly the threaded writer's behavior).
#[derive(Debug, Default)]
pub(crate) struct Outbox {
    pub(crate) queue: Vec<Vec<u8>>,
    pub(crate) closed: bool,
}

/// The observer-facing half of a connection. Everything here is safe
/// to touch from a service worker thread.
#[derive(Debug)]
pub(crate) struct ConnShared {
    /// The slab token (index + generation) the event loop resolves
    /// completions with.
    pub(crate) token: u64,
    /// Requests between frame decode and response enqueue. The event
    /// loop pauses decoding at the cap; observers decrement *after*
    /// enqueueing, so "in-flight zero" implies "all responses queued".
    pub(crate) inflight: AtomicUsize,
    /// Encoded response frames awaiting the event loop.
    pub(crate) outbox: Mutex<Outbox>,
    /// Whether this connection is already on the completion list; keeps
    /// N completions per wakeup at one list entry and one doorbell ring.
    pub(crate) scheduled: AtomicBool,
}

impl ConnShared {
    pub(crate) fn new(token: u64) -> ConnShared {
        ConnShared {
            token,
            inflight: AtomicUsize::new(0),
            outbox: Mutex::new(Outbox::default()),
            scheduled: AtomicBool::new(false),
        }
    }

    /// Queues encoded response bytes; returns `false` (dropping the
    /// bytes) once the connection is torn down.
    pub(crate) fn push_response(&self, bytes: Vec<u8>) -> bool {
        let mut outbox = self.outbox.lock().expect("outbox lock");
        if outbox.closed {
            return false;
        }
        outbox.queue.push(bytes);
        true
    }

    /// Takes everything queued, leaving the outbox open.
    pub(crate) fn take_responses(&self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.outbox.lock().expect("outbox lock").queue)
    }

    /// Closes the outbox: later responses are dropped (peer is gone).
    pub(crate) fn close_outbox(&self) {
        let mut outbox = self.outbox.lock().expect("outbox lock");
        outbox.closed = true;
        outbox.queue.clear();
    }
}

/// The write side: encoded frames coalesced into as few `writev`
/// syscalls as the socket accepts. Each queued buffer is exactly one
/// frame, so frame/byte accounting lands when a frame's last byte is
/// handed to the kernel — `frames_out` never counts a response the
/// peer could not have received.
#[derive(Debug, Default)]
pub(crate) struct WriteQueue {
    bufs: VecDeque<Vec<u8>>,
    /// Bytes of `bufs[0]` already written.
    offset: usize,
}

/// At most this many frames per `writev` (the kernel caps iovecs at
/// `UIO_MAXIOV` = 1024; 64 keeps the stack slice small while already
/// amortizing the syscall ~64x).
const MAX_IOVECS: usize = 64;

impl WriteQueue {
    pub(crate) fn push(&mut self, frame_bytes: Vec<u8>) {
        self.bufs.push_back(frame_bytes);
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Writes as much as the socket accepts, one vectored call per
    /// batch. Returns with the queue non-empty on `WouldBlock` (the
    /// caller arms `EPOLLOUT`).
    ///
    /// # Errors
    ///
    /// Propagates fatal socket errors; the connection is dead.
    pub(crate) fn flush(&mut self, stream: &TcpStream, metrics: &WireMetrics) -> io::Result<()> {
        while !self.bufs.is_empty() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(self.bufs.len().min(MAX_IOVECS));
            for (i, buf) in self.bufs.iter().take(MAX_IOVECS).enumerate() {
                let from = if i == 0 { self.offset } else { 0 };
                slices.push(IoSlice::new(&buf[from..]));
            }
            match (&mut &*stream).write_vectored(&slices) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    metrics.writev_batches.inc();
                    self.consume(n, metrics);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Advances past `n` written bytes, crediting each completed frame.
    fn consume(&mut self, mut n: usize, metrics: &WireMetrics) {
        while n > 0 {
            let front_left = self.bufs[0].len() - self.offset;
            if n >= front_left {
                n -= front_left;
                let frame = self.bufs.pop_front().expect("nonempty write queue");
                self.offset = 0;
                metrics.frames_out.inc();
                metrics.bytes_out.add(frame.len() as u64);
            } else {
                self.offset += n;
                n = 0;
            }
        }
    }

    pub(crate) fn clear(&mut self) {
        self.bufs.clear();
        self.offset = 0;
    }
}

/// One connection as the event loop owns it. Never shared; observers
/// go through [`ConnShared`].
#[derive(Debug)]
pub(crate) struct Connection {
    pub(crate) stream: TcpStream,
    pub(crate) shared: std::sync::Arc<ConnShared>,
    pub(crate) decoder: StreamDecoder,
    pub(crate) wq: WriteQueue,
    pub(crate) phase: Phase,
    /// Last byte received; drives the idle clock, exactly like the
    /// threaded reader's tick.
    pub(crate) last_activity: Instant,
    /// Decoding stopped at the in-flight cap; resumed on completion.
    pub(crate) paused: bool,
    /// Peer sent FIN (read returned 0).
    pub(crate) peer_eof: bool,
    /// The read side died with a real socket error (counted as a
    /// protocol error, like the threaded reader's `Err` arm).
    pub(crate) read_error: bool,
    /// The write side died; flushes are pointless, close when drained.
    pub(crate) dead_write: bool,
    /// When a fully answered but unflushed `Draining` connection gives
    /// up on the peer ever reading and closes anyway; armed the first
    /// time in-flight hits zero with the write queue non-empty, so
    /// graceful drain is bounded against stalled peers.
    pub(crate) drain_deadline: Option<Instant>,
    /// The `EPOLL*` mask currently armed for this socket, tracked to
    /// skip redundant `epoll_ctl` calls.
    pub(crate) interest: u32,
}

impl Connection {
    pub(crate) fn new(
        stream: TcpStream,
        shared: std::sync::Arc<ConnShared>,
        max_frame: u32,
    ) -> Connection {
        Connection {
            stream,
            shared,
            decoder: StreamDecoder::new(max_frame),
            wq: WriteQueue::default(),
            phase: Phase::Open,
            last_activity: Instant::now(),
            paused: false,
            peer_eof: false,
            read_error: false,
            dead_write: false,
            drain_deadline: None,
            interest: 0,
        }
    }

    pub(crate) fn inflight(&self) -> usize {
        self.shared
            .inflight
            .load(std::sync::atomic::Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;
    use std::net::TcpListener;

    #[test]
    fn write_queue_coalesces_frames_and_credits_on_completion() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let metrics = WireMetrics::default();
        let mut wq = WriteQueue::default();
        wq.push(vec![1; 10]);
        wq.push(vec![2; 20]);
        wq.push(vec![3; 30]);
        wq.flush(&server_side, &metrics).unwrap();
        assert!(wq.is_empty());
        let snap = metrics.snapshot();
        assert_eq!(snap.frames_out, 3);
        assert_eq!(snap.bytes_out, 60);
        // All 60 bytes coalesced into one writev on an empty socket
        // buffer.
        assert_eq!(snap.writev_batches, 1);

        let mut got = vec![0u8; 60];
        let mut client = client;
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got[..10], &[1; 10]);
        assert_eq!(&got[10..30], &[2; 20]);
        assert_eq!(&got[30..], &[3; 30]);
    }

    #[test]
    fn write_queue_survives_partial_writes() {
        // A tiny send buffer forces WouldBlock mid-queue; the queue
        // must resume from the exact byte offset.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let metrics = WireMetrics::default();
        let mut wq = WriteQueue::default();
        let payload: Vec<Vec<u8>> = (0..=255u8).map(|i| vec![i; 8 * 1024]).collect();
        let total: usize = payload.iter().map(Vec::len).sum();
        for frame in &payload {
            wq.push(frame.clone());
        }

        let reader = std::thread::spawn(move || {
            let mut client = client;
            let mut got = Vec::new();
            client.read_to_end(&mut got).unwrap();
            got
        });
        // Flush until drained, sleeping briefly on WouldBlock like the
        // event loop does between EPOLLOUT readiness reports.
        while !wq.is_empty() {
            wq.flush(&server_side, &metrics).unwrap();
            if !wq.is_empty() {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        drop(server_side); // FIN so read_to_end finishes
        let got = reader.join().unwrap();
        assert_eq!(got.len(), total);
        let expect: Vec<u8> = payload.into_iter().flatten().collect();
        assert_eq!(got, expect);
        let snap = metrics.snapshot();
        assert_eq!(snap.frames_out, 256);
        assert_eq!(snap.bytes_out, total as u64);
        // 256 frames cannot fit one vectored call: the iovec cap alone
        // forces at least four batches.
        assert!(snap.writev_batches >= 4);
    }
}
