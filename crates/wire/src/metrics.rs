//! Connection-level observability for the wire layer.
//!
//! Reuses the service crate's lock-free [`Counter`] and log-linear
//! [`Histogram`] so wire latency quantiles come out in exactly the same
//! shape as the service's queue-wait/engine/end-to-end snapshots — one
//! histogram model across the whole serving stack, and one JSON emitter
//! convention that merges into `BENCH_results.json`.

use service::metrics::{Counter, Histogram, HistogramSnapshot};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Live wire metrics, shared across the accept loop and every
/// connection's reader/writer pair. All recording is lock-free.
#[derive(Debug, Default)]
pub struct WireMetrics {
    /// Connections accepted.
    pub connections_opened: Counter,
    /// Connections fully torn down (reader and writer exited).
    pub connections_closed: Counter,
    /// Request frames decoded.
    pub frames_in: Counter,
    /// Response frames written.
    pub frames_out: Counter,
    /// Bytes read off the wire (prefix + body, well-formed frames).
    pub bytes_in: Counter,
    /// Bytes written to the wire (prefix + body).
    pub bytes_out: Counter,
    /// Connections killed by a protocol error (oversized, malformed, or
    /// torn frame, or a client that sent a response kind).
    pub protocol_errors: Counter,
    /// Requests whose payload failed to parse (answered `BadRequest`
    /// in-band; the connection survives).
    pub bad_requests: Counter,
    /// Requests not admitted by the service (answered `Rejected` or
    /// `GoingAway` in-band).
    pub not_admitted: Counter,
    /// Event-loop doorbell wakeups (eventfd reads). Always zero for the
    /// threaded server. Responses ÷ wakeups is the completion-batching
    /// factor.
    pub wakeups: Counter,
    /// Vectored write calls issued by the event loop. Always zero for
    /// the threaded server. Frames out ÷ batches is the write-coalescing
    /// factor.
    pub writev_batches: Counter,
    /// Highest per-connection in-flight depth observed.
    peak_inflight: AtomicU64,
    /// Frame-decode to response-frame-queued, per answered request —
    /// the wire layer's own end-to-end view (service queue + engine +
    /// completion plumbing, excluding socket transmission).
    pub wire_latency: Histogram,
}

impl WireMetrics {
    /// Folds a per-connection in-flight depth into the observed peak.
    pub fn observe_inflight(&self, depth: usize) {
        self.peak_inflight
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Records one answered request's wire-side latency.
    pub fn record_latency(&self, d: Duration) {
        self.wire_latency.record(d);
    }

    /// A point-in-time copy of every wire metric.
    pub fn snapshot(&self) -> WireMetricsSnapshot {
        WireMetricsSnapshot {
            connections_opened: self.connections_opened.get(),
            connections_closed: self.connections_closed.get(),
            frames_in: self.frames_in.get(),
            frames_out: self.frames_out.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            protocol_errors: self.protocol_errors.get(),
            bad_requests: self.bad_requests.get(),
            not_admitted: self.not_admitted.get(),
            wakeups: self.wakeups.get(),
            writev_batches: self.writev_batches.get(),
            peak_inflight: self.peak_inflight.load(Ordering::Relaxed),
            wire_latency: self.wire_latency.snapshot(),
        }
    }
}

/// A point-in-time copy of [`WireMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WireMetricsSnapshot {
    /// Connections accepted.
    pub connections_opened: u64,
    /// Connections fully torn down.
    pub connections_closed: u64,
    /// Request frames decoded.
    pub frames_in: u64,
    /// Response frames written.
    pub frames_out: u64,
    /// Bytes read off the wire.
    pub bytes_in: u64,
    /// Bytes written to the wire.
    pub bytes_out: u64,
    /// Connections killed by a protocol error.
    pub protocol_errors: u64,
    /// Payload parse failures answered in-band.
    pub bad_requests: u64,
    /// Admission refusals answered in-band.
    pub not_admitted: u64,
    /// Event-loop doorbell wakeups (zero on the threaded server).
    pub wakeups: u64,
    /// Vectored write calls (zero on the threaded server).
    pub writev_batches: u64,
    /// Highest per-connection in-flight depth observed.
    pub peak_inflight: u64,
    /// Wire-side request latency.
    pub wire_latency: HistogramSnapshot,
}

impl WireMetricsSnapshot {
    /// Serializes as one JSON object (single line), in the same minimal
    /// model the service snapshot and `BENCH_results.json` use.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"connections_opened\": {}, \"connections_closed\": {}, \"frames_in\": {}, \
             \"frames_out\": {}, \"bytes_in\": {}, \"bytes_out\": {}, \"protocol_errors\": {}, \
             \"bad_requests\": {}, \"not_admitted\": {}, \"wakeups\": {}, \
             \"writev_batches\": {}, \"peak_inflight\": {}, ",
            self.connections_opened,
            self.connections_closed,
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
            self.protocol_errors,
            self.bad_requests,
            self.not_admitted,
            self.wakeups,
            self.writev_batches,
            self.peak_inflight,
        );
        let h = &self.wire_latency;
        let _ = write!(
            out,
            "\"wire_latency_us\": {{\"count\": {}, \"mean_us\": {:.1}, \"p50_us\": {}, \
             \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}}}",
            h.count, h.mean_us, h.p50_us, h.p95_us, h.p99_us, h.max_us
        );
        out
    }
}

impl std::fmt::Display for WireMetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "connections={}/{} frames in/out={}/{} bytes in/out={}/{} \
             protocol_errors={} bad_requests={} not_admitted={} peak_inflight={}",
            self.connections_opened,
            self.connections_closed,
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
            self.protocol_errors,
            self.bad_requests,
            self.not_admitted,
            self.peak_inflight
        )?;
        write!(f, "  wire latency: {}", self.wire_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_inflight_is_a_running_max() {
        let m = WireMetrics::default();
        for depth in [1usize, 5, 3, 7, 2] {
            m.observe_inflight(depth);
        }
        assert_eq!(m.snapshot().peak_inflight, 7);
    }

    #[test]
    fn json_emitter_is_well_formed_and_single_line() {
        let m = WireMetrics::default();
        m.connections_opened.inc();
        m.frames_in.add(3);
        m.record_latency(Duration::from_micros(250));
        let text = m.snapshot().to_json();
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains("\"frames_in\": 3"));
        assert!(text.contains("\"wire_latency_us\": {\"count\": 1"));
        assert!(!text.contains('\n'));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
