//! The client-side load core: one driver thread sustaining thousands
//! of pipelined, optionally *paced* in-flight requests.
//!
//! Extracted from the `wire_load` bench driver so every load-shaped
//! tool — synthetic sweeps, journal replay, smoke scripts — shares one
//! battle-tested readiness loop instead of reimplementing it. On Linux
//! the engine is a single epoll loop over nonblocking sockets (the
//! client-side mirror of [`crate::event_server`]): C10K client
//! connections cost one thread. Elsewhere a thread-per-connection
//! fallback over [`crate::client::WireClient`] preserves the contract.
//!
//! # The source abstraction
//!
//! The driver pulls work from a [`LoadSource`] and pushes every
//! response back into it:
//!
//! * [`LoadSource::next`] yields the next [`LoadRequest`] for a
//!   connection — its frame payload, its caller-chosen id, and a
//!   **due time** in microseconds from drive start. `due_us: 0` means
//!   "as fast as the window allows" (max pacing); monotonically
//!   increasing due times reproduce a recorded schedule (replay at
//!   recorded or accelerated pacing). Due times on one connection must
//!   be nondecreasing.
//! * [`LoadSource::complete`] receives each response exactly once with
//!   its status, payload, and measured round trip. Divergence checking,
//!   latency recording, and panic-on-surprise policies all live in the
//!   source, not the loop.
//!
//! Exactly-once accounting is enforced here: a response id that was
//! never sent (or already answered) panics, and [`drive`] returns only
//! when every emitted request has been answered and every connection
//! drained. A server hangup mid-load is an [`io::Error`], not a hang.

use crate::frame::Status;
use std::io;
use std::net::SocketAddr;
use std::time::Duration;

/// One request the driver should put on the wire.
#[derive(Debug, Clone)]
pub struct LoadRequest {
    /// Caller-chosen id, unique across the whole drive; echoed back to
    /// [`LoadSource::complete`]. (Journal replay uses the record seq.)
    pub id: u64,
    /// The request frame payload (one JSONL action line).
    pub payload: Vec<u8>,
    /// Earliest send time, µs since drive start. `0` = immediately.
    pub due_us: u64,
}

/// Where requests come from and where responses go. See the
/// [module docs](self).
pub trait LoadSource {
    /// The next request for `conn`, or `None` when this connection has
    /// emitted everything it ever will. Due times per connection must
    /// be nondecreasing.
    fn next(&mut self, conn: usize) -> Option<LoadRequest>;

    /// One response, delivered exactly once per emitted request.
    fn complete(&mut self, conn: usize, id: u64, status: Status, payload: &[u8], rtt: Duration);
}

/// Drives `connections` pipelined connections against `addr` until the
/// source is exhausted and every response is in. Returns the wall time.
///
/// `pipeline` bounds in-flight requests per connection. Pacing is
/// cooperative: a request is sent no earlier than its `due_us`, and as
/// soon after as the window and the socket allow.
///
/// # Errors
///
/// Connection, read, or write failure — including the server hanging
/// up with requests outstanding.
///
/// # Panics
///
/// On protocol violations that can only be local bugs: a response id
/// never sent or answered twice, or a non-response frame.
pub fn drive(
    addr: SocketAddr,
    connections: usize,
    pipeline: usize,
    source: &mut dyn LoadSource,
) -> io::Result<Duration> {
    #[cfg(target_os = "linux")]
    {
        epoll_driver::drive(addr, connections, pipeline, source)
    }
    #[cfg(not(target_os = "linux"))]
    {
        threaded_driver::drive(addr, connections, pipeline, source)
    }
}

#[cfg(target_os = "linux")]
mod epoll_driver {
    use super::{LoadRequest, LoadSource};
    use crate::frame::{self, Frame, Request, StreamDecoder};
    use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
    use std::collections::{BinaryHeap, HashMap};
    use std::io::{self, Read as _, Write as _};
    use std::net::{SocketAddr, TcpStream};
    use std::os::fd::{AsRawFd as _, RawFd};
    use std::time::{Duration, Instant};

    struct LoadConn {
        stream: TcpStream,
        decoder: StreamDecoder,
        /// Encoded request frames not yet accepted by the kernel.
        out: Vec<u8>,
        out_off: usize,
        /// The next request, pulled from the source but not yet due
        /// (or not yet fitting the window).
        head: Option<LoadRequest>,
        /// The source returned `None`: nothing more will be pulled.
        exhausted: bool,
        /// Submit timestamps by request id; `remove` returning `None`
        /// on a response is a duplicate or invented id — panic.
        inflight: HashMap<u64, Instant>,
        interest: u32,
        /// Present in the pacing heap (suppresses duplicate pushes).
        queued: bool,
        /// Deregistered from epoll; fully drained.
        finished: bool,
    }

    impl LoadConn {
        fn fd(&self) -> RawFd {
            self.stream.as_raw_fd()
        }

        fn drained(&self) -> bool {
            self.exhausted
                && self.head.is_none()
                && self.inflight.is_empty()
                && self.out_off >= self.out.len()
        }

        /// Queues encoded frames for every request that is due and fits
        /// the window; leaves the first not-yet-due request in `head`
        /// and returns its due time, if any.
        fn top_up(
            &mut self,
            conn: usize,
            now_us: u64,
            pipeline: usize,
            source: &mut dyn LoadSource,
        ) -> Option<u64> {
            while self.inflight.len() < pipeline {
                if self.head.is_none() {
                    if self.exhausted {
                        return None;
                    }
                    match source.next(conn) {
                        Some(request) => self.head = Some(request),
                        None => {
                            self.exhausted = true;
                            return None;
                        }
                    }
                }
                let due = self.head.as_ref().expect("head just filled").due_us;
                if due > now_us {
                    return Some(due);
                }
                let request = self.head.take().expect("head just checked");
                self.out
                    .extend_from_slice(&frame::encode(&Frame::Request(Request {
                        id: request.id,
                        deadline_ms: 0,
                        want_explain: false,
                        payload: request.payload,
                    })));
                let prior = self.inflight.insert(request.id, Instant::now());
                assert!(prior.is_none(), "load source reused request id");
            }
            // Window full: the head (if any) waits for a completion,
            // not for the clock.
            None
        }

        /// Writes queued bytes until drained or `WouldBlock`.
        fn flush(&mut self) -> io::Result<()> {
            while self.out_off < self.out.len() {
                match (&mut &self.stream).write(&self.out[self.out_off..]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "server closed mid-load (write zero)",
                        ))
                    }
                    Ok(n) => self.out_off += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) => return Err(e),
                }
            }
            self.out.clear();
            self.out_off = 0;
            Ok(())
        }

        /// Reads until `WouldBlock`, decoding and completing responses.
        fn on_readable(&mut self, conn: usize, source: &mut dyn LoadSource) -> io::Result<()> {
            let mut buf = [0u8; 64 * 1024];
            loop {
                match (&mut &self.stream).read(&mut buf) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!(
                                "server hung up with {} response(s) outstanding",
                                self.inflight.len()
                            ),
                        ))
                    }
                    Ok(n) => {
                        self.decoder.extend(&buf[..n]);
                        while let Some(frame) = self
                            .decoder
                            .next_frame()
                            .expect("well-formed response stream")
                        {
                            let response = match frame {
                                Frame::Response(response) => response,
                                other => panic!("server sent a non-response frame: {other:?}"),
                            };
                            let sent_at = self
                                .inflight
                                .remove(&response.id)
                                .expect("response id never sent, or answered twice");
                            source.complete(
                                conn,
                                response.id,
                                response.status,
                                &response.payload,
                                sent_at.elapsed(),
                            );
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) => return Err(e),
                }
            }
        }
    }

    /// Everything the readiness loop threads through every step; the
    /// source stays a separate borrow so `service` can hand out `&mut`
    /// to both a connection and the source at once.
    struct Driver {
        epoll: Epoll,
        conns: Vec<LoadConn>,
        /// Min-heap of (due_us, conn): connections whose next request
        /// is waiting on the clock, not the socket.
        pacing: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
        start: Instant,
        pipeline: usize,
        remaining: usize,
    }

    impl Driver {
        fn now_us(&self) -> u64 {
            self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
        }

        /// The service step shared by the clock path and the readiness
        /// path: queue due requests, flush, rearm, retire.
        fn service(&mut self, c: usize, source: &mut dyn LoadSource) -> io::Result<()> {
            let now_us = self.now_us();
            let conn = &mut self.conns[c];
            if conn.finished {
                return Ok(());
            }
            let next_due = conn.top_up(c, now_us, self.pipeline, source);
            conn.flush()?;
            if let Some(due) = next_due {
                if !conn.queued {
                    conn.queued = true;
                    self.pacing.push(std::cmp::Reverse((due, c)));
                }
            }
            if conn.drained() {
                conn.finished = true;
                self.epoll.delete(conn.fd())?;
                self.remaining -= 1;
                return Ok(());
            }
            let want = EPOLLIN
                | if conn.out_off < conn.out.len() {
                    EPOLLOUT
                } else {
                    0
                };
            if want != conn.interest {
                self.epoll.modify(conn.fd(), want, c as u64)?;
                conn.interest = want;
            }
            Ok(())
        }
    }

    pub fn drive(
        addr: SocketAddr,
        connections: usize,
        pipeline: usize,
        source: &mut dyn LoadSource,
    ) -> io::Result<Duration> {
        let epoll = Epoll::new()?;
        let start = Instant::now();
        let mut conns = Vec::with_capacity(connections);
        for c in 0..connections {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.set_nonblocking(true)?;
            let conn = LoadConn {
                stream,
                decoder: StreamDecoder::new(frame::MAX_FRAME),
                out: Vec::new(),
                out_off: 0,
                head: None,
                exhausted: false,
                inflight: HashMap::with_capacity(pipeline),
                interest: EPOLLIN | EPOLLOUT,
                queued: false,
                finished: false,
            };
            epoll.add(conn.fd(), conn.interest, c as u64)?;
            conns.push(conn);
        }

        let mut driver = Driver {
            epoll,
            conns,
            pacing: BinaryHeap::new(),
            start,
            pipeline,
            remaining: connections,
        };
        let mut events = vec![EpollEvent::default(); 1024];

        // Prime every connection (pulls the first requests; immediate
        // ones go straight onto the wire).
        for c in 0..connections {
            driver.service(c, source)?;
        }

        while driver.remaining > 0 {
            // Clock work first: dispatch every connection whose due
            // time has arrived.
            let now_us = driver.now_us();
            while let Some(&std::cmp::Reverse((due, c))) = driver.pacing.peek() {
                if due > now_us {
                    break;
                }
                driver.pacing.pop();
                driver.conns[c].queued = false;
                driver.service(c, source)?;
            }
            if driver.remaining == 0 {
                break;
            }
            // Then socket work, sleeping no longer than the next due
            // time. Sub-millisecond gaps round up to 1ms — epoll's
            // clock resolution bounds pacing fidelity, not throughput
            // (max pacing never touches the heap).
            let timeout = driver.pacing.peek().map(|&std::cmp::Reverse((due, _))| {
                Duration::from_micros(due.saturating_sub(now_us).max(1_000))
            });
            let n = match driver.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            for ev in &events[..n] {
                // Copies first: the struct is packed on x86-64.
                let c = { ev.data } as usize;
                let mask = { ev.events };
                if driver.conns[c].finished {
                    continue;
                }
                if mask & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0 {
                    driver.conns[c].on_readable(c, source)?;
                }
                driver.service(c, source)?;
            }
        }
        let wall = start.elapsed();
        for conn in &driver.conns {
            debug_assert!(conn.drained(), "drive returned with work outstanding");
        }
        Ok(wall)
    }
}

#[cfg(not(target_os = "linux"))]
mod threaded_driver {
    use super::{LoadRequest, LoadSource};
    use crate::client::{PendingCall, WireClient};
    use std::collections::VecDeque;
    use std::io;
    use std::net::SocketAddr;
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    /// Thread-per-connection fallback: same source contract, pacing by
    /// sleeping until each request's due time.
    pub fn drive(
        addr: SocketAddr,
        connections: usize,
        pipeline: usize,
        source: &mut dyn LoadSource,
    ) -> io::Result<Duration> {
        let start = Instant::now();
        let source = Mutex::new(source);
        let failure: Mutex<Option<io::Error>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for c in 0..connections {
                let source = &source;
                let failure = &failure;
                scope.spawn(move || {
                    let run = || -> io::Result<()> {
                        let client = WireClient::connect(addr)?;
                        let mut window: VecDeque<(u64, Instant, PendingCall)> =
                            VecDeque::with_capacity(pipeline);
                        let reap = |(id, sent, call): (u64, Instant, PendingCall)| {
                            let response = call.wait().map_err(|e| {
                                io::Error::new(io::ErrorKind::UnexpectedEof, e.to_string())
                            })?;
                            source.lock().expect("load source lock").complete(
                                c,
                                id,
                                response.status,
                                &response.payload,
                                sent.elapsed(),
                            );
                            io::Result::Ok(())
                        };
                        loop {
                            let next: Option<LoadRequest> =
                                source.lock().expect("load source lock").next(c);
                            let Some(request) = next else { break };
                            let now_us =
                                start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                            if request.due_us > now_us {
                                std::thread::sleep(Duration::from_micros(request.due_us - now_us));
                            }
                            if window.len() == pipeline {
                                reap(window.pop_front().expect("window is non-empty"))?;
                            }
                            let call = client
                                .submit(request.payload, 0)
                                .map_err(|e| io::Error::other(e.to_string()))?;
                            window.push_back((request.id, Instant::now(), call));
                        }
                        for entry in window {
                            reap(entry)?;
                        }
                        Ok(())
                    };
                    if let Err(e) = run() {
                        failure.lock().expect("failure lock").get_or_insert(e);
                    }
                });
            }
        });
        match failure.into_inner().expect("failure lock") {
            Some(e) => Err(e),
            None => Ok(start.elapsed()),
        }
    }
}
