//! A std-only pipelining client for the wire protocol.
//!
//! [`WireClient`] owns one TCP connection. Calls are **pipelined**:
//! [`submit`](WireClient::submit) writes the request frame and returns a
//! [`PendingCall`] immediately, so many requests can be on the wire at
//! once; a background reader thread matches response frames back to
//! their pending calls by request id, in whatever order the server
//! answers. [`PendingCall::wait`] blocks for one specific answer.
//!
//! The client is thread-safe: any thread may submit, and the id space
//! is allocated atomically per connection.

use crate::frame::{
    self, Frame, FrameError, PlanRequest, PlanResponse, Request, Response, MAX_FRAME,
};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A client-side failure (distinct from an in-band error [`Status`] —
/// those arrive as normal [`Response`]s).
///
/// [`Status`]: crate::frame::Status
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A socket-level error, flattened to kind + message so every
    /// waiter on the connection can receive a copy.
    Io(io::ErrorKind, String),
    /// The server closed the connection before answering this call.
    ConnectionClosed,
    /// The server violated the framing protocol.
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(kind, msg) => write!(f, "i/o error ({kind:?}): {msg}"),
            WireError::ConnectionClosed => write!(f, "connection closed before the response"),
            WireError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e.kind(), e.to_string())
    }
}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => WireError::Io(e.kind(), e.to_string()),
            FrameError::Torn => WireError::Protocol("torn frame".into()),
            other => WireError::Protocol(other.to_string()),
        }
    }
}

/// One slot in the pending-call table. Ready slots hold the whole
/// response frame so assess ([`Response`]) and plan ([`PlanResponse`])
/// calls share one table; each pending handle unwraps its own kind.
#[derive(Debug)]
enum SlotState {
    Waiting,
    Ready(Frame),
}

#[derive(Debug, Default)]
struct Pending {
    slots: HashMap<u64, SlotState>,
    /// Set once when the connection dies; every current and future
    /// waiter gets a clone.
    failed: Option<WireError>,
}

#[derive(Debug, Default)]
struct ClientShared {
    pending: Mutex<Pending>,
    ready: Condvar,
}

impl ClientShared {
    fn fail(&self, error: WireError) {
        let mut pending = self.pending.lock().expect("pending lock");
        if pending.failed.is_none() {
            pending.failed = Some(error);
        }
        self.ready.notify_all();
    }
}

/// One pipelined request awaiting its response. Obtain from
/// [`WireClient::submit`]; redeem with [`wait`](Self::wait). Dropping
/// without waiting abandons the call (the response, if it arrives, is
/// discarded).
#[derive(Debug)]
pub struct PendingCall {
    shared: Arc<ClientShared>,
    id: u64,
    done: bool,
}

impl PendingCall {
    /// The request id this call was sent under.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the server answers this call (responses may arrive
    /// in any order; this waits for this id specifically).
    ///
    /// # Errors
    ///
    /// Fails if the connection died before the response arrived.
    pub fn wait(mut self) -> Result<Response, WireError> {
        self.done = true;
        match wait_ready(&self.shared, self.id)? {
            Frame::Response(response) => Ok(response),
            other => Err(WireError::Protocol(format!(
                "expected a response frame for id {}, got {other:?}",
                self.id
            ))),
        }
    }
}

impl Drop for PendingCall {
    fn drop(&mut self) {
        if !self.done {
            let mut pending = self.shared.pending.lock().expect("pending lock");
            pending.slots.remove(&self.id);
        }
    }
}

/// One pipelined v3 plan request awaiting its [`PlanResponse`]. Obtain
/// from [`WireClient::submit_plan`]; redeem with [`wait`](Self::wait).
/// Dropping without waiting abandons the call.
#[derive(Debug)]
pub struct PendingPlan {
    shared: Arc<ClientShared>,
    id: u64,
    done: bool,
}

impl PendingPlan {
    /// The request id this plan call was sent under.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the server answers this plan call.
    ///
    /// # Errors
    ///
    /// Fails if the connection died before the response arrived.
    pub fn wait(mut self) -> Result<PlanResponse, WireError> {
        self.done = true;
        match wait_ready(&self.shared, self.id)? {
            Frame::PlanResponse(response) => Ok(response),
            other => Err(WireError::Protocol(format!(
                "expected a plan-response frame for id {}, got {other:?}",
                self.id
            ))),
        }
    }
}

impl Drop for PendingPlan {
    fn drop(&mut self) {
        if !self.done {
            let mut pending = self.shared.pending.lock().expect("pending lock");
            pending.slots.remove(&self.id);
        }
    }
}

/// Blocks until slot `id` turns ready (or the connection fails) and
/// returns the delivered frame.
fn wait_ready(shared: &ClientShared, id: u64) -> Result<Frame, WireError> {
    let mut pending = shared.pending.lock().expect("pending lock");
    loop {
        if matches!(pending.slots.get(&id), Some(SlotState::Ready(_))) {
            match pending.slots.remove(&id) {
                Some(SlotState::Ready(frame)) => return Ok(frame),
                _ => unreachable!("checked ready above"),
            }
        }
        if let Some(error) = pending.failed.clone() {
            pending.slots.remove(&id);
            return Err(error);
        }
        pending = shared.ready.wait(pending).expect("pending lock");
    }
}

/// A pipelining connection to a [`WireServer`](crate::server::WireServer).
/// See the [module docs](self).
#[derive(Debug)]
pub struct WireClient {
    shared: Arc<ClientShared>,
    writer: Mutex<BufWriter<TcpStream>>,
    stream: TcpStream,
    next_id: AtomicU64,
    reader: Option<JoinHandle<()>>,
}

impl WireClient {
    /// Dials `addr` and starts the response reader.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_stream = stream.try_clone()?;
        let write_stream = stream.try_clone()?;
        let shared = Arc::new(ClientShared::default());
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reader_loop(&shared, read_stream))
        };
        Ok(WireClient {
            shared,
            writer: Mutex::new(BufWriter::new(write_stream)),
            stream,
            next_id: AtomicU64::new(1),
            reader: Some(reader),
        })
    }

    /// Sends one request frame (flushed immediately) and returns the
    /// pending call. `deadline_ms` of 0 means no deadline; otherwise it
    /// is the service-side deadline for the request.
    ///
    /// # Errors
    ///
    /// Fails if the connection already died or the write fails.
    pub fn submit(&self, payload: Vec<u8>, deadline_ms: u32) -> Result<PendingCall, WireError> {
        self.submit_inner(payload, deadline_ms, false)
    }

    /// Like [`submit`](Self::submit), but sets the `WANT_EXPLAIN` flag
    /// on a v2 request frame, so the response carries an
    /// [`Explain`](crate::frame::Explain) section (trace id plus the
    /// engine's provenance JSON). Requires a server that understands v2
    /// frames; old servers will reject the unknown frame kind.
    ///
    /// # Errors
    ///
    /// Fails if the connection already died or the write fails.
    pub fn submit_explained(
        &self,
        payload: Vec<u8>,
        deadline_ms: u32,
    ) -> Result<PendingCall, WireError> {
        self.submit_inner(payload, deadline_ms, true)
    }

    fn submit_inner(
        &self,
        payload: Vec<u8>,
        deadline_ms: u32,
        want_explain: bool,
    ) -> Result<PendingCall, WireError> {
        let id = self.open_slot()?;
        let frame = Frame::Request(Request {
            id,
            deadline_ms,
            want_explain,
            payload,
        });
        self.write_slotted(id, &frame)?;
        Ok(PendingCall {
            shared: Arc::clone(&self.shared),
            id,
            done: false,
        })
    }

    /// Sends one v3 plan request frame (a JSONL planning problem —
    /// see the `planner` crate) and returns the pending plan call.
    /// `deadline_ms` is carried for frame symmetry; the server runs the
    /// search to completion regardless. Requires a v3-aware server;
    /// older servers will reject the unknown frame kind.
    ///
    /// # Errors
    ///
    /// Fails if the connection already died or the write fails.
    pub fn submit_plan(
        &self,
        payload: Vec<u8>,
        deadline_ms: u32,
    ) -> Result<PendingPlan, WireError> {
        let id = self.open_slot()?;
        let frame = Frame::PlanRequest(PlanRequest {
            id,
            deadline_ms,
            payload,
        });
        self.write_slotted(id, &frame)?;
        Ok(PendingPlan {
            shared: Arc::clone(&self.shared),
            id,
            done: false,
        })
    }

    /// Reserves a fresh id in the pending table (fails fast if the
    /// connection already died).
    fn open_slot(&self) -> Result<u64, WireError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut pending = self.shared.pending.lock().expect("pending lock");
        if let Some(error) = pending.failed.clone() {
            return Err(error);
        }
        pending.slots.insert(id, SlotState::Waiting);
        Ok(id)
    }

    /// Writes and flushes one frame; on failure the reserved slot is
    /// released so the id never leaks.
    fn write_slotted(&self, id: u64, frame: &Frame) -> Result<(), WireError> {
        let written = {
            let mut w = self.writer.lock().expect("writer lock");
            frame::write_frame(&mut *w, frame).and_then(|()| w.flush())
        };
        if let Err(e) = written {
            let mut pending = self.shared.pending.lock().expect("pending lock");
            pending.slots.remove(&id);
            return Err(e.into());
        }
        Ok(())
    }

    /// Convenience: submit and block for the answer — a depth-1
    /// (unpipelined) round trip.
    ///
    /// # Errors
    ///
    /// Fails if the connection died before the response arrived.
    pub fn roundtrip(&self, payload: Vec<u8>, deadline_ms: u32) -> Result<Response, WireError> {
        self.submit(payload, deadline_ms)?.wait()
    }

    /// Convenience: submit a plan request and block for the answer.
    ///
    /// # Errors
    ///
    /// Fails if the connection died before the response arrived.
    pub fn plan_roundtrip(&self, payload: Vec<u8>) -> Result<PlanResponse, WireError> {
        self.submit_plan(payload, 0)?.wait()
    }
}

impl Drop for WireClient {
    fn drop(&mut self) {
        // Unblocks the reader thread's pending read.
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

fn reader_loop(shared: &ClientShared, stream: TcpStream) {
    let mut r = BufReader::new(stream);
    loop {
        match frame::read_frame(&mut r, MAX_FRAME) {
            Ok(None) => {
                shared.fail(WireError::ConnectionClosed);
                return;
            }
            Ok(Some(frame @ (Frame::Response(_) | Frame::PlanResponse(_)))) => {
                let id = match &frame {
                    Frame::Response(r) => r.id,
                    Frame::PlanResponse(r) => r.id,
                    _ => unreachable!("matched response kinds above"),
                };
                let mut pending = shared.pending.lock().expect("pending lock");
                // An unknown id means the call was dropped unwaited;
                // discard the orphan response.
                if let Some(slot) = pending.slots.get_mut(&id) {
                    *slot = SlotState::Ready(frame);
                }
                shared.ready.notify_all();
            }
            Ok(Some(Frame::Request(_) | Frame::PlanRequest(_))) => {
                shared.fail(WireError::Protocol("server sent a request frame".into()));
                return;
            }
            Err(e) => {
                shared.fail(e.into());
                return;
            }
        }
    }
}
