//! A std-only pipelining client for the wire protocol.
//!
//! [`WireClient`] owns one TCP connection. Calls are **pipelined**:
//! [`submit`](WireClient::submit) writes the request frame and returns a
//! [`PendingCall`] immediately, so many requests can be on the wire at
//! once; a background reader thread matches response frames back to
//! their pending calls by request id, in whatever order the server
//! answers. [`PendingCall::wait`] blocks for one specific answer.
//!
//! The client is thread-safe: any thread may submit, and the id space
//! is allocated atomically per connection.

use crate::frame::{self, Frame, FrameError, Request, Response, MAX_FRAME};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A client-side failure (distinct from an in-band error [`Status`] —
/// those arrive as normal [`Response`]s).
///
/// [`Status`]: crate::frame::Status
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A socket-level error, flattened to kind + message so every
    /// waiter on the connection can receive a copy.
    Io(io::ErrorKind, String),
    /// The server closed the connection before answering this call.
    ConnectionClosed,
    /// The server violated the framing protocol.
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(kind, msg) => write!(f, "i/o error ({kind:?}): {msg}"),
            WireError::ConnectionClosed => write!(f, "connection closed before the response"),
            WireError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e.kind(), e.to_string())
    }
}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => WireError::Io(e.kind(), e.to_string()),
            FrameError::Torn => WireError::Protocol("torn frame".into()),
            other => WireError::Protocol(other.to_string()),
        }
    }
}

/// One slot in the pending-call table.
#[derive(Debug)]
enum SlotState {
    Waiting,
    Ready(Response),
}

#[derive(Debug, Default)]
struct Pending {
    slots: HashMap<u64, SlotState>,
    /// Set once when the connection dies; every current and future
    /// waiter gets a clone.
    failed: Option<WireError>,
}

#[derive(Debug, Default)]
struct ClientShared {
    pending: Mutex<Pending>,
    ready: Condvar,
}

impl ClientShared {
    fn fail(&self, error: WireError) {
        let mut pending = self.pending.lock().expect("pending lock");
        if pending.failed.is_none() {
            pending.failed = Some(error);
        }
        self.ready.notify_all();
    }
}

/// One pipelined request awaiting its response. Obtain from
/// [`WireClient::submit`]; redeem with [`wait`](Self::wait). Dropping
/// without waiting abandons the call (the response, if it arrives, is
/// discarded).
#[derive(Debug)]
pub struct PendingCall {
    shared: Arc<ClientShared>,
    id: u64,
    done: bool,
}

impl PendingCall {
    /// The request id this call was sent under.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the server answers this call (responses may arrive
    /// in any order; this waits for this id specifically).
    ///
    /// # Errors
    ///
    /// Fails if the connection died before the response arrived.
    pub fn wait(mut self) -> Result<Response, WireError> {
        self.done = true;
        let mut pending = self.shared.pending.lock().expect("pending lock");
        loop {
            if matches!(pending.slots.get(&self.id), Some(SlotState::Ready(_))) {
                match pending.slots.remove(&self.id) {
                    Some(SlotState::Ready(response)) => return Ok(response),
                    _ => unreachable!("checked ready above"),
                }
            }
            if let Some(error) = pending.failed.clone() {
                pending.slots.remove(&self.id);
                return Err(error);
            }
            pending = self.shared.ready.wait(pending).expect("pending lock");
        }
    }
}

impl Drop for PendingCall {
    fn drop(&mut self) {
        if !self.done {
            let mut pending = self.shared.pending.lock().expect("pending lock");
            pending.slots.remove(&self.id);
        }
    }
}

/// A pipelining connection to a [`WireServer`](crate::server::WireServer).
/// See the [module docs](self).
#[derive(Debug)]
pub struct WireClient {
    shared: Arc<ClientShared>,
    writer: Mutex<BufWriter<TcpStream>>,
    stream: TcpStream,
    next_id: AtomicU64,
    reader: Option<JoinHandle<()>>,
}

impl WireClient {
    /// Dials `addr` and starts the response reader.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_stream = stream.try_clone()?;
        let write_stream = stream.try_clone()?;
        let shared = Arc::new(ClientShared::default());
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reader_loop(&shared, read_stream))
        };
        Ok(WireClient {
            shared,
            writer: Mutex::new(BufWriter::new(write_stream)),
            stream,
            next_id: AtomicU64::new(1),
            reader: Some(reader),
        })
    }

    /// Sends one request frame (flushed immediately) and returns the
    /// pending call. `deadline_ms` of 0 means no deadline; otherwise it
    /// is the service-side deadline for the request.
    ///
    /// # Errors
    ///
    /// Fails if the connection already died or the write fails.
    pub fn submit(&self, payload: Vec<u8>, deadline_ms: u32) -> Result<PendingCall, WireError> {
        self.submit_inner(payload, deadline_ms, false)
    }

    /// Like [`submit`](Self::submit), but sets the `WANT_EXPLAIN` flag
    /// on a v2 request frame, so the response carries an
    /// [`Explain`](crate::frame::Explain) section (trace id plus the
    /// engine's provenance JSON). Requires a server that understands v2
    /// frames; old servers will reject the unknown frame kind.
    ///
    /// # Errors
    ///
    /// Fails if the connection already died or the write fails.
    pub fn submit_explained(
        &self,
        payload: Vec<u8>,
        deadline_ms: u32,
    ) -> Result<PendingCall, WireError> {
        self.submit_inner(payload, deadline_ms, true)
    }

    fn submit_inner(
        &self,
        payload: Vec<u8>,
        deadline_ms: u32,
        want_explain: bool,
    ) -> Result<PendingCall, WireError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut pending = self.shared.pending.lock().expect("pending lock");
            if let Some(error) = pending.failed.clone() {
                return Err(error);
            }
            pending.slots.insert(id, SlotState::Waiting);
        }
        let frame = Frame::Request(Request {
            id,
            deadline_ms,
            want_explain,
            payload,
        });
        let written = {
            let mut w = self.writer.lock().expect("writer lock");
            frame::write_frame(&mut *w, &frame).and_then(|()| w.flush())
        };
        if let Err(e) = written {
            let mut pending = self.shared.pending.lock().expect("pending lock");
            pending.slots.remove(&id);
            return Err(e.into());
        }
        Ok(PendingCall {
            shared: Arc::clone(&self.shared),
            id,
            done: false,
        })
    }

    /// Convenience: submit and block for the answer — a depth-1
    /// (unpipelined) round trip.
    ///
    /// # Errors
    ///
    /// Fails if the connection died before the response arrived.
    pub fn roundtrip(&self, payload: Vec<u8>, deadline_ms: u32) -> Result<Response, WireError> {
        self.submit(payload, deadline_ms)?.wait()
    }
}

impl Drop for WireClient {
    fn drop(&mut self) {
        // Unblocks the reader thread's pending read.
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

fn reader_loop(shared: &ClientShared, stream: TcpStream) {
    let mut r = BufReader::new(stream);
    loop {
        match frame::read_frame(&mut r, MAX_FRAME) {
            Ok(None) => {
                shared.fail(WireError::ConnectionClosed);
                return;
            }
            Ok(Some(Frame::Response(response))) => {
                let mut pending = shared.pending.lock().expect("pending lock");
                // An unknown id means the call was dropped unwaited;
                // discard the orphan response.
                if let Some(slot) = pending.slots.get_mut(&response.id) {
                    *slot = SlotState::Ready(response);
                }
                shared.ready.notify_all();
            }
            Ok(Some(Frame::Request(_))) => {
                shared.fail(WireError::Protocol("server sent a request frame".into()));
                return;
            }
            Err(e) => {
                shared.fail(e.into());
                return;
            }
        }
    }
}
