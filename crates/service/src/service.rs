//! The compliance service: a worker pool draining the bounded queue
//! through a shared [`VerdictCache`], with per-request deadlines and
//! graceful, draining shutdown.
//!
//! # Lifecycle of a request
//!
//! 1. A producer calls [`ComplianceService::submit`] (or
//!    `submit_with_deadline`). Admission is decided by the configured
//!    [`AdmissionPolicy`]; an admitted request yields a [`Ticket`].
//! 2. A worker dequeues the request. If its deadline already passed, the
//!    request is answered [`Outcome::TimedOut`] *without* burning an
//!    engine run; otherwise the worker assesses it through the shared
//!    sharded cache and answers [`Outcome::Completed`].
//! 3. Under [`AdmissionPolicy::DropOldest`], an admitted request may be
//!    evicted by a newer one before any worker sees it; its ticket is
//!    answered [`Outcome::Shed`] by the evicting producer.
//!
//! **Exactly-one-response invariant:** every admitted request — and only
//! admitted requests — receives exactly one response: `Completed`,
//! `TimedOut`, or `Shed`. Shutdown closes admission, drains everything
//! already queued, and joins the workers; nothing accepted is lost and
//! nothing is answered twice (double-fulfilment panics).

use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::mpmc::MpmcRing;
use crate::queue::{AdmissionPolicy, AdmissionQueue, BoundedQueue, PushError, QueueKind};
use forensic_law::action::InvestigativeAction;
use forensic_law::assessment::LegalAssessment;
use forensic_law::batch::VerdictCache;
use forensic_law::engine::ComplianceEngine;
use obs::{Span, Stage, TraceId};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`ComplianceService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads draining the queue (clamped to at least one).
    pub workers: usize,
    /// Queue capacity (clamped to at least one).
    pub capacity: usize,
    /// What happens to a submission when the queue is full.
    pub policy: AdmissionPolicy,
    /// Deadline applied to [`submit`](ComplianceService::submit) calls
    /// that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Simulated minimum per-request engine time, for load experiments
    /// that model a heavier assessment pipeline than the current
    /// in-memory engine (remote statute lookups, disk-resident dockets).
    /// Implemented as a sleep: it occupies the request's worker slot —
    /// which is what queueing behavior depends on — without pinning a
    /// core, so deadline and backpressure experiments behave the same on
    /// small CI machines as on big ones. `ZERO` (the default) means real
    /// engine cost only.
    pub engine_floor: Duration,
    /// Which admission-queue implementation to run on: the lock-free
    /// MPMC ring (default) or the legacy `Mutex`+`Condvar` queue, kept
    /// for differential testing. Semantics are identical.
    pub queue: QueueKind,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            capacity: 1024,
            policy: AdmissionPolicy::Block,
            default_deadline: None,
            engine_floor: Duration::ZERO,
            queue: QueueKind::default(),
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full and the policy is [`AdmissionPolicy::Reject`]:
    /// load was shed.
    Overloaded,
    /// The service is shutting down; admission is closed.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SubmitError::Overloaded => "service overloaded: request shed at admission",
            SubmitError::ShuttingDown => "service shutting down: admission closed",
        })
    }
}

impl std::error::Error for SubmitError {}

/// How an admitted request was answered.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Assessed (possibly from cache); the verdict is attached.
    Completed(Arc<LegalAssessment>),
    /// The deadline passed before a worker got to it; no engine run was
    /// spent.
    TimedOut,
    /// Evicted from the queue by a newer request under
    /// [`AdmissionPolicy::DropOldest`].
    Shed,
}

impl Outcome {
    /// The assessment, when the request completed.
    pub fn assessment(&self) -> Option<&Arc<LegalAssessment>> {
        match self {
            Outcome::Completed(a) => Some(a),
            _ => None,
        }
    }

    /// The canonical `{verdict} [{confidence}]` line for a completed
    /// outcome ([`LegalAssessment::verdict_line`]) — the exact bytes
    /// the wire layer sends and the request journal stores, so replay
    /// can diff them byte-for-byte. `None` when there is no assessment
    /// to render (timed out or shed).
    pub fn verdict_line(&self) -> Option<String> {
        self.assessment().map(|a| a.verdict_line())
    }
}

/// `detail` code on a [`Stage::Queue`] span: the wait ended with a
/// worker picking the request up for assessment.
pub const OUTCOME_PICKED_UP: u64 = 0;
/// `detail` code on a [`Stage::Queue`] span: the wait ended past the
/// request's deadline; no engine run was spent.
pub const OUTCOME_TIMED_OUT: u64 = 1;
/// `detail` code on a [`Stage::Queue`] span: the request was evicted by
/// a newer one under [`AdmissionPolicy::DropOldest`].
pub const OUTCOME_SHED: u64 = 2;

/// The service's answer to one admitted request.
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// How the request was answered.
    pub outcome: Outcome,
    /// Time spent queued before a worker (or evictor) resolved it.
    pub queue_wait: Duration,
    /// Admission-to-response latency.
    pub total: Duration,
    /// The trace id the request carried through the stack — the join
    /// key for its span chain in [`obs::global`] and its provenance
    /// record. [`TraceId::UNTRACED`] never occurs for admitted
    /// requests: submission mints an id when the caller didn't.
    pub trace: TraceId,
}

/// One-shot response slot shared between a [`Ticket`] and the worker
/// pool.
struct Slot {
    cell: Mutex<Option<ServiceResponse>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            cell: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// Posts the response. Panics on a second fulfilment — the
    /// exactly-once invariant is structural, not best-effort.
    fn fulfill(&self, response: ServiceResponse) {
        let mut cell = self.cell.lock().expect("slot lock");
        assert!(
            cell.is_none(),
            "an admitted request must be answered exactly once"
        );
        *cell = Some(response);
        self.ready.notify_all();
    }
}

/// A claim on the eventual response to one admitted request.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot").finish_non_exhaustive()
    }
}

impl Ticket {
    /// Blocks until the service answers, then returns the response.
    ///
    /// Never blocks forever against a live service: every admitted
    /// request is answered by a worker, an evictor, or the shutdown
    /// drain.
    pub fn wait(self) -> ServiceResponse {
        let mut cell = self.slot.cell.lock().expect("slot lock");
        loop {
            if let Some(response) = cell.take() {
                return response;
            }
            cell = self.slot.ready.wait(cell).expect("slot lock");
        }
    }

    /// Returns the response if it has already been posted.
    pub fn try_response(&self) -> Option<ServiceResponse> {
        self.slot.cell.lock().expect("slot lock").clone()
    }
}

/// A completion observer: called with the response, exactly once, on
/// whichever thread answers the request (a worker, an evicting producer,
/// or the shutdown drain). This is how the wire layer gets out-of-order
/// completion without parking a thread per in-flight request.
pub type ResponseObserver = Box<dyn FnOnce(&ServiceResponse) + Send>;

/// An observed submission that was not admitted: the typed error plus
/// the unfired observer, handed back so the caller can still answer its
/// own client (a request that was never admitted gets no service
/// response).
pub struct ObservedRejection {
    /// Why admission failed.
    pub error: SubmitError,
    /// The observer, unfired.
    pub observer: ResponseObserver,
}

impl std::fmt::Debug for ObservedRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObservedRejection")
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

/// One queued unit of work. Span timestamps are all derived from
/// `admitted` (and the worker's own pickup Instant) when the global
/// span log is enabled, so tracing adds no field here and no clock
/// read on the submit path.
struct Job {
    action: InvestigativeAction,
    slot: Arc<Slot>,
    admitted: Instant,
    deadline: Option<Instant>,
    trace: TraceId,
    notify: Option<ResponseObserver>,
}

impl Job {
    /// Answers the request, consuming the job: fires the observer (if
    /// any) and posts to the ticket slot. Every answer — worker,
    /// evictor, drain — funnels through here, so the exactly-once panic
    /// guard in [`Slot::fulfill`] covers observed requests too.
    fn finish(self, response: ServiceResponse) {
        if let Some(notify) = self.notify {
            notify(&response);
        }
        self.slot.fulfill(response);
    }
}

/// A long-running, load-tolerant compliance request server over the
/// `forensic-law` engine. See the [module docs](self).
pub struct ComplianceService {
    queue: Arc<dyn AdmissionQueue<Job>>,
    policy: AdmissionPolicy,
    default_deadline: Option<Duration>,
    metrics: Arc<ServiceMetrics>,
    cache: Arc<VerdictCache>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ComplianceService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComplianceService")
            .field("policy", &self.policy)
            .field("queue_depth", &self.queue.queued())
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").finish_non_exhaustive()
    }
}

impl ComplianceService {
    /// Starts the worker pool with a fresh shared cache.
    pub fn start(config: ServiceConfig) -> Self {
        ComplianceService::start_with_cache(config, Arc::new(VerdictCache::new()))
    }

    /// Starts the worker pool routing assessments through `cache`, so a
    /// service can inherit entries warmed by earlier batch runs (or by a
    /// previous incarnation of itself).
    pub fn start_with_cache(config: ServiceConfig, cache: Arc<VerdictCache>) -> Self {
        let queue: Arc<dyn AdmissionQueue<Job>> = match config.queue {
            QueueKind::Lockfree => Arc::new(MpmcRing::new(config.capacity)),
            QueueKind::Locked => Arc::new(BoundedQueue::new(config.capacity)),
        };
        let metrics = Arc::new(ServiceMetrics::default());
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                let cache = Arc::clone(&cache);
                let floor = config.engine_floor;
                std::thread::spawn(move || worker_loop(queue.as_ref(), &metrics, &cache, floor))
            })
            .collect();
        ComplianceService {
            queue,
            policy: config.policy,
            default_deadline: config.default_deadline,
            metrics,
            cache,
            workers,
        }
    }

    /// Submits one action under the configured default deadline.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is full under the
    /// `Reject` policy; [`SubmitError::ShuttingDown`] once admission has
    /// closed.
    pub fn submit(&self, action: InvestigativeAction) -> Result<Ticket, SubmitError> {
        self.submit_inner(action, self.default_deadline, TraceId::mint(), None)
            .map_err(|(e, _)| e)
    }

    /// Submits one action with an explicit deadline relative to now.
    ///
    /// # Errors
    ///
    /// As for [`submit`](Self::submit).
    pub fn submit_with_deadline(
        &self,
        action: InvestigativeAction,
        deadline: Duration,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(action, Some(deadline), TraceId::mint(), None)
            .map_err(|(e, _)| e)
    }

    /// Submits one action whose response is delivered to `on_response`
    /// instead of through a [`Ticket`]: the observer fires exactly once,
    /// on whichever thread answers the request. This is the asynchronous
    /// completion path the wire layer pipelines on.
    ///
    /// # Errors
    ///
    /// As for [`submit`](Self::submit); on an error the observer is
    /// returned unfired inside the [`ObservedRejection`].
    pub fn submit_observed(
        &self,
        action: InvestigativeAction,
        deadline: Option<Duration>,
        on_response: ResponseObserver,
    ) -> Result<(), ObservedRejection> {
        self.submit_observed_traced(action, deadline, TraceId::mint(), on_response)
    }

    /// [`submit_observed`](Self::submit_observed) for a request whose
    /// trace id was minted further up the stack (the wire server mints
    /// at frame decode): the id is propagated, not re-minted, so spans
    /// recorded here join the caller's chain.
    ///
    /// # Errors
    ///
    /// As for [`submit_observed`](Self::submit_observed).
    pub fn submit_observed_traced(
        &self,
        action: InvestigativeAction,
        deadline: Option<Duration>,
        trace: TraceId,
        on_response: ResponseObserver,
    ) -> Result<(), ObservedRejection> {
        match self.submit_inner(action, deadline, trace, Some(on_response)) {
            Ok(_ticket) => Ok(()),
            Err((error, notify)) => Err(ObservedRejection {
                error,
                observer: notify.expect("observed submit carries an observer"),
            }),
        }
    }

    fn submit_inner(
        &self,
        action: InvestigativeAction,
        deadline: Option<Duration>,
        trace: TraceId,
        notify: Option<ResponseObserver>,
    ) -> Result<Ticket, (SubmitError, Option<ResponseObserver>)> {
        self.metrics.submitted.inc();
        let now = Instant::now();
        let slot = Slot::new();
        let log = obs::global();
        let job = Job {
            action,
            slot: Arc::clone(&slot),
            admitted: now,
            deadline: deadline.map(|d| now + d),
            trace,
            notify,
        };
        match self.queue.offer(job, self.policy) {
            Ok(evicted) => {
                self.metrics.accepted.inc();
                for old in evicted {
                    // The producer that caused the eviction answers each
                    // victim, so the invariant holds without any worker
                    // involvement. (The lock-free ring can evict more
                    // than one victim when racing producers win the
                    // freed slot.)
                    self.metrics.evicted.inc();
                    let waited = old.admitted.elapsed();
                    self.metrics.end_to_end.record(waited);
                    if log.is_enabled() {
                        log.record(Span {
                            trace: old.trace,
                            stage: Stage::Queue,
                            start_us: obs::us_since_epoch(old.admitted),
                            dur_us: obs::dur_us(waited),
                            detail: OUTCOME_SHED,
                        });
                    }
                    let trace = old.trace;
                    old.finish(ServiceResponse {
                        outcome: Outcome::Shed,
                        queue_wait: waited,
                        total: waited,
                        trace,
                    });
                }
                Ok(Ticket { slot })
            }
            Err(PushError::Full(job)) => {
                self.metrics.rejected.inc();
                Err((SubmitError::Overloaded, job.notify))
            }
            Err(PushError::Closed(job)) => Err((SubmitError::ShuttingDown, job.notify)),
        }
    }

    /// Closes admission without waiting: later submissions fail with
    /// [`SubmitError::ShuttingDown`], while workers keep draining what
    /// was already accepted. Idempotent.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Graceful shutdown: closes admission, lets the workers drain every
    /// queued request (each still gets its one response), joins them, and
    /// returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.queue.close();
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread panicked");
        }
        self.metrics.snapshot(self.queue.queued())
    }

    /// Live metrics (counters are running totals; histograms cumulative).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.queue.queued())
    }

    /// The shared verdict cache the workers assess through.
    pub fn cache(&self) -> &Arc<VerdictCache> {
        &self.cache
    }

    /// Requests currently queued (admitted, not yet picked up).
    pub fn queue_depth(&self) -> usize {
        self.queue.queued()
    }

    /// The configured admission policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }
}

impl Drop for ComplianceService {
    fn drop(&mut self) {
        // A dropped service still drains: close admission and join so no
        // admitted request is left unanswered.
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    queue: &dyn AdmissionQueue<Job>,
    metrics: &ServiceMetrics,
    cache: &VerdictCache,
    floor: Duration,
) {
    let engine = ComplianceEngine::new();
    let log = obs::global();
    while let Some(job) = queue.take_wait() {
        let picked_up = Instant::now();
        let waited = picked_up.duration_since(job.admitted);
        metrics.queue_wait.record(waited);
        let trace = job.trace;
        // Hoisted once per request; every span below reuses Instants the
        // metrics already pay for, so the whole tracing cost when
        // enabled is the ring records themselves.
        let tracing = log.is_enabled();
        let queue_span = |detail: u64| Span {
            trace,
            stage: Stage::Queue,
            start_us: obs::us_since_epoch(job.admitted),
            dur_us: obs::dur_us(waited),
            detail,
        };

        if job.deadline.is_some_and(|d| picked_up > d) {
            // Past deadline: answer without burning an engine run.
            metrics.timed_out.inc();
            let total = job.admitted.elapsed();
            metrics.end_to_end.record(total);
            if tracing {
                log.record(queue_span(OUTCOME_TIMED_OUT));
            }
            job.finish(ServiceResponse {
                outcome: Outcome::TimedOut,
                queue_wait: waited,
                total,
                trace,
            });
            continue;
        }

        let engine_start = Instant::now();
        if !floor.is_zero() {
            std::thread::sleep(floor);
        }
        let assessment = cache.assess(&engine, &job.action);
        let engine_dur = engine_start.elapsed();
        metrics.engine.record(engine_dur);
        if tracing {
            // Both spans packed into one ring slot; timestamps reuse
            // the Instants the metrics above already captured.
            log.record_pair(
                queue_span(OUTCOME_PICKED_UP),
                Span {
                    trace,
                    stage: Stage::Engine,
                    start_us: obs::us_since_epoch(engine_start),
                    dur_us: obs::dur_us(engine_dur),
                    detail: OUTCOME_PICKED_UP,
                },
            );
        }
        metrics.completed.inc();
        let total = job.admitted.elapsed();
        metrics.end_to_end.record(total);
        job.finish(ServiceResponse {
            outcome: Outcome::Completed(assessment),
            queue_wait: waited,
            total,
            trace,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forensic_law::scenarios::table1;

    fn table1_actions() -> Vec<InvestigativeAction> {
        table1().iter().map(|s| s.action().clone()).collect()
    }

    /// Blocks until the queue is empty, i.e. a worker has picked up
    /// everything submitted so far.
    fn wait_for_drain(service: &ComplianceService) {
        while service.queue_depth() > 0 {
            std::thread::yield_now();
        }
    }

    /// A config that parks one worker on each job long enough for a test
    /// to fill the queue deterministically behind it.
    fn slow_single_worker(capacity: usize, policy: AdmissionPolicy) -> ServiceConfig {
        ServiceConfig {
            workers: 1,
            capacity,
            policy,
            default_deadline: None,
            engine_floor: Duration::from_millis(30),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn answers_match_a_fresh_engine() {
        let service = ComplianceService::start(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        });
        let engine = ComplianceEngine::new();
        let actions = table1_actions();
        let tickets: Vec<_> = actions
            .iter()
            .map(|a| service.submit(a.clone()).expect("admitted"))
            .collect();
        for (action, ticket) in actions.iter().zip(tickets) {
            let response = ticket.wait();
            let assessment = response.outcome.assessment().expect("completed");
            assert_eq!(assessment.verdict(), engine.assess(action).verdict());
            assert!(response.total >= response.queue_wait);
        }
        let snap = service.shutdown();
        assert_eq!(snap.completed, actions.len() as u64);
        assert_eq!(snap.responses(), snap.accepted);
    }

    #[test]
    fn expired_deadline_is_answered_without_an_engine_run() {
        let service = ComplianceService::start(slow_single_worker(8, AdmissionPolicy::Block));
        let actions = table1_actions();
        // Occupy the worker, then queue a request that will be stale by
        // the time the worker frees up.
        let first = service.submit(actions[0].clone()).unwrap();
        wait_for_drain(&service);
        let stale = service
            .submit_with_deadline(actions[1].clone(), Duration::ZERO)
            .unwrap();
        match stale.wait().outcome {
            Outcome::TimedOut => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert!(matches!(first.wait().outcome, Outcome::Completed(_)));
        // The timed-out request never touched the engine or cache.
        assert_eq!(service.cache().stats().lookups(), 1);
        let snap = service.shutdown();
        assert_eq!(snap.timed_out, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.engine.count, 1);
    }

    #[test]
    fn reject_policy_sheds_at_capacity() {
        let service = ComplianceService::start(slow_single_worker(2, AdmissionPolicy::Reject));
        let actions = table1_actions();
        let busy = service.submit(actions[0].clone()).unwrap();
        wait_for_drain(&service);
        let queued: Vec<_> = (1..3)
            .map(|i| service.submit(actions[i].clone()).unwrap())
            .collect();
        assert_eq!(
            service.submit(actions[3].clone()).unwrap_err(),
            SubmitError::Overloaded
        );
        for ticket in queued.into_iter().chain([busy]) {
            assert!(matches!(ticket.wait().outcome, Outcome::Completed(_)));
        }
        let snap = service.shutdown();
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.accepted, 3);
        assert_eq!(snap.responses(), 3);
        assert!(snap.shed_rate() > 0.0);
    }

    #[test]
    fn drop_oldest_policy_answers_the_evicted_request_shed() {
        let service = ComplianceService::start(slow_single_worker(2, AdmissionPolicy::DropOldest));
        let actions = table1_actions();
        let busy = service.submit(actions[0].clone()).unwrap();
        wait_for_drain(&service);
        let oldest = service.submit(actions[1].clone()).unwrap();
        let kept = service.submit(actions[2].clone()).unwrap();
        let newest = service.submit(actions[3].clone()).unwrap(); // evicts `oldest`
        assert!(matches!(oldest.wait().outcome, Outcome::Shed));
        for ticket in [busy, kept, newest] {
            assert!(matches!(ticket.wait().outcome, Outcome::Completed(_)));
        }
        let snap = service.shutdown();
        assert_eq!(snap.evicted, 1);
        assert_eq!(snap.accepted, 4);
        assert_eq!(snap.responses(), 4);
    }

    #[test]
    fn close_stops_admission_but_drains_accepted_work() {
        let service = ComplianceService::start(slow_single_worker(8, AdmissionPolicy::Block));
        let actions = table1_actions();
        let tickets: Vec<_> = (0..4)
            .map(|i| service.submit(actions[i].clone()).unwrap())
            .collect();
        service.close();
        assert_eq!(
            service.submit(actions[4].clone()).unwrap_err(),
            SubmitError::ShuttingDown
        );
        for ticket in tickets {
            assert!(matches!(ticket.wait().outcome, Outcome::Completed(_)));
        }
        let snap = service.shutdown();
        assert_eq!(snap.accepted, 4);
        assert_eq!(snap.responses(), 4);
    }

    #[test]
    fn shared_cache_serves_repeat_requests_from_memory() {
        let service = ComplianceService::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let action = table1_actions().remove(0);
        for _ in 0..10 {
            let ticket = service.submit(action.clone()).unwrap();
            assert!(matches!(ticket.wait().outcome, Outcome::Completed(_)));
        }
        let stats = service.cache().stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 9);
        service.shutdown();
    }

    #[test]
    fn observed_submit_fires_exactly_once_with_the_assessment() {
        use std::sync::mpsc;
        let service = ComplianceService::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let engine = ComplianceEngine::new();
        let actions = table1_actions();
        let (tx, rx) = mpsc::channel();
        for (i, action) in actions.iter().enumerate() {
            let tx = tx.clone();
            service
                .submit_observed(
                    action.clone(),
                    None,
                    Box::new(move |response: &ServiceResponse| {
                        tx.send((i, response.clone())).unwrap();
                    }),
                )
                .expect("admitted");
        }
        drop(tx);
        let mut seen = vec![0u32; actions.len()];
        for (i, response) in rx {
            seen[i] += 1;
            let assessment = response.outcome.assessment().expect("completed");
            assert_eq!(
                assessment.verdict(),
                engine.assess(&actions[i]).verdict(),
                "observed response #{i} disagrees with a fresh engine"
            );
        }
        assert!(seen.iter().all(|&n| n == 1), "observer fired {seen:?}");
        let snap = service.shutdown();
        assert_eq!(snap.responses(), snap.accepted);
    }

    #[test]
    fn observed_submit_sees_shed_and_drain_responses() {
        use std::sync::mpsc;
        let service = ComplianceService::start(slow_single_worker(2, AdmissionPolicy::DropOldest));
        let actions = table1_actions();
        let (tx, rx) = mpsc::channel();
        let observe = |tx: &mpsc::Sender<&'static str>| {
            let tx = tx.clone();
            Box::new(move |response: &ServiceResponse| {
                tx.send(match response.outcome {
                    Outcome::Completed(_) => "completed",
                    Outcome::TimedOut => "timed-out",
                    Outcome::Shed => "shed",
                })
                .unwrap();
            })
        };
        // Occupy the worker, fill the queue, then evict the oldest.
        service
            .submit_observed(actions[0].clone(), None, observe(&tx))
            .unwrap();
        wait_for_drain(&service);
        for action in &actions[1..4] {
            service
                .submit_observed(action.clone(), None, observe(&tx))
                .unwrap();
        }
        drop(tx);
        // Shutdown drains the still-queued requests; every observer fires.
        let snap = service.shutdown();
        let outcomes: Vec<_> = rx.into_iter().collect();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes.iter().filter(|o| **o == "shed").count(), 1);
        assert_eq!(outcomes.iter().filter(|o| **o == "completed").count(), 3);
        assert_eq!(snap.responses(), snap.accepted);
    }

    #[test]
    fn observed_submit_hands_the_observer_back_on_rejection() {
        let service = ComplianceService::start(slow_single_worker(1, AdmissionPolicy::Reject));
        let actions = table1_actions();
        let fired = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let observe = |fired: &Arc<std::sync::atomic::AtomicU32>| {
            let fired = Arc::clone(fired);
            Box::new(move |_: &ServiceResponse| {
                fired.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            })
        };
        service
            .submit_observed(actions[0].clone(), None, observe(&fired))
            .unwrap();
        wait_for_drain(&service);
        service
            .submit_observed(actions[1].clone(), None, observe(&fired))
            .unwrap();
        let rejection = service
            .submit_observed(actions[2].clone(), None, observe(&fired))
            .unwrap_err();
        assert_eq!(rejection.error, SubmitError::Overloaded);
        // The unfired observer comes back so the caller can answer its
        // own client; it never double-fires through the service.
        (rejection.observer)(&ServiceResponse {
            outcome: Outcome::Shed,
            queue_wait: Duration::ZERO,
            total: Duration::ZERO,
            trace: TraceId::UNTRACED,
        });
        let snap = service.shutdown();
        assert_eq!(fired.load(std::sync::atomic::Ordering::SeqCst), 3);
        assert_eq!(snap.responses(), snap.accepted);
        assert_eq!(snap.rejected, 1);
    }

    #[test]
    fn completed_response_joins_queue_and_engine_spans_by_trace() {
        obs::global().set_enabled(true);
        let service = ComplianceService::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let action = table1_actions().remove(0);
        let response = service.submit(action).unwrap().wait();
        assert!(response.trace.is_traced());
        let spans = obs::global().spans_for(response.trace);
        let stages: Vec<_> = spans.iter().map(|s| s.stage).collect();
        assert!(
            stages.contains(&Stage::Queue) && stages.contains(&Stage::Engine),
            "expected queue+engine chain for {}, got {stages:?}",
            response.trace
        );
        let queue = spans.iter().find(|s| s.stage == Stage::Queue).unwrap();
        assert_eq!(queue.detail, OUTCOME_PICKED_UP);
        service.shutdown();
    }

    #[test]
    fn traced_submission_propagates_the_callers_id() {
        use std::sync::mpsc;
        obs::global().set_enabled(true);
        let service = ComplianceService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let minted = TraceId::mint();
        let (tx, rx) = mpsc::channel();
        service
            .submit_observed_traced(
                table1_actions().remove(0),
                None,
                minted,
                Box::new(move |response: &ServiceResponse| {
                    tx.send(response.trace).unwrap();
                }),
            )
            .unwrap();
        assert_eq!(
            rx.recv().unwrap(),
            minted,
            "trace must propagate, not re-mint"
        );
        service.shutdown();
        assert!(!obs::global().spans_for(minted).is_empty());
    }

    #[test]
    fn ticket_is_answered_by_shutdown_drain() {
        let service = ComplianceService::start(slow_single_worker(8, AdmissionPolicy::Block));
        let action = table1_actions().remove(0);
        let ticket = service.submit(action).unwrap();
        // May or may not be answered yet; after shutdown it must be.
        service.shutdown();
        assert!(ticket.try_response().is_some());
        assert!(matches!(ticket.wait().outcome, Outcome::Completed(_)));
    }
}
