//! # service — `lexforensica-serve`
//!
//! An in-process compliance *service*: the long-running, load-tolerant
//! request server over the `forensic-law` engine that the one-shot CLI
//! and bench invocations were missing.
//!
//! A provider facing a stream of law-enforcement compliance requests
//! (the cloud-forensic-readiness framing in PAPERS.md) has to queue,
//! triage, and answer under time pressure — and say *no* gracefully when
//! saturated. This crate supplies that spine, std-only:
//!
//! * [`queue`] — the [`AdmissionQueue`] trait with an explicit
//!   [`AdmissionPolicy`] (`Block`, `Reject` — shed load with a typed
//!   error — or `DropOldest`) and its original `Mutex` + `Condvar`
//!   implementation, [`BoundedQueue`].
//! * [`mpmc`] — [`MpmcRing`], the lock-free bounded MPMC
//!   implementation of the same trait (claim-then-publish per-slot
//!   sequencing, parked-waiter fallback for blocking paths); the
//!   default admission queue, selectable at runtime via
//!   [`QueueKind`] (`--queue lockfree|locked`).
//! * [`service`] — [`ComplianceService`]: a worker pool draining the
//!   queue through a shared sharded `VerdictCache`, per-request
//!   deadlines (stale requests are answered `TimedOut` without burning
//!   an engine run), and graceful shutdown that drains in-flight work.
//!   Every admitted request gets exactly one response.
//! * [`metrics`] — lock-free counters and fixed-bucket latency
//!   histograms (queue wait, engine time, end-to-end) with p50/p95/p99
//!   extraction and a JSON snapshot emitter that merges into
//!   `BENCH_results.json`.
//! * [`cli`] — the std-only `--flag value` parser shared with the bench
//!   drivers and the `lexforensica` binary.
//!
//! ```
//! use service::prelude::*;
//! use forensic_law::scenarios::table1;
//!
//! let srv = ComplianceService::start(ServiceConfig {
//!     workers: 2,
//!     capacity: 64,
//!     policy: AdmissionPolicy::Reject,
//!     ..ServiceConfig::default()
//! });
//! let action = table1()[0].action().clone();
//! let ticket = srv.submit(action).expect("under capacity");
//! assert!(ticket.wait().outcome.assessment().is_some());
//! let finals = srv.shutdown();
//! assert_eq!(finals.responses(), finals.accepted);
//! ```

// `deny` rather than `forbid`: the lock-free MPMC admission ring needs
// `UnsafeCell` slot storage, scoped behind a module-level allow with the
// safety argument documented at each site. Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod metrics;
pub mod mpmc;
pub mod queue;
pub mod service;

pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use mpmc::MpmcRing;
pub use queue::{AdmissionPolicy, AdmissionQueue, BoundedQueue, PushError, QueueKind};
pub use service::{
    ComplianceService, ObservedRejection, Outcome, ResponseObserver, ServiceConfig,
    ServiceResponse, SubmitError, Ticket,
};

/// The names most callers want in scope.
pub mod prelude {
    pub use crate::metrics::MetricsSnapshot;
    pub use crate::queue::{AdmissionPolicy, QueueKind};
    pub use crate::service::{
        ComplianceService, ObservedRejection, Outcome, ResponseObserver, ServiceConfig,
        ServiceResponse, SubmitError, Ticket,
    };
}
