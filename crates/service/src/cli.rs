//! Std-only flag parsing shared by every driver binary in the workspace.
//!
//! One tiny convention everywhere: `--flag value` or `--flag=value` plus
//! bare positional arguments, e.g.
//!
//! ```console
//! $ lexforensica serve specs.jsonl --workers 8 --policy reject
//! $ cargo run --release --bin service_load -- --rate 50000 --seed 7
//! ```
//!
//! This module is the single source of truth: the `lexforensica` CLI and
//! the `bench` drivers (via `bench::cli`, a re-export) parse with the
//! same code, so the two vocabularies cannot drift.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    /// Parses the process arguments (after the binary name).
    ///
    /// # Panics
    ///
    /// Panics with a readable message when a `--flag` is missing its
    /// value — drivers want loud, immediate feedback, not silent
    /// defaults for a typo.
    pub fn parse() -> Self {
        Args::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit argument iterator (used by tests and by
    /// subcommands that strip their own name first).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    out.flags.insert(key.to_string(), value.to_string());
                } else {
                    let value = args
                        .next()
                        .unwrap_or_else(|| panic!("flag --{name} is missing its value"));
                    out.flags.insert(name.to_string(), value);
                }
            } else {
                out.positional.push(arg);
            }
        }
        out
    }

    /// The raw value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// The `i`-th positional argument, if present.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// `--name` parsed as `u64`, or `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics when the value is present but not a valid `u64`.
    pub fn u64_flag(&self, name: &str, default: u64) -> u64 {
        self.parsed(name).unwrap_or(default)
    }

    /// `--name` parsed as `usize`, or `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics when the value is present but not a valid `usize`.
    pub fn usize_flag(&self, name: &str, default: usize) -> usize {
        self.parsed(name).unwrap_or(default)
    }

    /// `--name` parsed as `f64`, or `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics when the value is present but not a valid `f64`.
    pub fn f64_flag(&self, name: &str, default: f64) -> f64 {
        self.parsed(name).unwrap_or(default)
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.get(name).map(|v| {
            v.parse().unwrap_or_else(|_| {
                panic!("flag --{name} has invalid value {v:?}");
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse_from(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_both_flag_styles_and_positionals() {
        let a = args(&["100", "--trials", "8", "--seed=42", "extra"]);
        assert_eq!(a.u64_flag("trials", 1), 8);
        assert_eq!(a.u64_flag("seed", 0), 42);
        assert_eq!(a.positional(0), Some("100"));
        assert_eq!(a.positional(1), Some("extra"));
        assert_eq!(a.positional(2), None);
    }

    #[test]
    fn defaults_apply_when_flags_absent() {
        let a = args(&[]);
        assert_eq!(a.u64_flag("trials", 16), 16);
        assert_eq!(a.usize_flag("threads", 4), 4);
        assert_eq!(a.get("seed"), None);
    }

    #[test]
    fn f64_flags_parse() {
        let a = args(&["--rate", "2.5"]);
        assert_eq!(a.f64_flag("rate", 1.0), 2.5);
        assert_eq!(a.f64_flag("missing", 0.5), 0.5);
    }

    #[test]
    #[should_panic(expected = "missing its value")]
    fn missing_value_panics() {
        args(&["--trials"]);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn malformed_value_panics() {
        args(&["--trials", "lots"]).u64_flag("trials", 1);
    }
}
