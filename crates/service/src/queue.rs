//! A bounded multi-producer/multi-consumer queue with explicit admission
//! control.
//!
//! This is the service's load-bearing wall: every request a
//! [`ComplianceService`](crate::service::ComplianceService) accepts sits
//! here between admission and a worker picking it up. The queue is
//! hand-rolled on `Mutex` + `Condvar` (no crates.io deps) and makes the
//! overload decision explicit instead of implicit:
//!
//! * [`AdmissionPolicy::Block`] — producers wait for space (closed-loop
//!   clients, batch replays).
//! * [`AdmissionPolicy::Reject`] — a full queue sheds the *new* item back
//!   to the producer (open-loop traffic that must stay low-latency).
//! * [`AdmissionPolicy::DropOldest`] — a full queue evicts the oldest
//!   queued item to admit the new one (freshness-biased workloads); the
//!   evicted item is handed back so its owner can still be answered.
//!
//! Closing the queue ([`BoundedQueue::close`]) wakes every waiter;
//! producers get their item back via [`PushError::Closed`], and consumers
//! drain whatever is already queued before [`BoundedQueue::pop_wait`]
//! starts returning `None`. Nothing already admitted is ever silently
//! dropped — that invariant is what lets the service promise exactly one
//! response per accepted request.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// What a producer wants done when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Wait until a consumer makes room (or the queue closes).
    #[default]
    Block,
    /// Refuse the new item immediately, handing it back to the producer.
    Reject,
    /// Evict the oldest queued item to make room for the new one.
    DropOldest,
}

impl AdmissionPolicy {
    /// Parses the CLI vocabulary: `block`, `reject`, `drop-oldest`.
    pub fn parse(word: &str) -> Option<AdmissionPolicy> {
        Some(match word {
            "block" => AdmissionPolicy::Block,
            "reject" => AdmissionPolicy::Reject,
            "drop-oldest" => AdmissionPolicy::DropOldest,
            _ => return None,
        })
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AdmissionPolicy::Block => "block",
            AdmissionPolicy::Reject => "reject",
            AdmissionPolicy::DropOldest => "drop-oldest",
        })
    }
}

/// Which admission-queue implementation a service should run on.
///
/// Both implement [`AdmissionQueue`] with identical semantics; the
/// difference is purely mechanical. `Lockfree` is the default — the
/// [`MpmcRing`](crate::mpmc::MpmcRing) claim-then-publish ring whose
/// producers do not serialize on a mutex. `Locked` keeps the original
/// `Mutex`+`Condvar` [`BoundedQueue`] available for differential
/// testing and as the reference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The lock-free bounded MPMC ring ([`crate::mpmc::MpmcRing`]).
    #[default]
    Lockfree,
    /// The `Mutex`+`Condvar` [`BoundedQueue`].
    Locked,
}

impl QueueKind {
    /// Parses the CLI vocabulary: `lockfree`, `locked`.
    pub fn parse(word: &str) -> Option<QueueKind> {
        Some(match word {
            "lockfree" => QueueKind::Lockfree,
            "locked" => QueueKind::Locked,
            _ => return None,
        })
    }
}

impl std::fmt::Display for QueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QueueKind::Lockfree => "lockfree",
            QueueKind::Locked => "locked",
        })
    }
}

/// The admission-queue interface the service is wired against: what
/// [`ComplianceService`](crate::service::ComplianceService) actually
/// needs from a queue, split out so the `Mutex`-based [`BoundedQueue`]
/// and the lock-free [`MpmcRing`](crate::mpmc::MpmcRing) are drop-in
/// interchangeable (and differentially testable against each other).
///
/// The contract, shared by every implementation:
///
/// * `offer` admits under an [`AdmissionPolicy`]; evicted victims (only
///   under `DropOldest`) are handed back so their owners can still be
///   answered. A lock-free implementation may evict more than one
///   victim when racing producers win the freed slot — hence `Vec`.
/// * `take_wait` blocks while the queue is empty and open, and returns
///   `None` only once the queue is closed *and* drained — nothing
///   admitted is ever silently dropped.
/// * `close` is idempotent, wakes every waiter, and leaves queued items
///   poppable.
pub trait AdmissionQueue<T>: Send + Sync {
    /// Pushes under `policy`; on success returns any evicted victims.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] once closed (any policy); [`PushError::Full`]
    /// at capacity under [`AdmissionPolicy::Reject`].
    fn offer(&self, item: T, policy: AdmissionPolicy) -> Result<Vec<T>, PushError<T>>;
    /// Pops the oldest item, waiting while the queue is empty and open;
    /// `None` only once closed and drained.
    fn take_wait(&self) -> Option<T>;
    /// Pops the oldest item if one is available, without waiting.
    fn try_take(&self) -> Option<T>;
    /// Closes the queue (idempotent): wakes waiters, stops admission,
    /// keeps queued items poppable.
    fn close(&self);
    /// Items currently queued (may be racy for lock-free queues).
    fn queued(&self) -> usize;
    /// The configured capacity.
    fn capacity(&self) -> usize;
}

impl<T: Send> AdmissionQueue<T> for BoundedQueue<T> {
    fn offer(&self, item: T, policy: AdmissionPolicy) -> Result<Vec<T>, PushError<T>> {
        self.push(item, policy)
            .map(|evicted| evicted.into_iter().collect())
    }

    fn take_wait(&self) -> Option<T> {
        self.pop_wait()
    }

    fn try_take(&self) -> Option<T> {
        self.try_pop()
    }

    fn close(&self) {
        BoundedQueue::close(self);
    }

    fn queued(&self) -> usize {
        self.len()
    }

    fn capacity(&self) -> usize {
        BoundedQueue::capacity(self)
    }
}

/// Why a push did not land, with the item handed back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (only under [`AdmissionPolicy::Reject`]).
    Full(T),
    /// The queue has been closed to new items.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the item that was not admitted.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

struct Inner<T> {
    buf: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue; see the [module docs](self) for the policy and
/// shutdown semantics.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped to at
    /// least one).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").buf.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }

    /// Pushes under `policy`. On success returns the item evicted to make
    /// room, if any (only under [`AdmissionPolicy::DropOldest`]).
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] once the queue is closed (any policy);
    /// [`PushError::Full`] at capacity under [`AdmissionPolicy::Reject`].
    pub fn push(&self, item: T, policy: AdmissionPolicy) -> Result<Option<T>, PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.buf.len() < self.capacity {
                inner.buf.push_back(item);
                self.not_empty.notify_one();
                return Ok(None);
            }
            match policy {
                AdmissionPolicy::Block => {
                    inner = self.not_full.wait(inner).expect("queue lock");
                }
                AdmissionPolicy::Reject => return Err(PushError::Full(item)),
                AdmissionPolicy::DropOldest => {
                    let evicted = inner.buf.pop_front().expect("full queue has a front");
                    inner.buf.push_back(item);
                    self.not_empty.notify_one();
                    return Ok(Some(evicted));
                }
            }
        }
    }

    /// Pops the oldest item, waiting while the queue is empty and open.
    /// Returns `None` only once the queue is closed *and* drained.
    pub fn pop_wait(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.buf.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Pops the oldest item if one is queued, without waiting.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        let item = inner.buf.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: no further pushes are admitted, every blocked
    /// producer and consumer is woken, and queued items remain poppable so
    /// consumers can drain them.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            assert!(q.push(i, AdmissionPolicy::Reject).unwrap().is_none());
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop_wait(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn reject_policy_hands_the_item_back_at_capacity() {
        let q = BoundedQueue::new(2);
        q.push(1, AdmissionPolicy::Reject).unwrap();
        q.push(2, AdmissionPolicy::Reject).unwrap();
        match q.push(3, AdmissionPolicy::Reject) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        // Queue contents are untouched by the rejected push.
        assert_eq!(q.pop_wait(), Some(1));
        assert_eq!(q.pop_wait(), Some(2));
    }

    #[test]
    fn drop_oldest_policy_evicts_the_front_at_capacity() {
        let q = BoundedQueue::new(2);
        q.push(1, AdmissionPolicy::DropOldest).unwrap();
        q.push(2, AdmissionPolicy::DropOldest).unwrap();
        let evicted = q.push(3, AdmissionPolicy::DropOldest).unwrap();
        assert_eq!(evicted, Some(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_wait(), Some(2));
        assert_eq!(q.pop_wait(), Some(3));
    }

    #[test]
    fn block_policy_waits_for_a_consumer() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1, AdmissionPolicy::Block).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2, AdmissionPolicy::Block).unwrap())
        };
        // The producer is parked on a full queue; popping unblocks it.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop_wait(), Some(1));
        producer.join().unwrap();
        assert_eq!(q.pop_wait(), Some(2));
    }

    #[test]
    fn close_wakes_blocked_producers_with_their_item() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        q.push(1, AdmissionPolicy::Block).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2, AdmissionPolicy::Block))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        match producer.join().unwrap() {
            Err(PushError::Closed(item)) => assert_eq!(item, 2),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_queued_items_then_returns_none() {
        let q = BoundedQueue::new(4);
        q.push(1, AdmissionPolicy::Block).unwrap();
        q.push(2, AdmissionPolicy::Block).unwrap();
        q.close();
        assert!(matches!(
            q.push(3, AdmissionPolicy::Block),
            Err(PushError::Closed(3))
        ));
        assert_eq!(q.pop_wait(), Some(1));
        assert_eq!(q.pop_wait(), Some(2));
        assert_eq!(q.pop_wait(), None);
        assert_eq!(q.pop_wait(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_wait())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn try_pop_never_waits() {
        let q = BoundedQueue::<u32>::new(2);
        assert_eq!(q.try_pop(), None);
        q.push(7, AdmissionPolicy::Block).unwrap();
        assert_eq!(q.try_pop(), Some(7));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(1, AdmissionPolicy::Reject).unwrap();
        assert!(matches!(
            q.push(2, AdmissionPolicy::Reject),
            Err(PushError::Full(2))
        ));
    }

    #[test]
    fn policy_vocabulary_round_trips() {
        for policy in [
            AdmissionPolicy::Block,
            AdmissionPolicy::Reject,
            AdmissionPolicy::DropOldest,
        ] {
            assert_eq!(AdmissionPolicy::parse(&policy.to_string()), Some(policy));
        }
        assert_eq!(AdmissionPolicy::parse("lifo"), None);
    }
}
