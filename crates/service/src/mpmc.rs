//! A lock-free bounded MPMC admission ring.
//!
//! This is the scalable successor to [`BoundedQueue`](crate::queue::BoundedQueue):
//! the same admission contract — [`AdmissionPolicy`] at capacity, close
//! with drain, nothing admitted is ever silently dropped — built on the
//! claim-then-publish per-slot sequencing protocol already proven in
//! `crates/obs/src/ring.rs`, instead of a single `Mutex` every producer
//! and worker serializes through.
//!
//! # Protocol
//!
//! Each slot carries an atomic sequence number. A producer *claims* a
//! position by CAS-advancing the enqueue cursor when the slot's
//! sequence says "free for this lap", writes the value, then
//! *publishes* by storing `pos + 1` into the sequence — exactly the
//! writing→published two-phase of the obs span ring, with the lap baked
//! into the (never-wrapping) 64-bit position. Consumers mirror it: claim
//! via the dequeue cursor when the sequence says "published", take the
//! value, then release the slot for the next lap (`pos + ring_size`).
//! The cursors are on separate cache lines; the hot path is one CAS plus
//! one release store per side, with no lock and no syscall.
//!
//! # Parked-waiter fallback
//!
//! Blocking behavior ([`AdmissionPolicy::Block`] producers, and
//! consumers in [`MpmcRing::pop_wait`]) cannot spin at these queue
//! depths, so both sides fall back to a `Mutex`+`Condvar` *parking lot*
//! that holds no queue state: the lock-free fast path never touches it,
//! and the slow path re-checks the ring under a registered parked count
//! before sleeping. Wakers take the lock only when the parked count is
//! nonzero, and sleepers use a bounded `wait_timeout` as a belt-and-
//! braces net, so a missed wakeup can cost milliseconds, never liveness.
//!
//! # Close without strays
//!
//! The race this design must not lose: a producer passes the closed
//! check, is preempted, the ring closes and consumers observe "closed +
//! empty" and exit — then the producer publishes into a ring nobody will
//! ever drain. The ring prevents it with an in-flight producer count:
//! producers register *before* reading the closed flag, and consumers
//! treat "closed and empty" as terminal only once the in-flight count is
//! zero (re-sweeping the ring after that observation). Every push is
//! therefore either handed back as [`PushError::Closed`] or popped by a
//! consumer — the exactly-one-response invariant upstream relies on it.

#![allow(unsafe_code)]

use crate::queue::{AdmissionPolicy, AdmissionQueue, PushError};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// How long a parked thread sleeps before re-checking the ring on its
/// own: the safety net that makes parking correct even if a wakeup is
/// lost, without putting a lock on the fast path.
const PARK_TIMEOUT: Duration = Duration::from_millis(5);

/// One ring slot: a sequence number gating claim/publish plus the
/// (conditionally initialized) value.
struct Slot<T> {
    /// `pos` → free for the producer claiming position `pos`;
    /// `pos + 1` → published, waiting for the consumer at `pos`;
    /// `pos + ring_size` → released, free for the next lap's producer.
    seq: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A cursor on its own cache line, so producers and consumers do not
/// false-share.
#[repr(align(64))]
struct Cursor(AtomicU64);

/// Waiter registry behind the parking-lot mutex. It carries no queue
/// state — only how many threads are asleep on each side.
#[derive(Default)]
struct ParkState;

/// A bounded lock-free MPMC queue with the same admission vocabulary as
/// [`BoundedQueue`](crate::queue::BoundedQueue). See the [module
/// docs](self) for the protocol.
pub struct MpmcRing<T> {
    slots: Box<[Slot<T>]>,
    mask: u64,
    /// The advertised bound, which may be below the (power-of-two) slot
    /// count; enforced against the dequeue cursor at claim time.
    capacity: usize,
    enqueue_pos: Cursor,
    dequeue_pos: Cursor,
    closed: AtomicBool,
    /// Producers that have registered for a push and not yet either
    /// published or handed the item back; consumers may not treat
    /// "closed + empty" as terminal while this is nonzero.
    producers_inflight: AtomicUsize,
    parked_producers: AtomicUsize,
    parked_consumers: AtomicUsize,
    park: Mutex<ParkState>,
    not_full: Condvar,
    not_empty: Condvar,
}

// SAFETY: the slot protocol hands each value from exactly one producer
// to exactly one consumer, with the Release publish / Acquire claim pair
// ordering the value write before the read; the ring is therefore safe
// to share whenever the element itself may move between threads.
unsafe impl<T: Send> Sync for MpmcRing<T> {}
unsafe impl<T: Send> Send for MpmcRing<T> {}

impl<T> std::fmt::Debug for MpmcRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpmcRing")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

impl<T> MpmcRing<T> {
    /// Creates a ring admitting at most `capacity` items (clamped to at
    /// least one). The slot array is the next power of two, but the
    /// advertised capacity is enforced exactly.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let ring_size = capacity.next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..ring_size)
            .map(|i| Slot {
                seq: AtomicU64::new(i as u64),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpmcRing {
            slots,
            mask: (ring_size - 1) as u64,
            capacity,
            enqueue_pos: Cursor(AtomicU64::new(0)),
            dequeue_pos: Cursor(AtomicU64::new(0)),
            closed: AtomicBool::new(false),
            producers_inflight: AtomicUsize::new(0),
            parked_producers: AtomicUsize::new(0),
            parked_consumers: AtomicUsize::new(0),
            park: Mutex::new(ParkState),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// The advertised capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy by nature; exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.dequeue_pos.0.load(Ordering::Relaxed);
        let head = self.enqueue_pos.0.load(Ordering::Relaxed);
        head.saturating_sub(tail) as usize
    }

    /// Whether nothing is queued (racy by nature; exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// The lock-free claim-then-publish enqueue. `Err(item)` means the
    /// ring was full (never that it was closed — callers gate on the
    /// closed flag themselves, under a registered in-flight count).
    ///
    /// Does **not** wake parked consumers: waking takes the park lock,
    /// and the Block-policy re-check calls this while already holding
    /// it (a non-reentrant `Mutex` would self-deadlock). Callers wake
    /// via [`wake_consumer`](Self::wake_consumer) once the lock is out
    /// of their hands.
    fn try_push_slot(&self, item: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // The slot is free for this lap. Enforce the advertised
                // bound against a fresh dequeue cursor: the cursor only
                // grows, so a stale read under-counts departures and the
                // check errs full, never over-admits.
                if pos - self.dequeue_pos.0.load(Ordering::Acquire) >= self.capacity as u64 {
                    return Err(item);
                }
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Claimed: write, then publish with Release so
                        // the consumer's Acquire claim sees the value.
                        unsafe { (*slot.value.get()).write(item) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq < pos {
                // The consumer of the previous lap has not released this
                // slot yet: the ring is full.
                return Err(item);
            } else {
                // Another producer claimed `pos`; chase the cursor.
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// The lock-free claim-then-take dequeue. `None` means nothing is
    /// published right now (a claimed-but-unpublished slot counts as
    /// not-yet-here).
    pub fn try_pop(&self) -> Option<T> {
        let item = self.try_pop_slot()?;
        self.wake_producer();
        Some(item)
    }

    /// [`try_pop`](Self::try_pop) minus the producer wakeup, for the
    /// parked re-check in [`pop_wait`](Self::pop_wait): waking re-locks
    /// `self.park`, which that caller already holds (see
    /// [`try_push_slot`](Self::try_push_slot)).
    fn try_pop_slot(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos + 1 {
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let item = unsafe { (*slot.value.get()).assume_init_read() };
                        // Release the slot for the producer one lap
                        // ahead.
                        slot.seq
                            .store(pos + self.slots.len() as u64, Ordering::Release);
                        return Some(item);
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq <= pos {
                return None;
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    fn wake_consumer(&self) {
        if self.parked_consumers.load(Ordering::SeqCst) > 0 {
            // Taking the lock orders this notify against a consumer that
            // is between registering and sleeping.
            drop(self.park.lock().expect("park lock"));
            self.not_empty.notify_one();
        }
    }

    fn wake_producer(&self) {
        if self.parked_producers.load(Ordering::SeqCst) > 0 {
            drop(self.park.lock().expect("park lock"));
            self.not_full.notify_one();
        }
    }

    /// Pushes under `policy`. On success returns the items evicted to
    /// make room (only under [`AdmissionPolicy::DropOldest`]; more than
    /// one victim is possible when racing producers win the freed slot).
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] once the ring is closed (any policy);
    /// [`PushError::Full`] at capacity under [`AdmissionPolicy::Reject`].
    pub fn push(&self, item: T, policy: AdmissionPolicy) -> Result<Vec<T>, PushError<T>> {
        // Register before reading the closed flag: a consumer may treat
        // "closed + empty" as terminal only when no registered producer
        // might still publish (see module docs).
        self.producers_inflight.fetch_add(1, Ordering::SeqCst);
        let result = self.push_registered(item, policy);
        if self.producers_inflight.fetch_sub(1, Ordering::SeqCst) == 1
            && self.closed.load(Ordering::SeqCst)
        {
            // Last registered producer out after close: wake consumers
            // so their terminal re-sweep runs against a settled ring.
            drop(self.park.lock().expect("park lock"));
            self.not_empty.notify_all();
        }
        result
    }

    fn push_registered(
        &self,
        mut item: T,
        policy: AdmissionPolicy,
    ) -> Result<Vec<T>, PushError<T>> {
        let mut evicted = Vec::new();
        loop {
            // Once a drop-oldest push holds a victim it is committed —
            // linearized before any concurrent close. That is safe: this
            // producer is still registered, so consumers cannot reach
            // their terminal state until it publishes, and the published
            // item is guaranteed to be drained. Without a victim the
            // push observes the close and hands the item back.
            if evicted.is_empty() && self.closed.load(Ordering::SeqCst) {
                return Err(PushError::Closed(item));
            }
            match self.try_push_slot(item) {
                Ok(()) => {
                    self.wake_consumer();
                    return Ok(evicted);
                }
                Err(back) => item = back,
            }
            match policy {
                AdmissionPolicy::Reject => {
                    debug_assert!(evicted.is_empty());
                    return Err(PushError::Full(item));
                }
                AdmissionPolicy::DropOldest => {
                    if let Some(victim) = self.try_pop() {
                        evicted.push(victim);
                    } else {
                        // Full yet nothing published: a transient claim/
                        // publish window on one side or the other.
                        std::hint::spin_loop();
                    }
                }
                AdmissionPolicy::Block => {
                    let guard = self.park.lock().expect("park lock");
                    self.parked_producers.fetch_add(1, Ordering::SeqCst);
                    // Re-check while registered: a consumer that freed a
                    // slot before seeing our parked count would not have
                    // notified. The wakeup must wait until the park lock
                    // is released — waking re-locks it.
                    match self.try_push_slot(item) {
                        Ok(()) => {
                            self.parked_producers.fetch_sub(1, Ordering::SeqCst);
                            drop(guard);
                            self.wake_consumer();
                            return Ok(evicted);
                        }
                        Err(back) => item = back,
                    }
                    if self.closed.load(Ordering::SeqCst) {
                        self.parked_producers.fetch_sub(1, Ordering::SeqCst);
                        continue; // closed handling at the loop head
                    }
                    let (guard, _timeout) = self
                        .not_full
                        .wait_timeout(guard, PARK_TIMEOUT)
                        .expect("park lock");
                    self.parked_producers.fetch_sub(1, Ordering::SeqCst);
                    drop(guard);
                }
            }
        }
    }

    /// Pops the oldest item, waiting while the ring is empty and open.
    /// Returns `None` only once the ring is closed, no registered
    /// producer can still publish, *and* a final sweep found nothing.
    pub fn pop_wait(&self) -> Option<T> {
        loop {
            if let Some(item) = self.try_pop() {
                return Some(item);
            }
            let guard = self.park.lock().expect("park lock");
            self.parked_consumers.fetch_add(1, Ordering::SeqCst);
            // Re-check while registered (see push_registered). The slot
            // variant defers the producer wakeup past the park lock we
            // hold — waking re-locks it.
            if let Some(item) = self.try_pop_slot() {
                self.parked_consumers.fetch_sub(1, Ordering::SeqCst);
                drop(guard);
                self.wake_producer();
                return Some(item);
            }
            if self.closed.load(Ordering::SeqCst)
                && self.producers_inflight.load(Ordering::SeqCst) == 0
            {
                self.parked_consumers.fetch_sub(1, Ordering::SeqCst);
                drop(guard);
                // Terminal sweep: every registered producer has either
                // published (visible after the SeqCst count read) or
                // handed its item back, so one more pop settles it.
                return self.try_pop();
            }
            let (guard, _timeout) = self
                .not_empty
                .wait_timeout(guard, PARK_TIMEOUT)
                .expect("park lock");
            self.parked_consumers.fetch_sub(1, Ordering::SeqCst);
            drop(guard);
        }
    }

    /// Closes the ring: later pushes fail with [`PushError::Closed`],
    /// every parked thread is woken, and queued items remain poppable so
    /// consumers drain them. Idempotent.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        drop(self.park.lock().expect("park lock"));
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

impl<T> Drop for MpmcRing<T> {
    fn drop(&mut self) {
        // Owning the ring exclusively here; drop whatever was published
        // and never popped.
        while self.try_pop().is_some() {}
    }
}

impl<T: Send> AdmissionQueue<T> for MpmcRing<T> {
    fn offer(&self, item: T, policy: AdmissionPolicy) -> Result<Vec<T>, PushError<T>> {
        MpmcRing::push(self, item, policy)
    }

    fn take_wait(&self) -> Option<T> {
        MpmcRing::pop_wait(self)
    }

    fn try_take(&self) -> Option<T> {
        MpmcRing::try_pop(self)
    }

    fn close(&self) {
        MpmcRing::close(self);
    }

    fn queued(&self) -> usize {
        self.len()
    }

    fn capacity(&self) -> usize {
        MpmcRing::capacity(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_within_capacity() {
        let q = MpmcRing::new(4);
        for i in 0..4 {
            assert!(q.push(i, AdmissionPolicy::Reject).unwrap().is_empty());
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop_wait(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_is_enforced_exactly_even_when_not_a_power_of_two() {
        let q = MpmcRing::new(3);
        assert_eq!(q.capacity(), 3);
        for i in 0..3 {
            q.push(i, AdmissionPolicy::Reject).unwrap();
        }
        assert!(matches!(
            q.push(9, AdmissionPolicy::Reject),
            Err(PushError::Full(9))
        ));
        assert_eq!(q.try_pop(), Some(0));
        q.push(9, AdmissionPolicy::Reject).unwrap();
    }

    #[test]
    fn drop_oldest_hands_back_the_victim() {
        let q = MpmcRing::new(2);
        q.push(1, AdmissionPolicy::DropOldest).unwrap();
        q.push(2, AdmissionPolicy::DropOldest).unwrap();
        let evicted = q.push(3, AdmissionPolicy::DropOldest).unwrap();
        assert_eq!(evicted, vec![1]);
        assert_eq!(q.pop_wait(), Some(2));
        assert_eq!(q.pop_wait(), Some(3));
    }

    #[test]
    fn block_policy_waits_for_a_consumer() {
        let q = Arc::new(MpmcRing::new(1));
        q.push(1, AdmissionPolicy::Block).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2, AdmissionPolicy::Block).unwrap())
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop_wait(), Some(1));
        producer.join().unwrap();
        assert_eq!(q.pop_wait(), Some(2));
    }

    #[test]
    fn close_wakes_blocked_producers_with_their_item() {
        let q = Arc::new(MpmcRing::<u32>::new(1));
        q.push(1, AdmissionPolicy::Block).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2, AdmissionPolicy::Block))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        match producer.join().unwrap() {
            Err(PushError::Closed(item)) => assert_eq!(item, 2),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_queued_items_then_returns_none() {
        let q = MpmcRing::new(4);
        q.push(1, AdmissionPolicy::Block).unwrap();
        q.push(2, AdmissionPolicy::Block).unwrap();
        q.close();
        assert!(matches!(
            q.push(3, AdmissionPolicy::Block),
            Err(PushError::Closed(3))
        ));
        assert_eq!(q.pop_wait(), Some(1));
        assert_eq!(q.pop_wait(), Some(2));
        assert_eq!(q.pop_wait(), None);
        assert_eq!(q.pop_wait(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(MpmcRing::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_wait())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn values_survive_many_laps() {
        let q = MpmcRing::new(2);
        for lap in 0u64..1000 {
            q.push(lap * 2, AdmissionPolicy::Reject).unwrap();
            q.push(lap * 2 + 1, AdmissionPolicy::Reject).unwrap();
            assert_eq!(q.pop_wait(), Some(lap * 2));
            assert_eq!(q.pop_wait(), Some(lap * 2 + 1));
        }
    }

    /// Regression: the parked re-checks (Block push, `pop_wait`) run
    /// while holding the park mutex; on success they must not wake the
    /// opposite side through that same (non-reentrant) mutex. A
    /// capacity-1 ring keeps both sides parked essentially always, so
    /// the old self-deadlock fired within milliseconds here.
    #[test]
    fn tiny_ring_with_parked_waiters_on_both_sides_never_deadlocks() {
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER_PRODUCER: usize = 2_000;
        let q = Arc::new(MpmcRing::new(1));
        let done = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let deadline = std::time::Instant::now() + Duration::from_secs(60);
                while !done.load(Ordering::SeqCst) {
                    if std::time::Instant::now() >= deadline {
                        // A hung transfer means the park/wake protocol
                        // deadlocked; abort so the harness reports a
                        // failure instead of hanging until its own
                        // timeout.
                        eprintln!("mpmc park/wake deadlocked");
                        std::process::abort();
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            })
        };
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut popped = 0usize;
                    while q.pop_wait().is_some() {
                        popped += 1;
                    }
                    popped
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push(p * PER_PRODUCER + i, AdmissionPolicy::Block)
                            .unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let popped: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        done.store(true, Ordering::SeqCst);
        watchdog.join().unwrap();
        assert_eq!(popped, PRODUCERS * PER_PRODUCER);
    }

    #[test]
    fn mpmc_transfer_is_lossless_and_duplicate_free() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 5_000;
        let q = Arc::new(MpmcRing::new(64));
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while let Some(v) = q.pop_wait() {
                        seen.push(v);
                    }
                    seen
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push(p * PER_PRODUCER + i, AdmissionPolicy::Block)
                            .unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expect, "every pushed value popped exactly once");
    }
}
