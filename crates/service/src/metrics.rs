//! Live service observability: atomic counters and fixed-bucket latency
//! histograms with quantile extraction and a JSON snapshot emitter.
//!
//! Everything here is lock-free on the record path — a handful of
//! `Relaxed` atomic ops per request — so metrics never become the
//! bottleneck they are supposed to observe. Histograms use log-linear
//! buckets (8 linear sub-buckets per power-of-two octave of
//! microseconds), giving a bounded ≤ 12.5 % relative error on reported
//! quantiles with a fixed 256-slot table — the same shape HdrHistogram
//! uses, reduced to what a latency report needs.
//!
//! [`MetricsSnapshot::to_json`] emits the snapshot as a JSON object
//! (plain text, std-only) that parses under the same minimal JSON model
//! `BENCH_results.json` uses, so the `service_load` bench driver can
//! merge live service metrics straight into the perf-trajectory file.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per octave (8 → ≤ 12.5 % quantile error).
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count; the top bucket absorbs everything ≥ ~4.7 hours.
const BUCKETS: usize = 256;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Maps a microsecond value to its log-linear bucket index.
fn bucket_of(us: u64) -> usize {
    if us < SUBS as u64 {
        return us as usize;
    }
    let msb = 63 - us.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((us >> shift) & (SUBS as u64 - 1)) as usize;
    let idx = (msb - SUB_BITS + 1) as usize * SUBS + sub;
    idx.min(BUCKETS - 1)
}

/// The largest microsecond value a bucket admits (its reported bound).
fn bucket_bound(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let octave = (idx / SUBS) as u32;
    let sub = (idx % SUBS) as u64;
    ((SUBS as u64 + sub + 1) << (octave - 1)) - 1
}

/// A fixed-bucket latency histogram; thread-safe, lock-free.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0u64; BUCKETS].map(AtomicU64::new)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `p`-quantile (`0.0..=1.0`) in microseconds, reported as the
    /// bound of the bucket holding the target sample (≤ 12.5 % high).
    /// Returns 0 for an empty histogram.
    pub fn quantile_us(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_bound(idx);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// A point-in-time summary (count, mean, p50/p95/p99, max).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let sum = self.sum_us.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50_us: self.quantile_us(0.50),
            p95_us: self.quantile_us(0.95),
            p99_us: self.quantile_us(0.99),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time histogram summary, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median (bucket-bound estimate).
    pub p50_us: u64,
    /// 95th percentile (bucket-bound estimate).
    pub p95_us: u64,
    /// 99th percentile (bucket-bound estimate).
    pub p99_us: u64,
    /// Largest sample seen.
    pub max_us: u64,
}

impl HistogramSnapshot {
    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\": {}, \"mean_us\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            self.count, self.mean_us, self.p50_us, self.p95_us, self.p99_us, self.max_us
        );
    }
}

impl std::fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.0}us p50={}us p95={}us p99={}us max={}us",
            self.count, self.mean_us, self.p50_us, self.p95_us, self.p99_us, self.max_us
        )
    }
}

/// The service's full metric set; shared across workers and producers.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Submission attempts (accepted + rejected).
    pub submitted: Counter,
    /// Requests admitted to the queue.
    pub accepted: Counter,
    /// Requests refused at admission (Reject policy at capacity).
    pub rejected: Counter,
    /// Accepted requests evicted by DropOldest before a worker saw them.
    pub evicted: Counter,
    /// Requests answered with a completed assessment.
    pub completed: Counter,
    /// Requests answered `TimedOut` (deadline passed while queued).
    pub timed_out: Counter,
    /// Time from admission to a worker dequeuing the request.
    pub queue_wait: Histogram,
    /// Engine/cache time per completed request.
    pub engine: Histogram,
    /// Time from admission to the response being posted.
    pub end_to_end: Histogram,
}

impl ServiceMetrics {
    /// Snapshots every counter and histogram, tagging the current queue
    /// depth.
    pub fn snapshot(&self, queue_depth: usize) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.get(),
            accepted: self.accepted.get(),
            rejected: self.rejected.get(),
            evicted: self.evicted.get(),
            completed: self.completed.get(),
            timed_out: self.timed_out.get(),
            queue_depth: queue_depth as u64,
            queue_wait: self.queue_wait.snapshot(),
            engine: self.engine.snapshot(),
            end_to_end: self.end_to_end.snapshot(),
        }
    }
}

/// A point-in-time copy of every service metric.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Submission attempts (accepted + rejected).
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Accepted requests evicted by DropOldest.
    pub evicted: u64,
    /// Requests answered with a completed assessment.
    pub completed: u64,
    /// Requests answered `TimedOut`.
    pub timed_out: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// Enqueue-to-dequeue wait.
    pub queue_wait: HistogramSnapshot,
    /// Engine/cache time per completed request.
    pub engine: HistogramSnapshot,
    /// Admission-to-response latency.
    pub end_to_end: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Responses posted (completed + timed out + evicted). Equals
    /// `accepted` once the service has drained.
    pub fn responses(&self) -> u64 {
        self.completed + self.timed_out + self.evicted
    }

    /// Fraction of submissions shed at admission, in `0.0..=1.0`.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.rejected as f64 / self.submitted as f64
        }
    }

    /// Serializes as one JSON object (single line). The output parses
    /// under the minimal JSON model `BENCH_results.json` uses, so bench
    /// drivers can merge it directly.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"submitted\": {}, \"accepted\": {}, \"rejected\": {}, \"evicted\": {}, \
             \"completed\": {}, \"timed_out\": {}, \"queue_depth\": {}, \"shed_rate\": {:.4}, ",
            self.submitted,
            self.accepted,
            self.rejected,
            self.evicted,
            self.completed,
            self.timed_out,
            self.queue_depth,
            self.shed_rate()
        );
        out.push_str("\"queue_wait_us\": ");
        self.queue_wait.write_json(&mut out);
        out.push_str(", \"engine_us\": ");
        self.engine.write_json(&mut out);
        out.push_str(", \"end_to_end_us\": ");
        self.end_to_end.write_json(&mut out);
        out.push('}');
        out
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "submitted={} accepted={} rejected={} evicted={} completed={} timed_out={} depth={}",
            self.submitted,
            self.accepted,
            self.rejected,
            self.evicted,
            self.completed,
            self.timed_out,
            self.queue_depth
        )?;
        writeln!(f, "  queue wait:  {}", self.queue_wait)?;
        writeln!(f, "  engine:      {}", self.engine)?;
        write!(f, "  end to end:  {}", self.end_to_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_exhaustive() {
        let mut last = 0;
        for us in 0..100_000u64 {
            let idx = bucket_of(us);
            assert!(idx >= last, "bucket index regressed at {us}");
            assert!(us <= bucket_bound(idx), "bound below value at {us}");
            last = idx;
        }
        // The top bucket absorbs arbitrarily large values.
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bounds_are_tight_for_small_values() {
        // Sub-octave buckets are exact below 8 µs.
        for us in 0..8u64 {
            assert_eq!(bucket_bound(bucket_of(us)), us);
        }
        // Above that the bound is within 12.5 % of the value.
        for us in [100u64, 1_000, 10_000, 1_000_000] {
            let bound = bucket_bound(bucket_of(us));
            assert!(bound >= us);
            assert!((bound - us) as f64 <= us as f64 * 0.125 + 1.0);
        }
    }

    #[test]
    fn quantiles_track_a_uniform_stream() {
        let h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        let within =
            |got: u64, want: u64| got >= want && (got - want) as f64 <= want as f64 * 0.125 + 1.0;
        assert!(within(snap.p50_us, 500), "p50 = {}", snap.p50_us);
        assert!(within(snap.p95_us, 950), "p95 = {}", snap.p95_us);
        assert!(within(snap.p99_us, 990), "p99 = {}", snap.p99_us);
        assert_eq!(snap.max_us, 1000);
        assert!((snap.mean_us - 500.5).abs() < 0.6);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap, HistogramSnapshot::default());
    }

    #[test]
    fn quantile_of_a_point_mass_is_its_bucket_bound() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(Duration::from_micros(64));
        }
        for p in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(p), bucket_bound(bucket_of(64)));
        }
    }

    #[test]
    fn snapshot_accounting_identities() {
        let m = ServiceMetrics::default();
        m.submitted.add(10);
        m.accepted.add(8);
        m.rejected.add(2);
        m.completed.add(6);
        m.timed_out.inc();
        m.evicted.inc();
        let snap = m.snapshot(0);
        assert_eq!(snap.responses(), 8);
        assert_eq!(snap.responses(), snap.accepted);
        assert!((snap.shed_rate() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn json_emitter_is_well_formed() {
        let m = ServiceMetrics::default();
        m.submitted.inc();
        m.accepted.inc();
        m.completed.inc();
        m.end_to_end.record(Duration::from_micros(120));
        let text = m.snapshot(3).to_json();
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains("\"accepted\": 1"));
        assert!(text.contains("\"queue_depth\": 3"));
        assert!(text.contains("\"end_to_end_us\": {\"count\": 1"));
        assert!(!text.contains('\n'));
        // Balanced braces — cheap structural sanity without a parser
        // (the bench crate cross-checks real parsability).
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close);
    }
}
