//! Close-race accounting for both admission queues.
//!
//! The existing `queue_accounting` suite closes the queue *after* the
//! producers finish. This file races `close()` against producers still
//! mid-push — the exact window where a lock-free ring can strand an
//! item (published after the closed flag went up, never drained) or
//! double-account one (evicted by a committed `DropOldest` push *and*
//! handed back as `Closed`). The invariant, for the [`MpmcRing`] and
//! the legacy [`BoundedQueue`] alike, seen through the shared
//! [`AdmissionQueue`] trait:
//!
//! ```text
//! accepted (popped) + dropped (evicted) + rejected (handed back) == offered
//! ```
//!
//! with every item accounted exactly once. This is the queue-level
//! shadow of the service's exactly-one-response promise during
//! shutdown.

use service::queue::{AdmissionPolicy, AdmissionQueue, BoundedQueue, PushError};
use service::MpmcRing;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

const POPPED: u8 = 1;
const EVICTED: u8 = 2;
const HANDED_BACK: u8 = 3;

struct Ledger {
    fate: Vec<AtomicU8>,
}

impl Ledger {
    fn new(total: u64) -> Arc<Ledger> {
        Arc::new(Ledger {
            fate: (0..total).map(|_| AtomicU8::new(0)).collect(),
        })
    }

    fn record(&self, id: u64, what: u8) {
        let prev = self.fate[id as usize].swap(what, Ordering::SeqCst);
        assert_eq!(
            prev, 0,
            "item {id} accounted twice (first {prev}, then {what})"
        );
    }

    fn count(&self, what: u8) -> u64 {
        self.fate
            .iter()
            .filter(|f| f.load(Ordering::SeqCst) == what)
            .count() as u64
    }

    fn unaccounted(&self) -> Vec<u64> {
        self.fate
            .iter()
            .enumerate()
            .filter(|(_, f)| f.load(Ordering::SeqCst) == 0)
            .map(|(i, _)| i as u64)
            .collect()
    }
}

/// Accepted/dropped/rejected/offered after racing producers, consumers,
/// and a mid-traffic `close()` on `queue`.
fn close_race(queue: Arc<dyn AdmissionQueue<u64>>, policy: AdmissionPolicy) -> (u64, u64, u64) {
    const PRODUCERS: u64 = 4;
    const CONSUMERS: usize = 2;
    const PER_PRODUCER: u64 = 400;
    let total = PRODUCERS * PER_PRODUCER;
    let ledger = Ledger::new(total);
    // Counts offers as they start, so the closer can land `close()`
    // deterministically in the middle of the blast instead of hoping a
    // sleep lines up with fast, non-blocking producers.
    let offered = Arc::new(AtomicU64::new(0));
    // Raised by the closer *after* `close()` returns. Producer 0 parks
    // at its halfway point until this flies, guaranteeing post-close
    // offers exist; the other producers race the close unconstrained.
    let closed_flag = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let ledger = Arc::clone(&ledger);
                scope.spawn(move || {
                    while let Some(id) = queue.take_wait() {
                        ledger.record(id, POPPED);
                        // Slow consumption saturates the queue so
                        // DropOldest actually evicts and Reject actually
                        // rejects while the close lands.
                        std::thread::sleep(Duration::from_micros(10));
                    }
                    // take_wait returned None: closed AND drained. A
                    // straggler here would be an item the close stranded.
                    assert_eq!(queue.try_take(), None, "item left behind after close");
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let queue = Arc::clone(&queue);
                let ledger = Arc::clone(&ledger);
                let offered = Arc::clone(&offered);
                let closed_flag = Arc::clone(&closed_flag);
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        if p == 0 && i == PER_PRODUCER / 2 {
                            while !closed_flag.load(Ordering::SeqCst) {
                                std::hint::spin_loop();
                            }
                        }
                        let id = p * PER_PRODUCER + i;
                        offered.fetch_add(1, Ordering::SeqCst);
                        match queue.offer(id, policy) {
                            Ok(victims) => {
                                for victim in victims {
                                    ledger.record(victim, EVICTED);
                                }
                            }
                            Err(PushError::Full(item) | PushError::Closed(item)) => {
                                ledger.record(item, HANDED_BACK);
                            }
                        }
                    }
                })
            })
            .collect();
        // Land the close once a quarter of the offers have started —
        // mid-blast, whatever the producers' pace (producer 0 holds its
        // second half back until the close has landed).
        while offered.load(Ordering::SeqCst) < total / 4 {
            std::hint::spin_loop();
        }
        queue.close();
        closed_flag.store(true, Ordering::SeqCst);
        for producer in producers {
            producer.join().unwrap();
        }
        for consumer in consumers {
            consumer.join().unwrap();
        }
    });

    let unaccounted = ledger.unaccounted();
    assert!(
        unaccounted.is_empty(),
        "{} item(s) lost across the close race: {:?}",
        unaccounted.len(),
        &unaccounted[..unaccounted.len().min(10)]
    );
    let (accepted, dropped, rejected) = (
        ledger.count(POPPED),
        ledger.count(EVICTED),
        ledger.count(HANDED_BACK),
    );
    assert_eq!(
        accepted + dropped + rejected,
        total,
        "accepted + dropped + rejected != offered"
    );
    (accepted, dropped, rejected)
}

fn ring(capacity: usize) -> Arc<dyn AdmissionQueue<u64>> {
    Arc::new(MpmcRing::new(capacity))
}

fn legacy(capacity: usize) -> Arc<dyn AdmissionQueue<u64>> {
    Arc::new(BoundedQueue::new(capacity))
}

#[test]
fn mpmc_ring_drop_oldest_close_race_accounts_for_every_item() {
    let (accepted, dropped, rejected) = close_race(ring(4), AdmissionPolicy::DropOldest);
    assert!(accepted > 0, "nothing was consumed");
    assert!(dropped > 0, "saturation produced no evictions");
    assert!(rejected > 0, "no push observed the close");
}

#[test]
fn legacy_queue_drop_oldest_close_race_accounts_for_every_item() {
    let (accepted, dropped, rejected) = close_race(legacy(4), AdmissionPolicy::DropOldest);
    assert!(accepted > 0, "nothing was consumed");
    assert!(dropped > 0, "saturation produced no evictions");
    assert!(rejected > 0, "no push observed the close");
}

#[test]
fn mpmc_ring_reject_close_race_accounts_for_every_item() {
    let (accepted, dropped, rejected) = close_race(ring(4), AdmissionPolicy::Reject);
    assert!(accepted > 0, "nothing was consumed");
    assert_eq!(dropped, 0, "reject must never evict");
    assert!(rejected > 0, "saturation produced no rejections");
}

#[test]
fn legacy_queue_reject_close_race_accounts_for_every_item() {
    let (accepted, dropped, rejected) = close_race(legacy(4), AdmissionPolicy::Reject);
    assert!(accepted > 0, "nothing was consumed");
    assert_eq!(dropped, 0, "reject must never evict");
    assert!(rejected > 0, "saturation produced no rejections");
}

#[test]
fn mpmc_ring_block_close_race_accounts_for_every_item() {
    let (accepted, dropped, rejected) = close_race(ring(4), AdmissionPolicy::Block);
    assert!(accepted > 0, "nothing was consumed");
    assert_eq!(dropped, 0, "block must never evict");
    // Producers parked at the close are handed their item back.
    let _ = rejected;
}

#[test]
fn legacy_queue_block_close_race_accounts_for_every_item() {
    let (accepted, dropped, _) = close_race(legacy(4), AdmissionPolicy::Block);
    assert!(accepted > 0, "nothing was consumed");
    assert_eq!(dropped, 0, "block must never evict");
}
