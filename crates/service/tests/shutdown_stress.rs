//! Stress tests: producers and consumers racing shutdown.
//!
//! The service's headline invariant is that every *accepted* request
//! receives exactly one response — completed, timed out, or shed — even
//! when admission closes mid-stream. These tests hammer that invariant:
//! many short runs (each a fresh service, racing producers, and a
//! shutdown fired at an arbitrary point) rather than one long run, so
//! the close lands at a different phase of the pipeline every time.
//!
//! Double-fulfilment is structurally impossible (the response slot
//! panics on a second write, which would fail the run), so the checks
//! here focus on *lost* responses, accounting identities, and deadlock
//! freedom (the test completing at all).

use forensic_law::scenarios::table1;
use service::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const RUNS: usize = 120;
const PRODUCERS: usize = 3;
const PER_PRODUCER: usize = 25;

/// One racy run: producers submit while the main thread closes admission
/// at a phase that varies with `run`. Returns (accepted, responses by
/// kind) — the caller checks the books balance.
fn racy_run(run: usize, policy: AdmissionPolicy) -> (u64, u64, u64, u64) {
    let actions: Vec<_> = table1().iter().map(|s| s.action().clone()).collect();
    let srv = ComplianceService::start(ServiceConfig {
        workers: 2,
        capacity: 8,
        policy,
        // A tight deadline on some runs so TimedOut responses appear in
        // the mix; generous on others so Completed dominates.
        default_deadline: Some(Duration::from_micros(if run.is_multiple_of(3) {
            50
        } else {
            50_000
        })),
        engine_floor: Duration::ZERO,
        ..ServiceConfig::default()
    });

    let completed = AtomicU64::new(0);
    let timed_out = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let accepted = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let srv = &srv;
            let actions = &actions;
            let (completed, timed_out, shed, accepted) = (&completed, &timed_out, &shed, &accepted);
            scope.spawn(move || {
                let mut tickets = Vec::new();
                for i in 0..PER_PRODUCER {
                    let action = actions[(p * PER_PRODUCER + i) % actions.len()].clone();
                    match srv.submit(action) {
                        Ok(ticket) => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                            tickets.push(ticket);
                        }
                        // Shed or raced with close — either way, no
                        // ticket exists and no response is owed.
                        Err(SubmitError::Overloaded) => {}
                        Err(SubmitError::ShuttingDown) => break,
                    }
                }
                // Every ticket must resolve exactly once; `wait` consumes
                // the ticket, so a second wait cannot even be written.
                for ticket in tickets {
                    match ticket.wait().outcome {
                        Outcome::Completed(_) => completed.fetch_add(1, Ordering::Relaxed),
                        Outcome::TimedOut => timed_out.fetch_add(1, Ordering::Relaxed),
                        Outcome::Shed => shed.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }

        // Vary when the close lands relative to the producers: sometimes
        // immediately, sometimes mid-stream, sometimes after they finish.
        if run % 4 != 3 {
            std::thread::sleep(Duration::from_micros((run as u64 % 7) * 120));
            srv.close();
        }
    });

    let finals = srv.shutdown();
    assert_eq!(
        finals.accepted,
        accepted.load(Ordering::Relaxed),
        "service and producers disagree on admissions"
    );
    (
        accepted.load(Ordering::Relaxed),
        completed.load(Ordering::Relaxed),
        timed_out.load(Ordering::Relaxed),
        shed.load(Ordering::Relaxed),
    )
}

/// 100+ racy shutdowns under each policy: no deadlock (the loop
/// finishes), no lost responses, and the accounting identity
/// `accepted == completed + timed_out + shed` holds every single run.
#[test]
fn every_accepted_request_gets_exactly_one_response_across_racy_shutdowns() {
    for policy in [
        AdmissionPolicy::Block,
        AdmissionPolicy::Reject,
        AdmissionPolicy::DropOldest,
    ] {
        let mut saw_accepts = false;
        for run in 0..RUNS {
            let (accepted, completed, timed_out, shed) = racy_run(run, policy);
            assert_eq!(
                accepted,
                completed + timed_out + shed,
                "{policy}: run {run} lost a response"
            );
            saw_accepts |= accepted > 0;
            if policy != AdmissionPolicy::DropOldest {
                assert_eq!(shed, 0, "{policy} must never shed accepted requests");
            }
        }
        assert!(saw_accepts, "{policy}: stress never admitted anything");
    }
}

/// Shutdown with a completely idle service returns immediately with
/// clean books — the degenerate race.
#[test]
fn idle_shutdown_is_clean() {
    for _ in 0..100 {
        let srv = ComplianceService::start(ServiceConfig {
            workers: 4,
            capacity: 4,
            ..ServiceConfig::default()
        });
        let finals = srv.shutdown();
        assert_eq!(finals.accepted, 0);
        assert_eq!(finals.responses(), 0);
    }
}

/// A service dropped without an explicit shutdown still answers
/// everything it accepted (the Drop impl drains).
#[test]
fn dropping_the_service_still_answers_accepted_requests() {
    let actions: Vec<_> = table1().iter().map(|s| s.action().clone()).collect();
    for _ in 0..100 {
        let tickets: Vec<Ticket> = {
            let srv = ComplianceService::start(ServiceConfig {
                workers: 2,
                capacity: 16,
                ..ServiceConfig::default()
            });
            actions
                .iter()
                .take(10)
                .map(|a| srv.submit(a.clone()).expect("under capacity"))
                .collect()
            // srv dropped here, before any ticket is waited on.
        };
        for ticket in tickets {
            assert!(matches!(ticket.wait().outcome, Outcome::Completed(_)));
        }
    }
}
