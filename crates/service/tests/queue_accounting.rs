//! Exactly-one-owner accounting at the queue boundary.
//!
//! The service's exactly-one-response promise rests on a lower-level
//! invariant in [`BoundedQueue`]: every item successfully pushed is
//! handed to exactly one party — a consumer (popped), the evicting
//! producer (`DropOldest` hands the victim back), or nobody because the
//! push itself returned the item (`Full`/`Closed`). A dropped request is
//! *returned*, never silently lost, and nothing is ever seen twice.
//!
//! The service-level stress test covers the end-to-end promise; these
//! tests pin the accounting at the queue itself, so a future queue
//! change that leaks an evicted item fails here with a precise message
//! instead of as a hung ticket three layers up.

use service::queue::{AdmissionPolicy, BoundedQueue, PushError};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How an item left the queue's custody.
const POPPED: u8 = 1;
const EVICTED: u8 = 2;
const HANDED_BACK: u8 = 3; // push returned it: Full or Closed

struct Ledger {
    fate: Vec<AtomicU8>,
}

impl Ledger {
    fn new(total: u64) -> Arc<Ledger> {
        Arc::new(Ledger {
            fate: (0..total).map(|_| AtomicU8::new(0)).collect(),
        })
    }

    /// Records the item's fate; a second record for the same item is the
    /// bug this file exists to catch.
    fn record(&self, id: u64, what: u8) {
        let prev = self.fate[id as usize].swap(what, Ordering::SeqCst);
        assert_eq!(
            prev, 0,
            "item {id} accounted twice (first {prev}, then {what})"
        );
    }

    fn count(&self, what: u8) -> u64 {
        self.fate
            .iter()
            .filter(|f| f.load(Ordering::SeqCst) == what)
            .count() as u64
    }

    fn unaccounted(&self) -> Vec<u64> {
        self.fate
            .iter()
            .enumerate()
            .filter(|(_, f)| f.load(Ordering::SeqCst) == 0)
            .map(|(i, _)| i as u64)
            .collect()
    }
}

/// Deterministic single-threaded accounting: fill the queue, push
/// `capacity` more items under `drop-oldest`, and check each push hands
/// back exactly the item the FIFO discipline says it must.
#[test]
fn drop_oldest_returns_exactly_the_displaced_item() {
    let capacity = 8u64;
    let q = BoundedQueue::new(capacity as usize);
    for id in 0..capacity {
        assert!(q.push(id, AdmissionPolicy::DropOldest).unwrap().is_none());
    }
    for id in capacity..2 * capacity {
        let evicted = q
            .push(id, AdmissionPolicy::DropOldest)
            .unwrap()
            .expect("a full queue must hand the displaced item back");
        assert_eq!(evicted, id - capacity, "FIFO eviction order broken");
    }
    // What remains is precisely the second wave, in order.
    for id in capacity..2 * capacity {
        assert_eq!(q.try_pop(), Some(id));
    }
    assert!(q.is_empty());
}

/// Racy stress: producers outrun a deliberately slow consumer so the
/// queue saturates and evicts, then the queue closes mid-traffic. Every
/// item must end up popped, evicted-and-returned, or handed back by the
/// failed push — each exactly once.
fn stress(policy: AdmissionPolicy) -> (u64, u64, u64, u64) {
    const PRODUCERS: u64 = 4;
    const PER_PRODUCER: u64 = 500;
    let total = PRODUCERS * PER_PRODUCER;
    let q = Arc::new(BoundedQueue::new(4));
    let ledger = Ledger::new(total);

    std::thread::scope(|scope| {
        let consumer = {
            let q = Arc::clone(&q);
            let ledger = Arc::clone(&ledger);
            scope.spawn(move || {
                while let Some(id) = q.pop_wait() {
                    ledger.record(id, POPPED);
                    // Slow consumption forces saturation and eviction.
                    std::thread::sleep(Duration::from_micros(20));
                }
            })
        };
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                let ledger = Arc::clone(&ledger);
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let id = p * PER_PRODUCER + i;
                        match q.push(id, policy) {
                            Ok(None) => {} // admitted; the consumer owns it now
                            Ok(Some(victim)) => ledger.record(victim, EVICTED),
                            Err(PushError::Full(item)) => ledger.record(item, HANDED_BACK),
                            Err(PushError::Closed(item)) => ledger.record(item, HANDED_BACK),
                        }
                    }
                })
            })
            .collect();
        for producer in producers {
            producer.join().unwrap();
        }
        q.close();
        consumer.join().unwrap();
    });

    let unaccounted = ledger.unaccounted();
    assert!(
        unaccounted.is_empty(),
        "{} item(s) silently lost at the queue boundary: {:?}",
        unaccounted.len(),
        &unaccounted[..unaccounted.len().min(10)]
    );
    let (popped, evicted, handed_back) = (
        ledger.count(POPPED),
        ledger.count(EVICTED),
        ledger.count(HANDED_BACK),
    );
    assert_eq!(popped + evicted + handed_back, total);
    (total, popped, evicted, handed_back)
}

#[test]
fn drop_oldest_stress_accounts_for_every_item() {
    let (_, popped, evicted, handed_back) = stress(AdmissionPolicy::DropOldest);
    // Under drop-oldest no push fails while the queue is open, so
    // nothing is handed back, and the slow consumer guarantees real
    // evictions happened (the case under test).
    assert_eq!(handed_back, 0);
    assert!(evicted > 0, "stress produced no evictions");
    assert!(popped > 0, "stress consumed nothing");
}

#[test]
fn reject_stress_accounts_for_every_item() {
    let (_, popped, evicted, handed_back) = stress(AdmissionPolicy::Reject);
    // Reject never evicts: overflow comes back to the producer instead.
    assert_eq!(evicted, 0);
    assert!(handed_back > 0, "stress produced no rejections");
    assert!(popped > 0, "stress consumed nothing");
}
