//! Differential suite: the best-first planner against an exhaustive,
//! independently written enumerator.
//!
//! The enumerator shares NOTHING with the search loop: it does a plain
//! depth-first walk over every ≤`depth`-step action sequence, calling
//! [`forensic_law::engine::assess`] one action at a time (no batching,
//! no cache, no priority queue), and keeps the cheapest goal-covering
//! sequence. On problems small enough to enumerate, the planner must
//! report exactly the same optimal cost — and its emitted plan must
//! replay step-by-step as lawful under the engine.

use forensic_law::engine::assess;
use forensic_law::process::{FactualStandard, LegalProcess};
use planner::{parse_problem, CollectVariant, PlanOutcome, PlanProblem, PlanStep, Planner};

/// The enumerator's posture (mirrors the planner's state on purpose,
/// but is driven by an independent recursion).
#[derive(Clone, Copy)]
struct Posture {
    mask: u32,
    standard: FactualStandard,
    process: LegalProcess,
}

fn rank_standard(s: FactualStandard) -> usize {
    FactualStandard::ALL.iter().position(|x| *x == s).unwrap()
}

fn rank_process(p: LegalProcess) -> usize {
    LegalProcess::ALL.iter().position(|x| *x == p).unwrap()
}

/// Exhaustively enumerates every lawful action sequence of at most
/// `depth` steps and returns the cheapest cost that covers the goal
/// mask, if any sequence does.
fn enumerate(problem: &PlanProblem, depth: usize) -> Option<u64> {
    let variants: Vec<Vec<CollectVariant>> = problem
        .items
        .iter()
        .map(|item| item.variants(&problem.routes).expect("variants build"))
        .collect();
    let goal = problem.goal_mask();
    let start = Posture {
        mask: 0,
        standard: problem.start_standard,
        process: problem.start_process,
    };
    let mut best: Option<u64> = None;
    walk(problem, &variants, goal, start, 0, depth, &mut best);
    best
}

fn walk(
    problem: &PlanProblem,
    variants: &[Vec<CollectVariant>],
    goal: u32,
    posture: Posture,
    spent: u64,
    steps_left: usize,
    best: &mut Option<u64>,
) {
    if posture.mask & goal == goal {
        if best.is_none_or(|b| spent < b) {
            *best = Some(spent);
        }
        return;
    }
    if steps_left == 0 {
        return;
    }
    // Branch: apply for any strictly stronger instrument the showing
    // suffices for.
    for next in LegalProcess::ALL {
        if rank_process(next) <= rank_process(posture.process) {
            continue;
        }
        if rank_standard(posture.standard) < rank_standard(next.required_standard()) {
            continue;
        }
        walk(
            problem,
            variants,
            goal,
            Posture {
                process: next,
                ..posture
            },
            spent + problem.costs.process(next),
            steps_left - 1,
            best,
        );
    }
    // Branch: collect any missing item via any variant the engine
    // blesses under the held instrument.
    for (i, item) in problem.items.iter().enumerate() {
        if posture.mask & (1 << i) != 0 {
            continue;
        }
        for variant in &variants[i] {
            let assessment = assess(&variant.action);
            if !assessment.is_lawful_with(posture.process) {
                continue;
            }
            let standard = if rank_standard(item.yields) > rank_standard(posture.standard) {
                item.yields
            } else {
                posture.standard
            };
            let cost = problem.costs.collect
                + if variant.route.is_some() {
                    problem.costs.route
                } else {
                    0
                };
            walk(
                problem,
                variants,
                goal,
                Posture {
                    mask: posture.mask | (1 << i),
                    standard,
                    process: posture.process,
                },
                spent + cost,
                steps_left - 1,
                best,
            );
        }
    }
}

/// Replays the planner's emitted plan one step at a time through the
/// engine, asserting every transition is available and lawful, and
/// that the step costs sum to the reported total.
fn replay(problem: &PlanProblem, plan: &planner::Plan) {
    let variants: Vec<Vec<CollectVariant>> = problem
        .items
        .iter()
        .map(|item| item.variants(&problem.routes).expect("variants build"))
        .collect();
    let mut posture = Posture {
        mask: 0,
        standard: problem.start_standard,
        process: problem.start_process,
    };
    let mut spent = 0u64;
    for step in &plan.steps {
        match step {
            PlanStep::Apply {
                process,
                standard,
                cost,
            } => {
                assert!(
                    rank_process(*process) > rank_process(posture.process),
                    "apply must climb the ladder"
                );
                assert_eq!(*standard, posture.standard, "recorded showing must match");
                assert!(
                    rank_standard(posture.standard) >= rank_standard(process.required_standard()),
                    "showing {:?} does not suffice for {:?}",
                    posture.standard,
                    process
                );
                assert_eq!(*cost, problem.costs.process(*process));
                posture.process = *process;
                spent += cost;
            }
            PlanStep::Collect {
                item, route, cost, ..
            } => {
                let i = problem
                    .items
                    .iter()
                    .position(|x| x.name == *item)
                    .expect("plan names a known item");
                assert_eq!(posture.mask & (1 << i), 0, "item collected twice");
                let variant = variants[i]
                    .iter()
                    .find(|v| v.route == *route)
                    .expect("plan names a known variant");
                let assessment = assess(&variant.action);
                assert!(
                    assessment.is_lawful_with(posture.process),
                    "step \"{item}\" unlawful on replay: {}",
                    assessment.verdict_line()
                );
                posture.mask |= 1 << i;
                let yields = problem.items[i].yields;
                if rank_standard(yields) > rank_standard(posture.standard) {
                    posture.standard = yields;
                }
                spent += cost;
            }
        }
    }
    assert_eq!(
        posture.mask & problem.goal_mask(),
        problem.goal_mask(),
        "plan must cover every goal"
    );
    assert_eq!(spent, plan.total_cost, "step costs must sum to the total");
}

/// Solves with the planner, checks optimality against the enumerator,
/// and replays the plan through the engine.
fn check(problem_text: &[u8], depth: usize) -> PlanOutcome {
    let problem = parse_problem(problem_text).expect("problem parses");
    let outcome = Planner::with_threads(2).solve(&problem).expect("solves");
    let exhaustive = enumerate(&problem, depth);
    match &outcome {
        PlanOutcome::Plan(plan) => {
            assert!(
                plan.steps.len() <= depth,
                "problem too deep for the enumerator: {} steps",
                plan.steps.len()
            );
            assert_eq!(
                Some(plan.total_cost),
                exhaustive,
                "planner cost must equal the exhaustive optimum"
            );
            replay(&problem, plan);
        }
        PlanOutcome::NoLawfulPath(_) => {
            assert_eq!(
                exhaustive, None,
                "planner says unreachable but the enumerator found a sequence"
            );
        }
    }
    outcome
}

#[test]
fn no_process_goal_is_a_one_step_plan() {
    // Public-forum content needs no process at all.
    let outcome = check(
        br#"
{"goal": "public posts", "collect": {"actor": "leo", "data": "content", "when": "stored", "where": "public"}}
"#,
        4,
    );
    let PlanOutcome::Plan(plan) = outcome else {
        panic!("expected a plan");
    };
    assert_eq!(plan.steps.len(), 1);
    assert_eq!(plan.total_cost, 1);
}

#[test]
fn subscriber_records_ride_the_subpoena_rung() {
    let outcome = check(
        br#"
{"start": {"standard": "mere-suspicion"}}
{"goal": "subscriber records", "collect": {"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider"}}
"#,
        4,
    );
    let PlanOutcome::Plan(plan) = outcome else {
        panic!("expected a plan");
    };
    assert!(matches!(
        plan.steps[0],
        PlanStep::Apply {
            process: LegalProcess::Subpoena,
            ..
        }
    ));
}

#[test]
fn a_lead_escalates_the_showing_to_reach_the_goal() {
    // Start with nothing: the subscriber lead is the only reachable
    // collection; its yield unlocks the ladder toward the goal.
    let outcome = check(
        br#"
{"goal": "transaction logs", "collect": {"actor": "leo", "data": "records", "when": "stored", "where": "provider"}}
{"lead": "public posts", "collect": {"actor": "leo", "data": "content", "when": "stored", "where": "public"}, "yields": "articulable-facts"}
"#,
        4,
    );
    let PlanOutcome::Plan(plan) = outcome else {
        panic!("expected a plan");
    };
    assert!(
        plan.steps.len() >= 3,
        "expected lead + apply + goal, got:\n{}",
        plan.render()
    );
}

#[test]
fn a_cheap_consent_route_beats_climbing_the_ladder() {
    // Device content normally needs a search warrant (cost 200 from
    // probable cause); consent short-circuits it for cost 1 + 5.
    let outcome = check(
        br#"
{"start": {"standard": "probable-cause"}}
{"routes": ["consent"]}
{"goal": "laptop image", "collect": {"actor": "leo", "data": "content", "when": "stored", "where": "device"}}
"#,
        4,
    );
    let PlanOutcome::Plan(plan) = outcome else {
        panic!("expected a plan");
    };
    assert_eq!(plan.total_cost, 6, "plan:\n{}", plan.render());
    assert!(matches!(
        &plan.steps[0],
        PlanStep::Collect { route: Some(r), .. } if r == "consent"
    ));
}

#[test]
fn an_expensive_route_is_passed_over_for_the_ladder() {
    // Same problem, but consent costs more than the warrant: the
    // planner must climb instead.
    let outcome = check(
        br#"
{"start": {"standard": "probable-cause"}}
{"routes": ["consent"]}
{"costs": {"route": 500}}
{"goal": "laptop image", "collect": {"actor": "leo", "data": "content", "when": "stored", "where": "device"}}
"#,
        4,
    );
    let PlanOutcome::Plan(plan) = outcome else {
        panic!("expected a plan");
    };
    assert_eq!(plan.total_cost, 201, "plan:\n{}", plan.render());
    assert!(matches!(
        plan.steps[0],
        PlanStep::Apply {
            process: LegalProcess::SearchWarrant,
            ..
        }
    ));
}

#[test]
fn an_out_of_reach_wiretap_is_a_provenance_backed_dead_end() {
    // Real-time content interception demands a wiretap order, which
    // needs probable-cause-plus; nothing in the problem yields it.
    let outcome = check(
        br#"
{"start": {"standard": "probable-cause"}}
{"goal": "live audio", "collect": {"actor": "leo", "data": "content", "when": "realtime", "where": "isp"}}
"#,
        4,
    );
    let PlanOutcome::NoLawfulPath(blocked) = outcome else {
        panic!("expected no lawful path");
    };
    assert_eq!(blocked.blockers.len(), 1);
    let blocker = &blocked.blockers[0];
    assert_eq!(blocker.required, Some(LegalProcess::WiretapOrder));
    assert_ne!(
        blocker.rule, "verdict.final",
        "must name a substantive rule"
    );
    assert_eq!(blocked.best_standard, FactualStandard::ProbableCause);
    let rendering = blocked.render();
    assert!(rendering.contains(blocker.rule), "{rendering}");
}

#[test]
fn a_private_actor_dead_end_names_the_final_verdict() {
    // A private individual intercepting realtime content is unlawful
    // outright — no instrument cures it.
    let outcome = check(
        br#"
{"goal": "intercepted chat", "collect": {"actor": "private", "data": "content", "when": "realtime", "where": "isp"}}
"#,
        4,
    );
    let PlanOutcome::NoLawfulPath(blocked) = outcome else {
        panic!("expected no lawful path");
    };
    assert_eq!(blocked.blockers.len(), 1);
    assert_eq!(blocked.blockers[0].required, None);
    assert!(blocked
        .render()
        .contains("no process instrument can authorize this actor"));
}

#[test]
fn multi_goal_problems_match_the_enumerator_too() {
    let outcome = check(
        br#"
{"start": {"standard": "articulable-facts"}}
{"goal": "subscriber records", "collect": {"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider"}}
{"goal": "transaction logs", "collect": {"actor": "leo", "data": "records", "when": "stored", "where": "provider"}}
"#,
        4,
    );
    assert!(matches!(outcome, PlanOutcome::Plan(_)));
}
