//! The determinism contract: the emitted plan bytes are identical at
//! any assessor thread count, on both plan and no-lawful-path
//! outcomes. This is the suite the nightly ThreadSanitizer workflow
//! runs against the planner.

use planner::{parse_problem, Planner};

/// An 8-item problem mixing goals, leads, routes, and both engine
/// verdict families, so the search exercises batching at every
/// expansion.
const PROBLEM: &[u8] = br#"
{"start": {"standard": "mere-suspicion"}}
{"routes": ["consent", "exigent"]}
{"goal": "subscriber records", "collect": {"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider"}, "yields": "reasonable-suspicion"}
{"goal": "transaction logs", "collect": {"actor": "leo", "data": "records", "when": "stored", "where": "provider"}, "yields": "articulable-facts"}
{"goal": "mailbox content", "collect": {"actor": "leo", "data": "content", "when": "stored-unopened", "where": "provider"}, "yields": "probable-cause"}
{"goal": "laptop image", "collect": {"actor": "leo", "data": "content", "when": "stored", "where": "device"}}
{"lead": "public posts", "collect": {"actor": "leo", "data": "content", "when": "stored", "where": "public"}, "yields": "reasonable-suspicion"}
{"lead": "open wifi capture", "collect": {"actor": "leo", "data": "headers", "when": "realtime", "where": "isp"}}
{"lead": "admin logs", "collect": {"actor": "admin", "data": "headers", "when": "stored", "where": "own-network"}}
{"goal": "live audio", "collect": {"actor": "leo", "data": "content", "when": "realtime", "where": "isp"}, "yields": "probable-cause-plus"}
"#;

/// The same problem minus the unreachable wiretap goal, so it solves.
const SOLVABLE: &[u8] = br#"
{"start": {"standard": "mere-suspicion"}}
{"routes": ["consent", "exigent"]}
{"goal": "subscriber records", "collect": {"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider"}, "yields": "reasonable-suspicion"}
{"goal": "transaction logs", "collect": {"actor": "leo", "data": "records", "when": "stored", "where": "provider"}, "yields": "articulable-facts"}
{"goal": "mailbox content", "collect": {"actor": "leo", "data": "content", "when": "stored-unopened", "where": "provider"}, "yields": "probable-cause"}
{"goal": "laptop image", "collect": {"actor": "leo", "data": "content", "when": "stored", "where": "device"}}
{"lead": "public posts", "collect": {"actor": "leo", "data": "content", "when": "stored", "where": "public"}, "yields": "reasonable-suspicion"}
{"lead": "open wifi capture", "collect": {"actor": "leo", "data": "headers", "when": "realtime", "where": "isp"}}
{"lead": "admin logs", "collect": {"actor": "admin", "data": "headers", "when": "stored", "where": "own-network"}}
"#;

fn render_at(problem_text: &[u8], threads: usize) -> String {
    let problem = parse_problem(problem_text).expect("problem parses");
    Planner::with_threads(threads)
        .solve(&problem)
        .expect("solves")
        .render()
}

#[test]
fn plan_bytes_are_identical_at_1_2_and_8_threads() {
    let one = render_at(SOLVABLE, 1);
    let two = render_at(SOLVABLE, 2);
    let eight = render_at(SOLVABLE, 8);
    assert!(one.starts_with("plan:"), "{one}");
    assert_eq!(one, two, "1-thread and 2-thread plans diverge");
    assert_eq!(one, eight, "1-thread and 8-thread plans diverge");
}

#[test]
fn no_lawful_path_bytes_are_identical_at_1_2_and_8_threads() {
    let one = render_at(PROBLEM, 1);
    let two = render_at(PROBLEM, 2);
    let eight = render_at(PROBLEM, 8);
    assert!(one.starts_with("no lawful path:"), "{one}");
    assert_eq!(one, two);
    assert_eq!(one, eight);
}

#[test]
fn repeated_solves_on_one_planner_are_stable_and_cache_amortized() {
    let problem = parse_problem(SOLVABLE).expect("problem parses");
    let planner = Planner::with_threads(4);
    let first = planner.solve(&problem).expect("solves");
    let second = planner.solve(&problem).expect("solves");
    assert_eq!(first.render(), second.render());
    // The second solve re-uses the warmed shared cache: every verdict
    // lookup hits.
    assert_eq!(second.stats().cache_misses, 0);
    assert!(second.stats().cache_hit_rate() > 0.99);
}
