//! # planner — searching the lawful-process space
//!
//! The compliance engine answers *"is this investigative action lawful,
//! given these facts?"* — an oracle. This crate turns the oracle into a
//! navigator: given a **goal evidence set**, an investigator's current
//! **posture** (factual showing held, strongest process instrument in
//! hand), and a **per-step cost model**, it searches the space of
//! lawful transitions for the *cheapest* sequence of steps that
//! acquires every goal item — the subpoena → §2703(d) order → warrant
//! ladder the paper orders by difficulty (§II-A), interleaved with
//! exception routes (consent, exigency, plain view, …) where those are
//! cheaper than climbing.
//!
//! ## The model
//!
//! A planning problem ([`PlanProblem`]) is a list of evidence items
//! ([`EvidenceItem`]) — each a JSONL fact pattern in the same
//! [`ActionSpec`](forensic_law::spec::ActionSpec) vocabulary the
//! `assess-batch` subcommand reads, plus the factual standard the item
//! *yields* once collected — together with a starting posture and a
//! [`CostModel`]. A search state is `(acquired items, factual
//! standard, strongest process held)`; two edge families leave it:
//!
//! * **apply** for a process instrument the current showing suffices
//!   for (pure ladder arithmetic — no engine call);
//! * **collect** an item via one of its candidate fact patterns (the
//!   base pattern, or the base pattern plus one enabled exception
//!   route), lawful exactly when the engine's verdict for that pattern
//!   is satisfied by the process held.
//!
//! Collecting an item raises the factual standard to the item's yield
//! (join on the standards ladder), which is what makes subsequent,
//! more demanding applications reachable — the ladder dynamic.
//!
//! ## The search
//!
//! [`Planner::solve`] runs Dijkstra over this graph. At every node
//! expansion the candidate collect actions for all still-missing items
//! are projected through [`FactKey`](forensic_law::factkey::FactKey)
//! and evaluated with **one** [`BatchAssessor`](
//! forensic_law::batch::BatchAssessor) call — batched across the
//! frontier, multi-threaded, and answered from the shared
//! [`VerdictCache`](forensic_law::batch::VerdictCache) after the first
//! expansion touches a pattern (verdicts depend only on the fact
//! pattern, never on the search state, so the cache hit rate climbs
//! toward 1 as the search proceeds). The result is either the provably
//! cheapest lawful [`Plan`] — every step carrying its verdict line and
//! the per-verdict provenance record, a court-ready justification — or
//! a [`NoLawfulPath`] explanation naming, for each unreachable goal,
//! the blocking rule and the showing the reachable evidence tops out
//! at.
//!
//! Determinism is part of the contract: ties in the priority queue are
//! broken by packed state key, edges are relaxed in a fixed order, and
//! the batch assessor is order-preserving — the emitted plan bytes are
//! identical at any thread count.
//!
//! ## Quick start
//!
//! ```
//! use planner::{parse_problem, Planner, PlanOutcome};
//!
//! let problem = parse_problem(
//!     br#"
//! {"start": {"standard": "mere-suspicion"}}
//! {"goal": "subscriber records", "collect": {"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider"}, "yields": "articulable-facts"}
//! {"goal": "transaction logs", "collect": {"actor": "leo", "data": "records", "when": "stored", "where": "provider"}}
//! "#,
//! )
//! .expect("problem parses");
//! match Planner::new().solve(&problem).expect("specs build") {
//!     PlanOutcome::Plan(plan) => {
//!         assert!(plan.steps.len() >= 3); // subpoena, collect, collect
//!         println!("{}", plan.render());
//!     }
//!     PlanOutcome::NoLawfulPath(blocked) => panic!("{}", blocked.render()),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod problem;
pub mod search;

pub use plan::{process_word, standard_word, Blocker, NoLawfulPath, Plan, PlanOutcome, PlanStep};
pub use problem::{
    parse_problem, parse_process_word, parse_standard_word, CollectVariant, CostModel,
    EvidenceItem, PlanProblem,
};
pub use search::{Planner, SearchStats};
