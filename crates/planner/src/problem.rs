//! The planning problem: evidence items, posture, routes, costs, and
//! the JSONL problem-file parser.
//!
//! A problem file is JSONL — one directive object per line, in the
//! same minimal JSON subset [`forensic_law::spec`] reads:
//!
//! ```json
//! {"start": {"standard": "mere-suspicion", "process": "none"}}
//! {"routes": ["consent", "exigent"]}
//! {"costs": {"subpoena": 10, "court-order": 50, "search-warrant": 200, "wiretap-order": 1000, "collect": 1, "route": 5}}
//! {"goal": "subscriber records", "collect": {"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider"}, "yields": "articulable-facts"}
//! {"lead": "open wifi capture", "collect": {"actor": "leo", "data": "headers", "when": "realtime", "where": "isp"}, "yields": "mere-suspicion"}
//! ```
//!
//! * `goal` / `lead` — an evidence item: its name, the fact pattern
//!   collecting it (a nested [`ActionSpec`] object, the `assess-batch`
//!   vocabulary verbatim), and the factual standard the evidence
//!   *yields* once in hand (`yields`, default `none`). Goals must all
//!   be acquired; leads are optional stepping stones.
//! * `start` — the investigator's opening posture: `standard` (the
//!   factual showing already held) and `process` (the strongest
//!   instrument already in hand). Both default to `none`.
//! * `routes` — exception-route flags the planner may add to any
//!   item's fact pattern, one at a time (`consent`, `exigent`,
//!   `plain-view`, …: any flag the spec vocabulary accepts).
//! * `costs` — overrides for the per-step [`CostModel`], keyed by
//!   process word plus `collect` and `route`.
//!
//! Malformed lines are reported with 1-based line numbers through
//! [`LocatedError`], the same shape `assess-batch` and `replay` use.

use forensic_law::action::InvestigativeAction;
use forensic_law::process::{FactualStandard, LegalProcess};
use forensic_law::spec::{json, ActionSpec, LocatedError, SpecError};

/// One piece of evidence the investigation wants ([`goal`](Self::goal)
/// = `true`) or may collect as a stepping stone toward a stronger
/// factual showing (a *lead*).
#[derive(Debug, Clone)]
pub struct EvidenceItem {
    /// Display name, echoed in the emitted plan.
    pub name: String,
    /// The fact pattern collecting this item (route flags are layered
    /// on top of it by [`EvidenceItem::variants`]).
    pub spec: ActionSpec,
    /// The factual standard the evidence supports once collected; the
    /// investigator's showing is raised to the join of this and the
    /// current showing.
    pub yields: FactualStandard,
    /// Whether the plan must acquire this item (goal) or merely may
    /// (lead).
    pub goal: bool,
}

/// One concrete way to collect an item: the base fact pattern
/// (`route == None`) or the base pattern with a single exception
/// route applied.
#[derive(Debug, Clone)]
pub struct CollectVariant {
    /// The route flag layered onto the base pattern, if any.
    pub route: Option<String>,
    /// The engine input for this variant.
    pub action: InvestigativeAction,
}

impl EvidenceItem {
    /// The candidate fact patterns for collecting this item: the base
    /// spec first, then one variant per enabled route flag the base
    /// spec does not already carry, in route order.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if a spec/flag combination does not build
    /// (impossible for problems from [`parse_problem`], which
    /// validates both).
    pub fn variants(&self, routes: &[String]) -> Result<Vec<CollectVariant>, SpecError> {
        let mut variants = vec![CollectVariant {
            route: None,
            action: self.spec.to_action()?,
        }];
        for route in routes {
            if self.spec.flags.iter().any(|flag| flag == route) {
                continue;
            }
            let mut spec = self.spec.clone();
            spec.flags.push(route.clone());
            variants.push(CollectVariant {
                route: Some(route.clone()),
                action: spec.to_action()?,
            });
        }
        Ok(variants)
    }
}

/// Per-step costs: what each process application, each collection, and
/// each exception route "costs" the investigation (court time, agent
/// hours, goodwill — the unit is the caller's).
///
/// Defaults follow the paper's difficulty ordering (§II-A): a subpoena
/// is cheap, a Title III order is two orders of magnitude dearer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    process: [u64; 5],
    /// Cost of performing one collection step.
    pub collect: u64,
    /// Surcharge for a collection that rides an exception route
    /// (obtaining consent, documenting exigency, …).
    pub route: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // Indexed by LegalProcess::ALL order:
            // none, subpoena, court order, search warrant, wiretap order.
            process: [0, 10, 50, 200, 1000],
            collect: 1,
            route: 5,
        }
    }
}

impl CostModel {
    /// The cost of applying for (and obtaining) `process`.
    pub fn process(&self, process: LegalProcess) -> u64 {
        self.process[process_index(process)]
    }

    /// Overrides the cost of one process instrument.
    pub fn set_process(&mut self, process: LegalProcess, cost: u64) {
        self.process[process_index(process)] = cost;
    }
}

/// The position of `process` in [`LegalProcess::ALL`] (0 = none).
pub(crate) fn process_index(process: LegalProcess) -> usize {
    LegalProcess::ALL
        .iter()
        .position(|p| *p == process)
        .expect("ALL is exhaustive")
}

/// The position of `standard` in [`FactualStandard::ALL`] (0 = none).
pub(crate) fn standard_index(standard: FactualStandard) -> usize {
    FactualStandard::ALL
        .iter()
        .position(|s| *s == standard)
        .expect("ALL is exhaustive")
}

/// A complete planning problem: the evidence items, the opening
/// posture, the enabled exception routes, and the cost model.
#[derive(Debug, Clone, Default)]
pub struct PlanProblem {
    /// Evidence items, goals and leads, in declaration order. At most
    /// [`PlanProblem::MAX_ITEMS`].
    pub items: Vec<EvidenceItem>,
    /// The factual showing the investigator opens with.
    pub start_standard: FactualStandard,
    /// The strongest process instrument already in hand.
    pub start_process: LegalProcess,
    /// Exception-route flags the planner may layer onto any item's
    /// fact pattern, one at a time.
    pub routes: Vec<String>,
    /// Per-step costs.
    pub costs: CostModel,
}

impl PlanProblem {
    /// Search states pack acquired items into a 32-bit mask; problems
    /// are capped accordingly.
    pub const MAX_ITEMS: usize = 32;

    /// The bitmask of goal items (bit *i* set iff `items[i].goal`).
    pub fn goal_mask(&self) -> u32 {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, item)| item.goal)
            .fold(0u32, |mask, (i, _)| mask | (1 << i))
    }
}

/// Parses a planner problem word for a factual standard.
pub fn parse_standard_word(word: &str) -> Option<FactualStandard> {
    Some(match word {
        "none" => FactualStandard::None,
        "mere-suspicion" => FactualStandard::MereSuspicion,
        "reasonable-suspicion" => FactualStandard::ReasonableSuspicion,
        "articulable-facts" => FactualStandard::SpecificArticulableFacts,
        "probable-cause" => FactualStandard::ProbableCause,
        "probable-cause-plus" => FactualStandard::ProbableCausePlus,
        _ => return None,
    })
}

/// Parses a planner problem word for a process instrument.
pub fn parse_process_word(word: &str) -> Option<LegalProcess> {
    Some(match word {
        "none" => LegalProcess::None,
        "subpoena" => LegalProcess::Subpoena,
        "court-order" => LegalProcess::CourtOrder,
        "search-warrant" => LegalProcess::SearchWarrant,
        "wiretap-order" => LegalProcess::WiretapOrder,
        _ => return None,
    })
}

/// Parses a JSONL problem document, reporting **every** malformed line
/// (and any whole-problem defects, like a missing goal) with its
/// position, in the shared [`LocatedError`] shape `assess-batch` and
/// `replay` use.
///
/// # Errors
///
/// Returns the full list of located defects; the problem is usable
/// only when the list is empty.
pub fn parse_problem(input: &[u8]) -> Result<PlanProblem, Vec<LocatedError>> {
    let mut problem = PlanProblem::default();
    let mut errors = Vec::new();
    for (idx, raw) in input.split(|b| *b == b'\n').enumerate() {
        let line = idx + 1;
        let raw = raw.strip_suffix(b"\r").unwrap_or(raw);
        if raw.iter().all(|b| b.is_ascii_whitespace()) {
            continue;
        }
        let result = std::str::from_utf8(raw)
            .map_err(|e| SpecError::new(format!("invalid UTF-8: {e}")))
            .and_then(json::parse)
            .and_then(|value| apply_directive(&mut problem, value));
        if let Err(error) = result {
            errors.push(LocatedError::at_line(line, error));
        }
    }
    if problem.items.len() > PlanProblem::MAX_ITEMS {
        errors.push(LocatedError::new(
            "problem",
            format!(
                "{} evidence items; the planner supports at most {}",
                problem.items.len(),
                PlanProblem::MAX_ITEMS
            ),
        ));
    }
    if errors.is_empty() && !problem.items.iter().any(|item| item.goal) {
        errors.push(LocatedError::new(
            "problem",
            "no \"goal\" line: nothing to plan for",
        ));
    }
    if errors.is_empty() {
        Ok(problem)
    } else {
        Err(errors)
    }
}

/// Builds a [`SpecError`] carrying `msg`.
fn spec_error(msg: String) -> SpecError {
    SpecError::new(msg)
}

/// Applies one parsed directive line to the problem under construction.
fn apply_directive(problem: &mut PlanProblem, value: json::Value) -> Result<(), SpecError> {
    let json::Value::Object(pairs) = value else {
        return Err(spec_error("expected a JSON object".into()));
    };
    let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
    if keys.contains(&"goal") || keys.contains(&"lead") {
        return apply_item(problem, pairs);
    }
    match keys.as_slice() {
        ["start"] => {
            let (_, value) = pairs.into_iter().next().expect("one pair");
            apply_start(problem, value)
        }
        ["routes"] => {
            let (_, value) = pairs.into_iter().next().expect("one pair");
            apply_routes(problem, value)
        }
        ["costs"] => {
            let (_, value) = pairs.into_iter().next().expect("one pair");
            apply_costs(problem, value)
        }
        _ => Err(spec_error(format!(
            "unrecognized directive; expected goal/lead, start, routes, or costs (got keys {})",
            keys.join(", ")
        ))),
    }
}

/// Parses a `goal`/`lead` item line.
fn apply_item(
    problem: &mut PlanProblem,
    pairs: Vec<(String, json::Value)>,
) -> Result<(), SpecError> {
    let mut name: Option<(String, bool)> = None;
    let mut spec: Option<ActionSpec> = None;
    let mut yields = FactualStandard::None;
    for (key, value) in pairs {
        match key.as_str() {
            "goal" | "lead" => {
                let json::Value::String(text) = value else {
                    return Err(spec_error(format!("\"{key}\" must be a string name")));
                };
                if name.is_some() {
                    return Err(spec_error(
                        "an item is either a goal or a lead, once".into(),
                    ));
                }
                name = Some((text, key == "goal"));
            }
            "collect" => spec = Some(ActionSpec::from_json_value(value)?),
            "yields" => {
                let json::Value::String(word) = value else {
                    return Err(spec_error("\"yields\" must be a standard word".into()));
                };
                yields = parse_standard_word(&word)
                    .ok_or_else(|| spec_error(format!("unknown standard \"{word}\"")))?;
            }
            other => return Err(spec_error(format!("unknown item key \"{other}\""))),
        }
    }
    let (name, goal) = name.expect("dispatched on goal/lead presence");
    let spec = spec.ok_or_else(|| spec_error(format!("item \"{name}\" lacks \"collect\"")))?;
    // Validate the base pattern builds now, so the defect is reported
    // with this line's number rather than at solve time.
    spec.to_action()?;
    if problem.items.iter().any(|item| item.name == name) {
        return Err(spec_error(format!("duplicate item name \"{name}\"")));
    }
    problem.items.push(EvidenceItem {
        name,
        spec,
        yields,
        goal,
    });
    Ok(())
}

/// Parses the `start` posture object.
fn apply_start(problem: &mut PlanProblem, value: json::Value) -> Result<(), SpecError> {
    let json::Value::Object(pairs) = value else {
        return Err(spec_error("\"start\" must be an object".into()));
    };
    for (key, value) in pairs {
        let json::Value::String(word) = value else {
            return Err(spec_error(format!("start \"{key}\" must be a string")));
        };
        match key.as_str() {
            "standard" => {
                problem.start_standard = parse_standard_word(&word)
                    .ok_or_else(|| spec_error(format!("unknown standard \"{word}\"")))?;
            }
            "process" => {
                problem.start_process = parse_process_word(&word)
                    .ok_or_else(|| spec_error(format!("unknown process \"{word}\"")))?;
            }
            other => return Err(spec_error(format!("unknown start key \"{other}\""))),
        }
    }
    Ok(())
}

/// Parses the `routes` array, validating each flag against the spec
/// vocabulary by building a probe action.
fn apply_routes(problem: &mut PlanProblem, value: json::Value) -> Result<(), SpecError> {
    let json::Value::Array(items) = value else {
        return Err(spec_error("\"routes\" must be an array of flags".into()));
    };
    for item in items {
        let json::Value::String(flag) = item else {
            return Err(spec_error("routes must be strings".into()));
        };
        let mut probe = ActionSpec::default();
        probe.flags.push(flag.clone());
        probe.to_action()?; // rejects unknown flags with the flag name
        if !problem.routes.contains(&flag) {
            problem.routes.push(flag);
        }
    }
    Ok(())
}

/// Parses the `costs` override object.
fn apply_costs(problem: &mut PlanProblem, value: json::Value) -> Result<(), SpecError> {
    let json::Value::Object(pairs) = value else {
        return Err(spec_error("\"costs\" must be an object".into()));
    };
    for (key, value) in pairs {
        let json::Value::Number(n) = value else {
            return Err(spec_error(format!("cost \"{key}\" must be a number")));
        };
        if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64) {
            return Err(spec_error(format!(
                "cost \"{key}\" must be a non-negative integer"
            )));
        }
        let cost = n as u64;
        match key.as_str() {
            "collect" => problem.costs.collect = cost,
            "route" => problem.costs.route = cost,
            word => match parse_process_word(word) {
                Some(process) => problem.costs.set_process(process, cost),
                None => return Err(spec_error(format!("unknown cost key \"{word}\""))),
            },
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROBLEM: &[u8] = br#"
{"start": {"standard": "mere-suspicion", "process": "none"}}
{"routes": ["consent", "exigent"]}
{"costs": {"subpoena": 7, "collect": 2, "route": 3}}
{"goal": "subscriber records", "collect": {"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider"}, "yields": "articulable-facts"}
{"lead": "pen register", "collect": {"actor": "leo", "data": "headers", "when": "realtime", "where": "isp"}}
"#;

    #[test]
    fn well_formed_problem_parses() {
        let problem = parse_problem(PROBLEM).expect("parses");
        assert_eq!(problem.items.len(), 2);
        assert_eq!(problem.start_standard, FactualStandard::MereSuspicion);
        assert_eq!(problem.routes, vec!["consent", "exigent"]);
        assert_eq!(problem.costs.process(LegalProcess::Subpoena), 7);
        assert_eq!(problem.costs.collect, 2);
        assert_eq!(problem.costs.route, 3);
        assert_eq!(problem.goal_mask(), 0b01);
        assert!(problem.items[0].goal);
        assert!(!problem.items[1].goal);
        assert_eq!(
            problem.items[0].yields,
            FactualStandard::SpecificArticulableFacts
        );
    }

    #[test]
    fn variants_layer_routes_over_the_base_pattern() {
        let problem = parse_problem(PROBLEM).expect("parses");
        let variants = problem.items[0]
            .variants(&problem.routes)
            .expect("variants build");
        assert_eq!(variants.len(), 3);
        assert_eq!(variants[0].route, None);
        assert_eq!(variants[1].route.as_deref(), Some("consent"));
        assert_eq!(variants[2].route.as_deref(), Some("exigent"));
    }

    #[test]
    fn malformed_lines_report_numbers_and_reasons() {
        let input = br#"
{"goal": "a", "collect": {"actor": "leo"}}
not json
{"goal": "b", "collect": {"actor": "martian"}}
{"frobnicate": true}
{"goal": "a", "collect": {"actor": "leo"}}
{"costs": {"subpoena": -3}}
{"routes": ["narnia"]}
{"goal": "c", "collect": {"actor": "leo"}, "yields": "perfect-knowledge"}
"#;
        let errors = parse_problem(input).expect_err("must fail");
        let rendered: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        assert!(rendered[0].starts_with("line 3:"), "{rendered:?}");
        assert!(rendered[1].starts_with("line 4:"), "{rendered:?}");
        assert!(rendered[1].contains("martian"), "{rendered:?}");
        assert!(rendered[2].starts_with("line 5:"), "{rendered:?}");
        assert!(rendered[2].contains("frobnicate"), "{rendered:?}");
        assert!(rendered[3].starts_with("line 6:"), "{rendered:?}");
        assert!(rendered[3].contains("duplicate"), "{rendered:?}");
        assert!(rendered[4].starts_with("line 7:"), "{rendered:?}");
        assert!(rendered[5].starts_with("line 8:"), "{rendered:?}");
        assert!(rendered[5].contains("narnia"), "{rendered:?}");
        assert!(rendered[6].starts_with("line 9:"), "{rendered:?}");
        assert!(rendered[6].contains("perfect-knowledge"), "{rendered:?}");
    }

    #[test]
    fn a_problem_without_goals_is_rejected() {
        let errors =
            parse_problem(br#"{"lead": "x", "collect": {"actor": "leo", "data": "headers"}}"#)
                .expect_err("must fail");
        assert_eq!(errors.len(), 1);
        assert!(errors[0].to_string().contains("no \"goal\""));
    }

    #[test]
    fn vocabulary_words_round_trip_the_ladders() {
        for standard in FactualStandard::ALL {
            let word = crate::plan::standard_word(standard);
            assert_eq!(parse_standard_word(word), Some(standard));
        }
        for process in LegalProcess::ALL {
            let word = crate::plan::process_word(process);
            assert_eq!(parse_process_word(word), Some(process));
        }
        assert_eq!(parse_standard_word("zzz"), None);
        assert_eq!(parse_process_word("zzz"), None);
    }
}
