//! Best-first (Dijkstra) search over lawful transitions.
//!
//! States are `(acquired-items mask, factual standard, strongest
//! process held)`, packed into a `u64` key. Edge costs come from the
//! problem's [`CostModel`](crate::problem::CostModel) and are
//! non-negative, so the first time a goal-covering state is popped its
//! cost is provably minimal. Candidate collections for the whole
//! frontier of missing items are assessed with one
//! [`BatchAssessor`] call per expansion; verdicts depend only on the
//! fact pattern, so after the first expansion the shared
//! [`VerdictCache`](forensic_law::batch::VerdictCache) answers nearly
//! every lookup.
//!
//! Determinism: the heap orders by `(cost, packed key)`, edges are
//! relaxed in a fixed order (process ladder, then items in declaration
//! order, then variants in route order), and relaxation uses strict
//! `<` — the reconstructed plan is byte-identical at any assessor
//! thread count.

use crate::plan::{Blocker, NoLawfulPath, Plan, PlanOutcome, PlanStep};
use crate::problem::{process_index, standard_index, CollectVariant, PlanProblem};
use forensic_law::action::InvestigativeAction;
use forensic_law::assessment::Verdict;
use forensic_law::batch::BatchAssessor;
use forensic_law::process::{FactualStandard, LegalProcess};
use forensic_law::spec::SpecError;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::time::{Duration, Instant};

/// What the search did, and how fast: the numbers behind the
/// `plan_search` bench driver and the CLI's stderr report.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// States popped and expanded (goal pops are not expansions).
    pub nodes_expanded: u64,
    /// Candidate collect actions handed to the batch assessor.
    pub candidates_evaluated: u64,
    /// Batched [`BatchAssessor::assess_all`] calls made.
    pub batch_calls: u64,
    /// Verdict-cache hits attributable to this solve.
    pub cache_hits: u64,
    /// Verdict-cache misses attributable to this solve.
    pub cache_misses: u64,
    /// Wall-clock time of the solve.
    pub wall: Duration,
}

impl SearchStats {
    /// Expansion throughput (0 when the solve was too fast to time).
    pub fn nodes_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.nodes_expanded as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of verdict lookups answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// A search state: which items are in hand, what showing the evidence
/// supports, and the strongest instrument held.
#[derive(Debug, Clone, Copy)]
struct State {
    mask: u32,
    standard: FactualStandard,
    process: LegalProcess,
}

impl State {
    /// The packed `u64` state key: mask in the low 32 bits, standard
    /// index above it, process index above that. Injective, and its
    /// numeric order is the deterministic heap tie-break.
    fn key(self) -> u64 {
        (self.mask as u64)
            | ((standard_index(self.standard) as u64) << 32)
            | ((process_index(self.process) as u64) << 36)
    }
}

/// Dijkstra bookkeeping for one discovered state.
struct Node {
    cost: u64,
    state: State,
    parent: Option<u64>,
    step: Option<PlanStep>,
}

/// Records `state` if reached cheaper than before (strict `<`, so the
/// first relaxation at a given cost wins — determinism again).
fn relax(
    nodes: &mut HashMap<u64, Node>,
    heap: &mut BinaryHeap<Reverse<(u64, u64)>>,
    parent: u64,
    cost: u64,
    state: State,
    step: PlanStep,
) {
    let key = state.key();
    let improved = match nodes.get(&key) {
        Some(existing) => cost < existing.cost,
        None => true,
    };
    if improved {
        nodes.insert(
            key,
            Node {
                cost,
                state,
                parent: Some(parent),
                step: Some(step),
            },
        );
        heap.push(Reverse((cost, key)));
    }
}

/// How demanding a verdict is, for picking the *closest-to-lawful*
/// variant when explaining a blocked goal.
fn demand_rank(verdict: Verdict) -> usize {
    match verdict {
        Verdict::NoProcessNeeded => 0,
        Verdict::ProcessRequired(process) => 1 + process_index(process),
        Verdict::UnlawfulForPrivateActor => usize::MAX,
    }
}

/// The planner: a [`BatchAssessor`] plus the search loop.
///
/// Construction mirrors the assessor's builder: [`Planner::new`] uses
/// the machine's parallelism and a fresh cache;
/// [`Planner::with_threads`] pins the worker count (the emitted plan
/// bytes are identical either way); [`Planner::from_assessor`] adopts
/// an existing assessor — the way a server shares its service-wide
/// verdict cache with plan requests.
pub struct Planner {
    assessor: BatchAssessor,
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new()
    }
}

impl Planner {
    /// A planner with a fresh assessor (machine parallelism, own cache).
    pub fn new() -> Self {
        Planner {
            assessor: BatchAssessor::new(),
        }
    }

    /// A planner whose assessor uses exactly `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        Planner {
            assessor: BatchAssessor::new().with_threads(threads),
        }
    }

    /// A planner over an existing assessor (e.g. one sharing a
    /// service-wide [`VerdictCache`](forensic_law::batch::VerdictCache)).
    pub fn from_assessor(assessor: BatchAssessor) -> Self {
        Planner { assessor }
    }

    /// The assessor driving this planner's verdict evaluations.
    pub fn assessor(&self) -> &BatchAssessor {
        &self.assessor
    }

    /// Searches for the cheapest lawful plan acquiring every goal item.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] only if an item's spec/route combination
    /// fails to build an action — impossible for problems produced by
    /// [`parse_problem`](crate::problem::parse_problem), which
    /// validates both up front.
    pub fn solve(&self, problem: &PlanProblem) -> Result<PlanOutcome, SpecError> {
        let started = Instant::now();
        let cache_before = self.assessor.cache().stats();
        let mut stats = SearchStats::default();

        let mut variants: Vec<Vec<CollectVariant>> = Vec::with_capacity(problem.items.len());
        for item in &problem.items {
            variants.push(item.variants(&problem.routes)?);
        }
        let goal_mask = problem.goal_mask();

        let start = State {
            mask: 0,
            standard: problem.start_standard,
            process: problem.start_process,
        };
        let mut nodes: HashMap<u64, Node> = HashMap::new();
        let mut closed: HashSet<u64> = HashSet::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        nodes.insert(
            start.key(),
            Node {
                cost: 0,
                state: start,
                parent: None,
                step: None,
            },
        );
        heap.push(Reverse((0, start.key())));

        let mut goal_key = None;
        while let Some(Reverse((cost, key))) = heap.pop() {
            if !closed.insert(key) {
                continue; // stale heap entry for an already-settled state
            }
            let state = nodes[&key].state;
            debug_assert_eq!(nodes[&key].cost, cost);
            if state.mask & goal_mask == goal_mask {
                goal_key = Some(key);
                break;
            }
            stats.nodes_expanded += 1;

            // Every candidate collection for every still-missing item,
            // evaluated with ONE batched call. Verdicts are
            // state-independent, so after the first expansion these are
            // near-pure cache hits.
            let mut actions: Vec<InvestigativeAction> = Vec::new();
            let mut owners: Vec<(usize, usize)> = Vec::new();
            for (i, item_variants) in variants.iter().enumerate() {
                if state.mask & (1 << i) != 0 {
                    continue;
                }
                for (v, variant) in item_variants.iter().enumerate() {
                    actions.push(variant.action.clone());
                    owners.push((i, v));
                }
            }
            let assessments = if actions.is_empty() {
                Vec::new()
            } else {
                stats.batch_calls += 1;
                stats.candidates_evaluated += actions.len() as u64;
                self.assessor.assess_all(&actions)
            };

            // Apply edges: climb to any stronger instrument the current
            // showing suffices for.
            for next in LegalProcess::ALL {
                if process_index(next) <= process_index(state.process)
                    || !state.standard.suffices_for(next)
                {
                    continue;
                }
                let step_cost = problem.costs.process(next);
                relax(
                    &mut nodes,
                    &mut heap,
                    key,
                    cost + step_cost,
                    State {
                        process: next,
                        ..state
                    },
                    PlanStep::Apply {
                        process: next,
                        standard: state.standard,
                        cost: step_cost,
                    },
                );
            }

            // Collect edges, in (item, variant) declaration order.
            for ((i, v), assessment) in owners.iter().zip(&assessments) {
                if !assessment.is_lawful_with(state.process) {
                    continue;
                }
                let item = &problem.items[*i];
                let variant = &variants[*i][*v];
                let step_cost = problem.costs.collect
                    + if variant.route.is_some() {
                        problem.costs.route
                    } else {
                        0
                    };
                let standard = if standard_index(item.yields) > standard_index(state.standard) {
                    item.yields
                } else {
                    state.standard
                };
                relax(
                    &mut nodes,
                    &mut heap,
                    key,
                    cost + step_cost,
                    State {
                        mask: state.mask | (1 << i),
                        standard,
                        process: state.process,
                    },
                    PlanStep::Collect {
                        item: item.name.clone(),
                        route: variant.route.clone(),
                        held: state.process,
                        yields: item.yields,
                        cost: step_cost,
                        assessment: assessment.clone(),
                    },
                );
            }
        }

        if let Some(goal) = goal_key {
            let (total_cost, final_state) = {
                let node = &nodes[&goal];
                (node.cost, node.state)
            };
            let mut steps = Vec::new();
            let mut cursor = goal;
            loop {
                let node = &nodes[&cursor];
                match (&node.step, node.parent) {
                    (Some(step), Some(parent)) => {
                        steps.push(step.clone());
                        cursor = parent;
                    }
                    _ => break,
                }
            }
            steps.reverse();
            let cache_after = self.assessor.cache().stats();
            stats.cache_hits = cache_after.hits.saturating_sub(cache_before.hits);
            stats.cache_misses = cache_after.misses.saturating_sub(cache_before.misses);
            stats.wall = started.elapsed();
            return Ok(PlanOutcome::Plan(Plan {
                steps,
                total_cost,
                final_standard: final_state.standard,
                final_process: final_state.process,
                stats,
            }));
        }

        // Exhausted without covering the goal set. Lawfulness depends
        // only on (fact pattern, process held) and both posture axes
        // are monotone, so reachable collections compose: if every goal
        // bit appeared in SOME settled state the full set would be
        // reachable too. At least one goal bit never appeared — those
        // are the blockers.
        let mut reachable = 0u32;
        let mut best_standard = problem.start_standard;
        for key in &closed {
            let state = nodes[key].state;
            reachable |= state.mask;
            if standard_index(state.standard) > standard_index(best_standard) {
                best_standard = state.standard;
            }
        }
        let blocked: Vec<usize> = (0..problem.items.len())
            .filter(|i| problem.items[*i].goal && reachable & (1u32 << i) == 0)
            .collect();
        debug_assert!(
            !blocked.is_empty(),
            "search exhausted but every goal bit is reachable"
        );

        // Re-assess the blocked items' variants (one batched call, all
        // cache hits — the first expansion already evaluated them) and
        // explain each via its closest-to-lawful variant.
        let mut blocker_actions: Vec<InvestigativeAction> = Vec::new();
        for &i in &blocked {
            for variant in &variants[i] {
                blocker_actions.push(variant.action.clone());
            }
        }
        let blocker_assessments = if blocker_actions.is_empty() {
            Vec::new()
        } else {
            stats.batch_calls += 1;
            stats.candidates_evaluated += blocker_actions.len() as u64;
            self.assessor.assess_all(&blocker_actions)
        };
        let mut blockers = Vec::with_capacity(blocked.len());
        let mut offset = 0;
        for &i in &blocked {
            let count = variants[i].len();
            let slice = &blocker_assessments[offset..offset + count];
            offset += count;
            let assessment = slice
                .iter()
                .min_by_key(|a| demand_rank(a.verdict()))
                .expect("items always have the base variant")
                .clone();
            let firings = assessment.provenance().firings();
            let (rule, effect, required) = match assessment.verdict() {
                Verdict::ProcessRequired(required) => {
                    // The firing that imposed the unmeetable process
                    // requirement; the closing verdict.final firing is a
                    // summary, so prefer the substantive rule.
                    let firing = firings
                        .iter()
                        .find(|f| f.process() == Some(required) && f.rule() != "verdict.final")
                        .or_else(|| firings.last())
                        .expect("provenance always closes with verdict.final");
                    (firing.rule(), firing.effect(), Some(required))
                }
                _ => {
                    let firing = firings
                        .last()
                        .expect("provenance always closes with verdict.final");
                    (firing.rule(), firing.effect(), None)
                }
            };
            blockers.push(Blocker {
                item: problem.items[i].name.clone(),
                assessment,
                rule,
                effect,
                required,
            });
        }

        let cache_after = self.assessor.cache().stats();
        stats.cache_hits = cache_after.hits.saturating_sub(cache_before.hits);
        stats.cache_misses = cache_after.misses.saturating_sub(cache_before.misses);
        stats.wall = started.elapsed();
        Ok(PlanOutcome::NoLawfulPath(NoLawfulPath {
            blockers,
            best_standard,
            stats,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::parse_problem;

    #[test]
    fn state_keys_are_injective_over_the_ladders() {
        let mut seen = HashSet::new();
        for standard in FactualStandard::ALL {
            for process in LegalProcess::ALL {
                for mask in [0u32, 1, u32::MAX] {
                    let state = State {
                        mask,
                        standard,
                        process,
                    };
                    assert!(seen.insert(state.key()), "collision at {state:?}");
                }
            }
        }
    }

    #[test]
    fn a_subpoena_ladder_plan_is_found_and_costed() {
        let problem = parse_problem(
            br#"
{"start": {"standard": "mere-suspicion"}}
{"goal": "subscriber records", "collect": {"actor": "leo", "data": "subscriber", "when": "stored", "where": "provider"}}
"#,
        )
        .expect("parses");
        let outcome = Planner::with_threads(1).solve(&problem).expect("solves");
        let PlanOutcome::Plan(plan) = outcome else {
            panic!("expected a plan, got: {}", outcome.render());
        };
        // Apply for a subpoena (10), then collect (1).
        assert_eq!(plan.steps.len(), 2);
        assert_eq!(plan.total_cost, 11);
        assert_eq!(plan.final_process, LegalProcess::Subpoena);
        assert!(plan.stats.batch_calls >= 1);
    }

    #[test]
    fn an_unreachable_goal_names_the_blocking_rule() {
        // A wiretap needs probable-cause-plus; nothing here yields it.
        let problem = parse_problem(
            br#"
{"start": {"standard": "probable-cause"}}
{"goal": "live audio", "collect": {"actor": "leo", "data": "content", "when": "realtime", "where": "isp"}}
"#,
        )
        .expect("parses");
        let outcome = Planner::with_threads(1).solve(&problem).expect("solves");
        let PlanOutcome::NoLawfulPath(blocked) = outcome else {
            panic!("expected no lawful path, got: {}", outcome.render());
        };
        assert_eq!(blocked.blockers.len(), 1);
        assert_eq!(blocked.blockers[0].item, "live audio");
        assert_eq!(
            blocked.blockers[0].required,
            Some(LegalProcess::WiretapOrder)
        );
        assert_ne!(blocked.blockers[0].rule, "");
        assert!(blocked.render().contains("no lawful path"));
    }
}
