//! The search's output: an ordered lawful plan with per-step
//! provenance-backed justifications, or a "no lawful path" explanation
//! naming the blocking rules.

use crate::search::SearchStats;
use forensic_law::assessment::LegalAssessment;
use forensic_law::process::{FactualStandard, LegalProcess};
use std::fmt::Write as _;
use std::sync::Arc;

/// What [`Planner::solve`](crate::Planner::solve) found.
#[derive(Debug, Clone)]
pub enum PlanOutcome {
    /// The cheapest lawful plan acquiring every goal item.
    Plan(Plan),
    /// No sequence of lawful steps reaches the goal set.
    NoLawfulPath(NoLawfulPath),
}

impl PlanOutcome {
    /// The deterministic text rendering (plan or explanation); search
    /// statistics are deliberately excluded so the bytes are stable
    /// across runs and thread counts.
    pub fn render(&self) -> String {
        match self {
            PlanOutcome::Plan(plan) => plan.render(),
            PlanOutcome::NoLawfulPath(blocked) => blocked.render(),
        }
    }

    /// The search statistics, whichever way the search ended.
    pub fn stats(&self) -> &SearchStats {
        match self {
            PlanOutcome::Plan(plan) => &plan.stats,
            PlanOutcome::NoLawfulPath(blocked) => &blocked.stats,
        }
    }
}

/// One step of an emitted plan.
#[derive(Debug, Clone)]
pub enum PlanStep {
    /// Apply for (and obtain) a process instrument the current factual
    /// showing suffices for.
    Apply {
        /// The instrument obtained.
        process: LegalProcess,
        /// The showing held when applying (meets
        /// `process.required_standard()`).
        standard: FactualStandard,
        /// This step's cost under the problem's cost model.
        cost: u64,
    },
    /// Perform one lawful collection.
    Collect {
        /// The evidence item acquired.
        item: String,
        /// The exception route ridden, if any (`consent`, `exigent`, …).
        route: Option<String>,
        /// The strongest instrument held while collecting.
        held: LegalProcess,
        /// The factual standard the evidence raises the showing to.
        yields: FactualStandard,
        /// This step's cost under the problem's cost model.
        cost: u64,
        /// The engine's assessment of this exact fact pattern — the
        /// verdict and the rule-firing provenance justifying the step.
        assessment: Arc<LegalAssessment>,
    },
}

/// The cheapest lawful plan, with enough recorded context to stand as
/// a court-ready justification: every collection carries its verdict
/// line and the ordered rule firings behind it.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The steps, in execution order.
    pub steps: Vec<PlanStep>,
    /// Total cost under the problem's cost model.
    pub total_cost: u64,
    /// The factual showing after the last step.
    pub final_standard: FactualStandard,
    /// The strongest instrument held after the last step.
    pub final_process: LegalProcess,
    /// Search statistics (not part of [`Plan::render`]).
    pub stats: SearchStats,
}

impl Plan {
    /// The deterministic plan rendering: one numbered entry per step,
    /// each collection followed by its verdict and indented
    /// justification chain.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan: {} lawful step(s), total cost {}",
            self.steps.len(),
            self.total_cost
        );
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                PlanStep::Apply {
                    process,
                    standard,
                    cost,
                } => {
                    let _ = writeln!(out, "{:>3}. apply for {process} [cost {cost}]", i + 1);
                    let _ = writeln!(
                        out,
                        "     showing: {standard} (a {process} requires {})",
                        process.required_standard()
                    );
                }
                PlanStep::Collect {
                    item,
                    route,
                    held,
                    yields,
                    cost,
                    assessment,
                } => {
                    let via = match route {
                        Some(route) => format!(" via {route}"),
                        None => String::new(),
                    };
                    let _ = writeln!(out, "{:>3}. collect \"{item}\"{via} [cost {cost}]", i + 1);
                    let _ = writeln!(out, "     verdict: {}", assessment.verdict_line());
                    let _ = writeln!(out, "     holding: {held}");
                    if *yields != FactualStandard::None {
                        let _ = writeln!(out, "     yields: {yields}");
                    }
                    let _ = writeln!(out, "     justification:");
                    for line in assessment.provenance().to_string().lines() {
                        let _ = writeln!(out, "     {line}");
                    }
                }
            }
        }
        let _ = writeln!(
            out,
            "final posture: {}; holding {}",
            self.final_standard, self.final_process
        );
        out
    }
}

/// Why a goal item cannot be lawfully collected from any reachable
/// posture.
#[derive(Debug, Clone)]
pub struct Blocker {
    /// The unreachable goal item.
    pub item: String,
    /// The engine's assessment of the item's least-demanding candidate
    /// fact pattern — the closest the investigation gets.
    pub assessment: Arc<LegalAssessment>,
    /// The stable id of the blocking rule (the firing that imposed the
    /// unmeetable requirement).
    pub rule: &'static str,
    /// The blocking rule's effect phrase.
    pub effect: &'static str,
    /// The process the blocking rule demands, or `None` when no
    /// process can cure the defect (unlawful for a private actor).
    pub required: Option<LegalProcess>,
}

/// The provenance-backed explanation emitted when the goal set is
/// unreachable.
#[derive(Debug, Clone)]
pub struct NoLawfulPath {
    /// One blocker per unreachable goal item, in item order.
    pub blockers: Vec<Blocker>,
    /// The strongest factual showing any reachable posture attains.
    pub best_standard: FactualStandard,
    /// Search statistics (not part of [`NoLawfulPath::render`]).
    pub stats: SearchStats,
}

impl NoLawfulPath {
    /// The deterministic explanation rendering: per blocked goal, the
    /// verdict, the blocking rule, the showing gap, and the full
    /// justification chain.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "no lawful path: {} goal(s) unreachable; reachable showing tops out at {}",
            self.blockers.len(),
            self.best_standard
        );
        for blocker in &self.blockers {
            let _ = writeln!(out, "  goal \"{}\" is blocked", blocker.item);
            let _ = writeln!(out, "    verdict: {}", blocker.assessment.verdict_line());
            let _ = writeln!(
                out,
                "    blocking rule: {} ({})",
                blocker.rule, blocker.effect
            );
            match blocker.required {
                Some(process) => {
                    let _ = writeln!(
                        out,
                        "    requires {process}, which needs {}; only {} is reachable",
                        process.required_standard(),
                        self.best_standard
                    );
                }
                None => {
                    let _ = writeln!(out, "    no process instrument can authorize this actor");
                }
            }
            let _ = writeln!(out, "    justification:");
            for line in blocker.assessment.provenance().to_string().lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        out
    }
}

/// The planner vocabulary word for a standard (inverse of
/// [`parse_standard_word`](crate::problem::parse_standard_word)).
pub fn standard_word(standard: FactualStandard) -> &'static str {
    match standard {
        FactualStandard::None => "none",
        FactualStandard::MereSuspicion => "mere-suspicion",
        FactualStandard::ReasonableSuspicion => "reasonable-suspicion",
        FactualStandard::SpecificArticulableFacts => "articulable-facts",
        FactualStandard::ProbableCause => "probable-cause",
        FactualStandard::ProbableCausePlus => "probable-cause-plus",
    }
}

/// The planner vocabulary word for a process (inverse of
/// [`parse_process_word`](crate::problem::parse_process_word)).
pub fn process_word(process: LegalProcess) -> &'static str {
    match process {
        LegalProcess::None => "none",
        LegalProcess::Subpoena => "subpoena",
        LegalProcess::CourtOrder => "court-order",
        LegalProcess::SearchWarrant => "search-warrant",
        LegalProcess::WiretapOrder => "wiretap-order",
    }
}
