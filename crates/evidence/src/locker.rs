//! An evidence locker: items, their shared custody log, and their legal
//! posture, managed together.

use crate::admissibility::{evaluate, AdmissibilityReport};
use crate::custody::{CustodyEvent, CustodyLog};
use crate::item::{Acquisition, EvidenceItem, ItemId};
use forensic_law::process::LegalProcess;
use forensic_law::suppression::{Docket, EvidenceId};
use std::collections::HashMap;
use std::fmt;

/// Errors returned by [`EvidenceLocker`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockerError {
    /// No item with the given id.
    UnknownItem(ItemId),
}

impl fmt::Display for LockerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockerError::UnknownItem(id) => write!(f, "unknown evidence item {id}"),
        }
    }
}

impl std::error::Error for LockerError {}

/// A store binding [`EvidenceItem`]s to a shared [`CustodyLog`] and a
/// legal [`Docket`].
///
/// # Examples
///
/// ```
/// use evidence::locker::EvidenceLocker;
/// use forensic_law::process::LegalProcess;
///
/// let mut locker = EvidenceLocker::new();
/// let id = locker.acquire(
///     "seized drive image",
///     b"sectors...".to_vec(),
///     "agent lee",
///     100,
///     LegalProcess::SearchWarrant, // required
///     LegalProcess::SearchWarrant, // held
/// );
/// assert!(locker.admissibility(id).unwrap().is_admissible());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EvidenceLocker {
    items: Vec<EvidenceItem>,
    log: CustodyLog,
    docket: Docket,
    docket_ids: HashMap<ItemId, EvidenceId>,
    next_id: u64,
}

impl EvidenceLocker {
    /// Creates an empty locker.
    pub fn new() -> Self {
        EvidenceLocker::default()
    }

    /// Acquires a new root evidence item (no derivation parents).
    ///
    /// `required` is the process the compliance engine demanded for the
    /// collecting action; `held` what the investigator actually had.
    pub fn acquire(
        &mut self,
        label: impl Into<String>,
        content: Vec<u8>,
        examiner: impl Into<String>,
        timestamp: u64,
        required: LegalProcess,
        held: LegalProcess,
    ) -> ItemId {
        self.acquire_derived(label, content, examiner, timestamp, required, held, [])
    }

    /// Acquires an item derived from earlier items (fruit-of-the-
    /// poisonous-tree links).
    #[allow(clippy::too_many_arguments)]
    pub fn acquire_derived(
        &mut self,
        label: impl Into<String>,
        content: Vec<u8>,
        examiner: impl Into<String>,
        timestamp: u64,
        required: LegalProcess,
        held: LegalProcess,
        derived_from: impl IntoIterator<Item = ItemId>,
    ) -> ItemId {
        let label = label.into();
        let examiner = examiner.into();
        let id = ItemId(self.next_id);
        self.next_id += 1;
        let item = EvidenceItem::new(
            id,
            label.clone(),
            content,
            Acquisition {
                examiner: examiner.clone(),
                timestamp,
                method: "acquisition".into(),
                authority: crate::item::AcquisitionAuthority { required, held },
            },
        );
        self.log.record(
            id,
            timestamp,
            CustodyEvent::Acquired { by: examiner },
            item.acquisition_digest(),
        );
        let parents: Vec<EvidenceId> = derived_from
            .into_iter()
            .filter_map(|p| self.docket_ids.get(&p).copied())
            .collect();
        let docket_id = if parents.is_empty() {
            self.docket.add_root(label, required, held)
        } else {
            self.docket.add_derived(label, required, held, parents)
        };
        self.docket_ids.insert(id, docket_id);
        self.items.push(item);
        id
    }

    /// Records a custody transfer.
    ///
    /// # Errors
    ///
    /// Returns [`LockerError::UnknownItem`] if the item does not exist.
    pub fn transfer(
        &mut self,
        id: ItemId,
        timestamp: u64,
        from: impl Into<String>,
        to: impl Into<String>,
    ) -> Result<(), LockerError> {
        let digest = self.item(id)?.acquisition_digest();
        self.log.record(
            id,
            timestamp,
            CustodyEvent::Transferred {
                from: from.into(),
                to: to.into(),
            },
            digest,
        );
        Ok(())
    }

    /// Records an analysis event.
    ///
    /// # Errors
    ///
    /// Returns [`LockerError::UnknownItem`] if the item does not exist.
    pub fn analyze(
        &mut self,
        id: ItemId,
        timestamp: u64,
        analyst: impl Into<String>,
        tool: impl Into<String>,
    ) -> Result<(), LockerError> {
        let digest = self.item(id)?.acquisition_digest();
        self.log.record(
            id,
            timestamp,
            CustodyEvent::Analyzed {
                by: analyst.into(),
                tool: tool.into(),
            },
            digest,
        );
        Ok(())
    }

    /// Looks up an item.
    ///
    /// # Errors
    ///
    /// Returns [`LockerError::UnknownItem`] if absent.
    pub fn item(&self, id: ItemId) -> Result<&EvidenceItem, LockerError> {
        self.items
            .iter()
            .find(|i| i.id() == id)
            .ok_or(LockerError::UnknownItem(id))
    }

    /// Mutable access, for failure-injection tests.
    ///
    /// # Errors
    ///
    /// Returns [`LockerError::UnknownItem`] if absent.
    pub fn item_mut(&mut self, id: ItemId) -> Result<&mut EvidenceItem, LockerError> {
        self.items
            .iter_mut()
            .find(|i| i.id() == id)
            .ok_or(LockerError::UnknownItem(id))
    }

    /// The shared custody log.
    pub fn custody_log(&self) -> &CustodyLog {
        &self.log
    }

    /// The legal docket.
    pub fn docket(&self) -> &Docket {
        &self.docket
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the locker is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Full admissibility determination for one item.
    ///
    /// # Errors
    ///
    /// Returns [`LockerError::UnknownItem`] if absent.
    pub fn admissibility(&self, id: ItemId) -> Result<AdmissibilityReport, LockerError> {
        let item = self.item(id)?;
        let docket_id = self.docket_ids[&id];
        let legal = self.docket.admissibility(docket_id);
        Ok(evaluate(legal, item, &self.log))
    }

    /// Iterates over all items.
    pub fn iter(&self) -> impl Iterator<Item = &EvidenceItem> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lawful_acquisition_is_admissible() {
        let mut locker = EvidenceLocker::new();
        let id = locker.acquire(
            "drive",
            vec![1, 2, 3],
            "e",
            10,
            LegalProcess::SearchWarrant,
            LegalProcess::SearchWarrant,
        );
        assert!(locker.admissibility(id).unwrap().is_admissible());
        assert_eq!(locker.len(), 1);
    }

    #[test]
    fn unlawful_acquisition_suppressed() {
        let mut locker = EvidenceLocker::new();
        let id = locker.acquire(
            "wiretap capture",
            vec![9; 8],
            "e",
            10,
            LegalProcess::WiretapOrder,
            LegalProcess::None,
        );
        assert!(!locker.admissibility(id).unwrap().is_admissible());
    }

    #[test]
    fn derivation_propagates_taint() {
        let mut locker = EvidenceLocker::new();
        let bad = locker.acquire(
            "warrantless image",
            vec![1],
            "e",
            10,
            LegalProcess::SearchWarrant,
            LegalProcess::None,
        );
        let child = locker.acquire_derived(
            "identity from image",
            vec![2],
            "e",
            20,
            LegalProcess::None,
            LegalProcess::None,
            [bad],
        );
        assert!(!locker.admissibility(child).unwrap().is_admissible());
    }

    #[test]
    fn transfers_and_analysis_keep_custody_valid() {
        let mut locker = EvidenceLocker::new();
        let id = locker.acquire(
            "d",
            vec![1],
            "e",
            10,
            LegalProcess::None,
            LegalProcess::None,
        );
        locker.transfer(id, 20, "e", "lab").unwrap();
        locker.analyze(id, 30, "lab", "carver").unwrap();
        assert!(locker.custody_log().verify().is_ok());
        assert!(locker.admissibility(id).unwrap().is_admissible());
        assert_eq!(locker.custody_log().entries_for(id).count(), 3);
    }

    #[test]
    fn tampered_item_becomes_inadmissible() {
        let mut locker = EvidenceLocker::new();
        let id = locker.acquire(
            "d",
            vec![1, 2],
            "e",
            10,
            LegalProcess::None,
            LegalProcess::None,
        );
        locker.item_mut(id).unwrap().tamper(0);
        assert!(!locker.admissibility(id).unwrap().is_admissible());
    }

    #[test]
    fn unknown_item_errors() {
        let locker = EvidenceLocker::new();
        assert_eq!(
            locker.item(ItemId(99)).unwrap_err(),
            LockerError::UnknownItem(ItemId(99))
        );
        assert!(locker.is_empty());
    }

    #[test]
    fn iter_visits_all() {
        let mut locker = EvidenceLocker::new();
        locker.acquire("a", vec![1], "e", 1, LegalProcess::None, LegalProcess::None);
        locker.acquire("b", vec![2], "e", 2, LegalProcess::None, LegalProcess::None);
        assert_eq!(locker.iter().count(), 2);
    }
}
